//! `brepl` — command-line driver for the code-replication pipeline.
//!
//! ```text
//! brepl run <file.bir> [args...]          execute a textual-IR program
//! brepl profile <file.bir> [args...]      per-branch profile statistics
//! brepl replicate <file.bir> [options]    run the pipeline, print/emit result
//!     --states N        machine state budget (default 4)
//!     --budget X        code size budget factor (default 3.0; 0 = unlimited)
//!     --output PATH     write the replicated program (textual IR)
//! brepl shootout <file.bir> [args...]     compare all predictors on one run
//! brepl dot <file.bir> <function>         CFG as Graphviz dot
//! ```
//!
//! Integer program arguments are passed to `main`; the input tape can be
//! supplied with `--input v1,v2,...`.

use std::process::ExitCode;

use brepl::cfg::function_to_dot;
use brepl::ir::{parse_module, Module, Value};
use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::predict::dynamic::{Gshare, LastDirection, TwoBitCounters, TwoLevel};
use brepl::predict::semistatic::{loop_correlation_report, profile_report};
use brepl::predict::simulate_dynamic;
use brepl::sim::{Machine, RunConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage: brepl <run|profile|replicate|shootout|dot> <file.bir> [...]");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "profile" => cmd_profile(rest),
        "replicate" => cmd_replicate(rest),
        "shootout" => cmd_shootout(rest),
        "dot" => cmd_dot(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

struct Loaded {
    module: Module,
    args: Vec<Value>,
    input: Vec<Value>,
}

/// Loads `<file> [intarg...] [--input v1,v2,...]`.
fn load(args: &[String]) -> Result<Loaded, String> {
    let path = args.first().ok_or("missing input file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let module = parse_module(&src).map_err(|e| format!("{path}: {e}"))?;
    module.verify().map_err(|e| format!("{path}: {e}"))?;

    let mut call_args = Vec::new();
    let mut input = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--input" {
            i += 1;
            let list = args.get(i).ok_or("--input needs a value list")?;
            for tok in list.split(',') {
                let v: i64 = tok
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad input value {tok:?}"))?;
                input.push(Value::Int(v));
            }
        } else if let Ok(v) = args[i].parse::<i64>() {
            call_args.push(Value::Int(v));
        } else {
            return Err(format!("unexpected argument {:?}", args[i]));
        }
        i += 1;
    }
    Ok(Loaded {
        module,
        args: call_args,
        input,
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let l = load(args)?;
    let mut m = Machine::new(&l.module, RunConfig::default()).map_err(|e| e.to_string())?;
    m.set_input(l.input.clone());
    let outcome = m.run("main", &l.args).map_err(|e| e.to_string())?;
    for v in m.output() {
        println!("{v}");
    }
    println!(
        "-- result: {:?}, {} instructions, {} branch events",
        outcome.result,
        outcome.steps,
        outcome.trace.len()
    );
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let l = load(args)?;
    let mut m = Machine::new(&l.module, RunConfig::default()).map_err(|e| e.to_string())?;
    m.set_input(l.input.clone());
    let outcome = m.run("main", &l.args).map_err(|e| e.to_string())?;
    let stats = outcome.trace.stats();
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>8}",
        "site", "taken", "not-taken", "majority", "miss%"
    );
    for (site, c) in stats.iter_executed() {
        println!(
            "{:<8} {:>12} {:>12} {:>10} {:>7.2}%",
            site.to_string(),
            c.taken,
            c.not_taken,
            if c.majority() { "taken" } else { "not" },
            100.0 * c.minority_count() as f64 / c.total() as f64
        );
    }
    println!(
        "-- {} events, profile misprediction {:.2}%",
        outcome.trace.len(),
        stats.profile_misprediction_percent()
    );
    Ok(())
}

fn cmd_replicate(args: &[String]) -> Result<(), String> {
    // Split off options.
    let mut states = 4usize;
    let mut budget = Some(3.0f64);
    let mut output: Option<String> = None;
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--states" => {
                i += 1;
                states = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--states needs a number in 2..=10")?;
            }
            "--budget" => {
                i += 1;
                let b: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--budget needs a number")?;
                budget = if b <= 0.0 { None } else { Some(b) };
            }
            "--output" => {
                i += 1;
                output = Some(args.get(i).ok_or("--output needs a path")?.clone());
            }
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }
    let l = load(&positional)?;
    let config = PipelineConfig {
        max_states: states,
        max_size_growth: budget,
        ..PipelineConfig::default()
    };
    let result = run_pipeline(&l.module, &l.args, &l.input, config).map_err(|e| e.to_string())?;
    println!(
        "profile {:.2}% -> replicated {:.2}% at {:.2}x size ({} branches improved)",
        result.profile_misprediction_percent,
        result.replicated_misprediction_percent,
        result.size_growth,
        result.selection.improved_branches()
    );
    for c in result.selection.choices() {
        if c.benefit() > 0 {
            println!(
                "  {}: {:?}, {} states, {} -> {} misses",
                c.site,
                c.class,
                c.chosen.states(),
                c.profile_misses,
                c.chosen_misses
            );
        }
    }
    if let Some(path) = output {
        std::fs::write(&path, result.program.module.to_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote replicated program to {path}");
    }
    Ok(())
}

fn cmd_shootout(args: &[String]) -> Result<(), String> {
    let l = load(args)?;
    let mut m = Machine::new(&l.module, RunConfig::default()).map_err(|e| e.to_string())?;
    m.set_input(l.input.clone());
    let trace = m.run("main", &l.args).map_err(|e| e.to_string())?.trace;
    let rows: Vec<(&str, f64)> = vec![
        (
            "last direction",
            simulate_dynamic(&mut LastDirection::new(), &trace).misprediction_percent(),
        ),
        (
            "2bit counter",
            simulate_dynamic(&mut TwoBitCounters::new(), &trace).misprediction_percent(),
        ),
        (
            "two-level 4K",
            simulate_dynamic(&mut TwoLevel::paper_4k(), &trace).misprediction_percent(),
        ),
        (
            "gshare 12",
            simulate_dynamic(&mut Gshare::new(12), &trace).misprediction_percent(),
        ),
        ("profile", profile_report(&trace).misprediction_percent()),
        (
            "loop-correlation",
            loop_correlation_report(&trace).misprediction_percent(),
        ),
    ];
    for (name, pct) in rows {
        println!("{name:<18} {pct:>6.2}%");
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing input file")?;
    let fname = args.get(1).ok_or("missing function name")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let module = parse_module(&src).map_err(|e| format!("{path}: {e}"))?;
    let fid = module
        .function_by_name(fname)
        .ok_or_else(|| format!("no function named {fname:?}"))?;
    print!("{}", function_to_dot(module.function(fid)));
    Ok(())
}
