//! The end-to-end pipeline: profile → select machines → replicate →
//! verify → re-measure. This is the workflow an optimizing compiler would
//! run between profiling and code generation.

use std::error::Error;
use std::fmt;

use brepl_analysis::{check_history, validate_replication, AnalysisDiag, LintConfig};
use brepl_core::replicate::ReplicateError;
use brepl_core::{apply_plan, check_equivalence, select_strategies, ReplicatedProgram, Selection};
use brepl_ir::{Module, Value};
use brepl_predict::evaluate_static;
use brepl_sim::{Machine, RunConfig, RunError};

/// Pipeline tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Maximum states per branch machine (the paper explores 2..=10).
    pub max_states: usize,
    /// Interpreter limits for both profiling and verification runs.
    pub run: RunConfig,
    /// When true (default), statically validate every replicated module
    /// against the original with the translation validator
    /// ([`brepl_analysis::validate_replication`]): instruction streams,
    /// edge projections, predicted directions and live-in sets must all
    /// check out. Error-severity diagnostics abort the pipeline; warnings
    /// are collected into [`PipelineResult::warnings`].
    pub validate: bool,
    /// When true (default), additionally gate every round on the
    /// witness-independent history checker
    /// ([`brepl_analysis::check_history`]): the product of the replicated
    /// CFG with each planned machine's transition table must show every
    /// replica reachable only under states agreeing with its pinned
    /// prediction. Independent trust base from `validate` — it never reads
    /// the replica-map witness.
    pub check_history: bool,
    /// Per-diagnostic-code severity overrides applied to both static
    /// validators' output (allow-listing a code, promoting warnings,
    /// demoting errors). Default: every code at its built-in severity.
    pub lint: LintConfig,
    /// When true (default), additionally run the *shipped* program and the
    /// original once on the profiling input and compare results, output
    /// tapes, step counts and branch histograms — a single dynamic
    /// backstop behind the static validator, which covers every round.
    pub dynamic_backstop: bool,
    /// Estimated code-size budget (growth factor). Branches are enabled in
    /// greedy benefit-per-size order until the estimate exceeds the budget
    /// — the paper's "cost function will calculate whether the increase in
    /// code size is worth the gain". `None` replicates every improving
    /// branch.
    pub max_size_growth: Option<f64>,
    /// When true (default), re-measure the replicated program and *drop*
    /// machines whose realized prediction is no better than profile (the
    /// trace-suffix profile of correlated machines is an approximation of
    /// the CFG-path replica, so a few machines can fail to transfer);
    /// replication is then redone with the pruned plan.
    pub refine: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_states: 4,
            run: RunConfig::default(),
            validate: true,
            check_history: true,
            lint: LintConfig::new(),
            dynamic_backstop: true,
            max_size_growth: Some(3.0),
            refine: true,
        }
    }
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// A program run trapped.
    Run(RunError),
    /// The replication transform failed.
    Replicate(ReplicateError),
    /// The static translation validator rejected the replicated program
    /// (rendered error-severity diagnostics, `; `-joined).
    Validation(String),
    /// The witness-independent history checker rejected the replicated
    /// program (rendered error-severity diagnostics, `; `-joined).
    History(String),
    /// The dynamic backstop found a divergence between the programs.
    Equivalence(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Run(e) => write!(f, "program run failed: {e}"),
            PipelineError::Replicate(e) => write!(f, "replication failed: {e}"),
            PipelineError::Validation(e) => write!(f, "static validation failed: {e}"),
            PipelineError::History(e) => write!(f, "history check failed: {e}"),
            PipelineError::Equivalence(e) => write!(f, "equivalence check failed: {e}"),
        }
    }
}

impl Error for PipelineError {}

impl From<RunError> for PipelineError {
    fn from(e: RunError) -> Self {
        PipelineError::Run(e)
    }
}

impl From<ReplicateError> for PipelineError {
    fn from(e: ReplicateError) -> Self {
        PipelineError::Replicate(e)
    }
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineResult {
    /// Misprediction (%) of plain profile prediction on the original
    /// program.
    pub profile_misprediction_percent: f64,
    /// Misprediction (%) of static per-site prediction on the replicated
    /// program.
    pub replicated_misprediction_percent: f64,
    /// Misprediction (%) the selection promised on the profiling run
    /// (ignoring replication mechanics); close to the replicated number.
    pub selected_misprediction_percent: f64,
    /// Code size growth factor.
    pub size_growth: f64,
    /// Branch events in the profiling trace.
    pub trace_events: u64,
    /// The per-branch strategy selection.
    pub selection: Selection,
    /// The sites whose machines actually shipped: enabled by the size
    /// budget and kept by every refinement round.
    pub replicated_sites: std::collections::BTreeSet<brepl_ir::BranchId>,
    /// Warning-severity diagnostics from the last round of both static
    /// gates — the witness validator and the history checker, as filtered
    /// by [`PipelineConfig::lint`] (empty when both are disabled).
    /// Error-severity diagnostics abort the pipeline instead of landing
    /// here.
    pub warnings: Vec<AnalysisDiag>,
    /// The replicated program with predictions and provenance.
    pub program: ReplicatedProgram,
}

/// Runs the whole pipeline on `module` with entry function `main`.
///
/// # Errors
///
/// Returns a [`PipelineError`] if any run traps, replication fails, the
/// static translation validator or the witness-independent history checker
/// emits an error-severity diagnostic, or the dynamic backstop finds a
/// divergence (the latter three would be replicator bugs — the checks are
/// belt-and-braces).
pub fn run_pipeline(
    module: &Module,
    args: &[Value],
    input: &[Value],
    config: PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    // 1. Profile.
    let mut machine = Machine::new(module, config.run);
    machine.set_input(input.to_vec());
    let outcome = machine.run("main", args)?;
    let stats = outcome.trace.stats();
    let profile_pct = stats.profile_misprediction_percent();

    // 2. Select per-branch machines, then apply the size budget by taking
    // branches in greedy benefit-per-size order.
    let selection = select_strategies(module, &outcome.trace, config.max_states);
    let mut enabled: std::collections::BTreeSet<brepl_ir::BranchId> = match config.max_size_growth {
        None => selection
            .choices()
            .iter()
            .filter(|c| c.benefit() > 0)
            .map(|c| c.site)
            .collect(),
        Some(budget) => {
            let curve = brepl_core::greedy::greedy_curve_from_selection(
                module,
                &selection,
                outcome.trace.len() as u64,
            );
            curve.sites_within_budget(budget).into_iter().collect()
        }
    };

    // 3–5. Replicate, validate, measure, and back off machines that fail
    // to transfer (at most a few refinement rounds; each round only
    // shrinks the plan).
    let (program, report, warnings) = loop {
        let plan = selection.to_plan_filtered(|site| enabled.contains(&site));
        let program = apply_plan(module, &plan, &stats)?;
        // Primary gate: the static translation validator checks the
        // simulation relation against the replica-map witness on every
        // round — no execution required.
        let mut warnings = Vec::new();
        if config.validate {
            let diags = validate_replication(
                module,
                &program.module,
                &program.replica_map,
                &program.predictions,
            );
            let (errors, warns) = config.lint.partition(diags);
            if !errors.is_empty() {
                let rendered: Vec<String> =
                    errors.iter().map(|d| d.render(&program.module)).collect();
                return Err(PipelineError::Validation(rendered.join("; ")));
            }
            warnings = warns;
        }
        // Second gate, independent trust base: re-prove the history
        // encoding from the plan's transition tables and the shipped
        // module alone — the replica-map witness is never consulted.
        if config.check_history {
            let diags = check_history(
                &program.module,
                &program.provenance,
                &plan.history_spec(),
                &program.predictions,
            );
            let (errors, warns) = config.lint.partition(diags);
            if !errors.is_empty() {
                let rendered: Vec<String> =
                    errors.iter().map(|d| d.render(&program.module)).collect();
                return Err(PipelineError::History(rendered.join("; ")));
            }
            warnings.extend(warns);
        }
        let mut machine2 = Machine::new(&program.module, config.run);
        machine2.set_input(input.to_vec());
        let outcome2 = machine2.run("main", args)?;
        let report = evaluate_static(&program.predictions, &outcome2.trace);
        if !config.refine {
            break (program, report, warnings);
        }
        // Fold replicated-site mispredictions back to original sites.
        let mut folded: std::collections::HashMap<brepl_ir::BranchId, u64> =
            std::collections::HashMap::new();
        for (site, _, wrong) in report.iter_sites() {
            *folded.entry(program.provenance[site.index()]).or_default() += wrong;
        }
        let mut dropped = false;
        for choice in selection.choices() {
            if !enabled.contains(&choice.site) {
                continue;
            }
            let realized = folded.get(&choice.site).copied().unwrap_or(0);
            if refine_should_drop(realized, choice.profile_misses) {
                enabled.remove(&choice.site);
                dropped = true;
            }
        }
        if !dropped {
            break (program, report, warnings);
        }
    };

    // Backstop behind the static gate: one dynamic run of the shipped
    // program on the profiling input (the validator covers every round).
    if config.dynamic_backstop {
        check_equivalence(module, &program, "main", args, input)
            .map_err(|e| PipelineError::Equivalence(e.to_string()))?;
    }

    Ok(PipelineResult {
        profile_misprediction_percent: profile_pct,
        replicated_misprediction_percent: report.misprediction_percent(),
        selected_misprediction_percent: selection.misprediction_percent(),
        size_growth: program.size_growth(module),
        trace_events: outcome.trace.len() as u64,
        selection,
        replicated_sites: enabled,
        warnings,
        program,
    })
}

/// The refinement drop rule: a machine is kept only while it is *strictly
/// better* than plain profile prediction on the re-measured run.
///
/// Intended rule, stated explicitly (the original expression leaned on
/// `&&`/`||` precedence): drop when the realized machine is no better than
/// profile —
///
/// * `profile_misses > 0`: drop when `realized >= profile_misses` (equal
///   realized misses mean the replication bought nothing and only costs
///   code size);
/// * `profile_misses == 0`: profile is already perfect, so keep the
///   machine only while it is also perfect — drop when `realized > 0`.
fn refine_should_drop(realized: u64, profile_misses: u64) -> bool {
    (profile_misses > 0 && realized >= profile_misses) || (profile_misses == 0 && realized > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    fn alternating_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd);
        b.switch_to(even);
        b.add(acc, acc.into(), Operand::imm(3));
        b.jmp(latch);
        b.switch_to(odd);
        b.add(acc, acc.into(), Operand::imm(5));
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), Operand::imm(300));
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn pipeline_halves_misprediction_on_alternation() {
        let m = alternating_module();
        let result = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        // Profile: the alternating branch costs ~25% of all events.
        assert!(result.profile_misprediction_percent > 20.0);
        // Replication: near zero.
        assert!(result.replicated_misprediction_percent < 1.0);
        assert!(result.size_growth > 1.0 && result.size_growth < 4.0);
        assert_eq!(result.trace_events, 600);
    }

    /// The refine rule must drop a branch whose realized machine exactly
    /// matches profile (`realized == profile_misses`): such a machine buys
    /// nothing and only costs code size. This pins the intended semantics
    /// of the old precedence-reliant expression
    /// `a >= b && b > 0 || a > b`.
    #[test]
    fn refine_drops_machines_no_better_than_profile() {
        // realized == profile_misses > 0: no better than profile -> drop.
        assert!(refine_should_drop(5, 5));
        // Strictly worse than profile -> drop.
        assert!(refine_should_drop(6, 5));
        // Strictly better than profile -> keep.
        assert!(!refine_should_drop(4, 5));
        assert!(!refine_should_drop(0, 5));
        // Profile is perfect: keep only a perfect machine.
        assert!(!refine_should_drop(0, 0));
        assert!(refine_should_drop(1, 0));
    }

    /// End-to-end: a machine whose re-measured misses equal its profile
    /// misses is pruned by the refinement loop, never shipped.
    #[test]
    fn shipped_machines_strictly_beat_profile() {
        let m = alternating_module();
        let result = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        let mut folded: std::collections::HashMap<brepl_ir::BranchId, u64> =
            std::collections::HashMap::new();
        // Re-measure the shipped program and fold misses to original sites.
        let outcome = Machine::new(&result.program.module, RunConfig::default())
            .run("main", &[])
            .unwrap();
        let report = evaluate_static(&result.program.predictions, &outcome.trace);
        for (site, _, wrong) in report.iter_sites() {
            *folded
                .entry(result.program.provenance[site.index()])
                .or_default() += wrong;
        }
        for choice in result.selection.choices() {
            if !result.replicated_sites.contains(&choice.site) {
                continue;
            }
            let realized = folded.get(&choice.site).copied().unwrap_or(0);
            // The site's machine shipped: it must have survived
            // refinement, i.e. be strictly better than profile.
            assert!(
                !refine_should_drop(realized, choice.profile_misses),
                "site {} shipped with realized {} vs profile {}",
                choice.site,
                realized,
                choice.profile_misses
            );
        }
        assert!(
            !result.replicated_sites.is_empty(),
            "the alternating branch should ship a machine"
        );
    }

    #[test]
    fn verification_can_be_disabled() {
        let m = alternating_module();
        let config = PipelineConfig {
            validate: false,
            dynamic_backstop: false,
            ..PipelineConfig::default()
        };
        let result = run_pipeline(&m, &[], &[], config).unwrap();
        assert!(
            result.warnings.is_empty(),
            "validation off collects nothing"
        );
    }

    #[test]
    fn validation_passes_and_collects_only_warnings() {
        let m = alternating_module();
        let result = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        // run_pipeline returned Ok, so no error-severity diagnostics; what
        // was collected must all be warnings.
        for d in &result.warnings {
            assert_eq!(d.severity(), brepl_analysis::Severity::Warning, "{d}");
        }
    }
}
