//! The end-to-end pipeline: profile → select machines → replicate →
//! verify → re-measure. This is the workflow an optimizing compiler would
//! run between profiling and code generation.
//!
//! Replication is an *optimization*: a site whose replication fails a
//! static gate is **quarantined** — dropped from the plan, recorded in
//! [`PipelineResult::quarantined`], and the pipeline re-applies and
//! re-validates with the remaining sites — rather than aborting the whole
//! workload. [`PipelineConfig::strict`] restores the hard abort for CI
//! use. See DESIGN.md §7 "Degradation modes".

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use brepl_analysis::{
    check_history, classification_diags, classify_module, estimate_profile, prediction_proof_diags,
    static_profile_diags, validate_replication, AnalysisDiag, DiagCode, LintConfig,
};
use brepl_core::replicate::ReplicateError;
use brepl_core::{
    apply_plan, check_equivalence_outcomes, select_strategies_classified, synthesize_profile_trace,
    BranchMachine, ReplicatedProgram, Selection,
};
use brepl_ir::{BranchId, Module, Value};
use brepl_predict::{evaluate_static, StaticPrediction};
use brepl_sim::{Machine, RunConfig, RunError};

/// Pipeline tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Maximum states per branch machine (the paper explores 2..=10).
    pub max_states: usize,
    /// Interpreter limits for both profiling and verification runs.
    pub run: RunConfig,
    /// When true (default), statically validate every replicated module
    /// against the original with the translation validator
    /// ([`brepl_analysis::validate_replication`]): instruction streams,
    /// edge projections, predicted directions and live-in sets must all
    /// check out. Error-severity diagnostics quarantine the offending
    /// sites (or abort under [`Self::strict`]); warnings are collected
    /// into [`PipelineResult::warnings`].
    pub validate: bool,
    /// When true (default), additionally gate every round on the
    /// witness-independent history checker
    /// ([`brepl_analysis::check_history`]): the product of the replicated
    /// CFG with each planned machine's transition table must show every
    /// replica reachable only under states agreeing with its pinned
    /// prediction. Independent trust base from `validate` — it never reads
    /// the replica-map witness.
    pub check_history: bool,
    /// Per-diagnostic-code severity overrides applied to both static
    /// validators' output (allow-listing a code, promoting warnings,
    /// demoting errors). Default: every code at its built-in severity.
    pub lint: LintConfig,
    /// When true (default), additionally compare the original's profiling
    /// run against the shipped program's re-measure run — results, output
    /// tapes, step counts and per-site branch histograms — a single
    /// dynamic backstop behind the static validator, which covers every
    /// round. Both runs happen anyway (and under [`Self::run`], the same
    /// configuration), so the backstop costs two histogram passes, not
    /// two extra simulations.
    pub dynamic_backstop: bool,
    /// Estimated code-size budget (growth factor). Branches are enabled in
    /// greedy benefit-per-size order until the estimate exceeds the budget
    /// — the paper's "cost function will calculate whether the increase in
    /// code size is worth the gain". `None` replicates every improving
    /// branch.
    pub max_size_growth: Option<f64>,
    /// *Realized* code-size budget with backoff (default `None` = off).
    /// Unlike [`Self::max_size_growth`], which gates on the selection-time
    /// *estimate*, this cap is checked against the actual replicated
    /// module each round; while exceeded, the pipeline halves the state
    /// count of the largest enabled machine (recorded in
    /// [`PipelineResult::size_backoffs`]) and finally drops the site
    /// (gate [`QuarantineGate::SizeBudget`]) — so adversarial profiles
    /// terminate at bounded size instead of blowing up.
    pub max_realized_growth: Option<f64>,
    /// When true (default), re-measure the replicated program and *drop*
    /// machines whose realized prediction is no better than profile (the
    /// trace-suffix profile of correlated machines is an approximation of
    /// the CFG-path replica, so a few machines can fail to transfer);
    /// replication is then redone with the pruned plan.
    pub refine: bool,
    /// When true (default), run the static direction classification
    /// ([`brepl_analysis::classify_module`]: SCCP over an interval
    /// domain plus trip-count proofs) and use it two ways: a
    /// **profile-vs-proof gate** before replication — trace counts that
    /// contradict a direction or bias proof (`BR013`–`BR015`), or a
    /// failed fixpoint (`BR017`), quarantine every candidate site (or
    /// abort under [`Self::strict`]), and shipped predictions are
    /// cross-checked against the proofs after replication (`BR016`) —
    /// and a **planner fast-path** that skips the machine search on
    /// proved-monostatic sites with a unanimous profile (bit-identical
    /// selection; the `BREPL_NO_CLASSIFY` environment variable disables
    /// only the skip, never the gate). The gate's trust base — abstract
    /// interpretation of the *original* module plus raw trace counts —
    /// is disjoint from both the replica-map witness (`validate`) and
    /// the machine transition tables (`check_history`).
    pub classify: bool,
    /// When true (default), estimate a [`brepl_analysis::StaticProfile`]
    /// for the original module — heuristic branch probabilities plus
    /// Wu–Larus frequency propagation, with the classify layer's proofs
    /// promoted to exact rationals — and run the **estimate-vs-measured
    /// drift gate** against the profiling trace: a measured taken-count
    /// contradicting an exact estimate (`BR019`), positive estimated
    /// mass at a proved-unreachable site (`BR020`), a flow-conservation
    /// violation inside the stored profile (`BR021`) or a blown
    /// propagation fixpoint (`BR022`). `BR019`/`BR020` quarantine the
    /// named site alone; `BR021`/`BR022` condemn the whole estimate and
    /// ship the baseline. Requires [`Self::classify`] (the estimator
    /// consumes its proofs); no-op without it.
    pub estimate: bool,
    /// When true (default), reuse gate results across refinement and
    /// quarantine rounds: the translation validator caches per function
    /// and the history checker per site, keyed by a fingerprint of
    /// everything each check reads (replicated function structure,
    /// witness slice, provenance, machine table, shipped predictions), so
    /// a round that only dropped a few sites re-proves only the functions
    /// those sites live in. The emitted diagnostics — codes, sites,
    /// rounds, messages, order — are identical to from-scratch gating;
    /// the `BREPL_NO_INCREMENTAL` environment variable forces the
    /// from-scratch path without a config change.
    pub incremental: bool,
    /// When true, any gate failure aborts with a typed [`PipelineError`]
    /// — today's pre-quarantine behavior, for CI runs where a firing gate
    /// means a replicator bug to investigate, not a site to ship without.
    /// Default `false`: degrade gracefully via per-site quarantine.
    pub strict: bool,
    /// Deterministic fault injection (test harness; feature `chaos`).
    /// `Some(config)` arms exactly one injection point for this run; the
    /// injected fault and the quarantine it provoked are recorded in
    /// [`PipelineResult::chaos_injection`] / `quarantined`.
    #[cfg(feature = "chaos")]
    pub chaos: Option<brepl_core::chaos::ChaosConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_states: 4,
            run: RunConfig::default(),
            validate: true,
            check_history: true,
            lint: LintConfig::new(),
            dynamic_backstop: true,
            max_size_growth: Some(3.0),
            max_realized_growth: None,
            refine: true,
            classify: true,
            estimate: true,
            incremental: true,
            strict: false,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// A program run trapped.
    Run(RunError),
    /// The replication transform failed.
    Replicate(ReplicateError),
    /// The static translation validator rejected the replicated program
    /// (rendered error-severity diagnostics, `; `-joined).
    Validation(String),
    /// The witness-independent history checker rejected the replicated
    /// program (rendered error-severity diagnostics, `; `-joined).
    History(String),
    /// The dynamic backstop found a divergence between the programs.
    Equivalence(String),
    /// The profiling trace failed an integrity check (e.g. it no longer
    /// decodes after mid-stream truncation).
    Trace(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Run(e) => write!(f, "program run failed: {e}"),
            PipelineError::Replicate(e) => write!(f, "replication failed: {e}"),
            PipelineError::Validation(e) => write!(f, "static validation failed: {e}"),
            PipelineError::History(e) => write!(f, "history check failed: {e}"),
            PipelineError::Equivalence(e) => write!(f, "equivalence check failed: {e}"),
            PipelineError::Trace(e) => write!(f, "profiling trace rejected: {e}"),
        }
    }
}

impl Error for PipelineError {}

impl From<RunError> for PipelineError {
    fn from(e: RunError) -> Self {
        PipelineError::Run(e)
    }
}

impl From<ReplicateError> for PipelineError {
    fn from(e: ReplicateError) -> Self {
        PipelineError::Replicate(e)
    }
}

/// Which gate removed a site from the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuarantineGate {
    /// The static translation validator ([`validate_replication`]).
    Validation,
    /// The witness-independent history checker ([`check_history`]).
    History,
    /// The replication transform itself refused the site.
    Replicate,
    /// The profiling trace failed integrity checking.
    Profile,
    /// The realized code-growth budget
    /// ([`PipelineConfig::max_realized_growth`]) was exhausted.
    SizeBudget,
    /// The static direction classification contradicted the profile
    /// ([`PipelineConfig::classify`]; codes `BR013`–`BR017`).
    Classify,
    /// The estimate-vs-measured drift gate fired
    /// ([`PipelineConfig::estimate`]; codes `BR019`–`BR022`).
    Estimate,
}

impl QuarantineGate {
    /// Stable lowercase name (JSON output, logs).
    pub fn name(self) -> &'static str {
        match self {
            QuarantineGate::Validation => "validation",
            QuarantineGate::History => "history",
            QuarantineGate::Replicate => "replicate",
            QuarantineGate::Profile => "profile",
            QuarantineGate::SizeBudget => "size-budget",
            QuarantineGate::Classify => "classify",
            QuarantineGate::Estimate => "estimate",
        }
    }

    /// The strict-mode error carrying `rendered` for this gate.
    fn hard_error(self, rendered: String) -> PipelineError {
        match self {
            QuarantineGate::History => PipelineError::History(rendered),
            // A profile contradicting a static proof means the trace
            // itself cannot be trusted, like a failed integrity check —
            // and an estimate contradicting the measured trace means one
            // of the two is lying, same verdict.
            QuarantineGate::Classify | QuarantineGate::Estimate => PipelineError::Trace(rendered),
            _ => PipelineError::Validation(rendered),
        }
    }
}

impl fmt::Display for QuarantineGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One site the pipeline dropped instead of aborting, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedSite {
    /// The original-module branch site.
    pub site: BranchId,
    /// The gate that rejected it.
    pub gate: QuarantineGate,
    /// Offending diagnostic codes (sorted, deduplicated; empty for
    /// non-diagnostic gates like [`QuarantineGate::SizeBudget`]).
    pub codes: Vec<DiagCode>,
    /// Rendered explanation (first few diagnostics, or the gate's own
    /// message).
    pub reason: String,
    /// Which replication round (1-based) dropped the site.
    pub round: usize,
}

/// One growth-budget backoff step: a machine shrunk (or dropped, when
/// `to_states == 0`) because the realized module exceeded
/// [`PipelineConfig::max_realized_growth`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeBackoff {
    /// The site whose machine was shrunk.
    pub site: BranchId,
    /// State count before the step.
    pub from_states: usize,
    /// State count after the step (`0` = the site was dropped).
    pub to_states: usize,
    /// Which replication round (1-based) took the step.
    pub round: usize,
}

/// Summary of the static direction-classification stage
/// ([`PipelineConfig::classify`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassificationSummary {
    /// Sites whose direction is proved (always- or never-taken).
    pub proved: usize,
    /// Sites with an exact trip-count bias proof.
    pub bounded: usize,
    /// Sites left profile-dependent.
    pub dependent: usize,
    /// Proved sites the planner skipped the machine search for (their
    /// unanimous profile makes the Profile choice unbeatable; `0` when
    /// `BREPL_NO_CLASSIFY` is set).
    pub planner_skips: usize,
    /// Whether every function's classification fixpoint converged
    /// (`false` ⇒ a `BR017` fired for each unconverged function).
    pub converged: bool,
}

/// Summary of the static profile estimation stage
/// ([`PipelineConfig::estimate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EstimateSummary {
    /// Sites whose bias estimate is proof-backed exact.
    pub exact_sites: usize,
    /// Sites carrying heuristic-only estimates.
    pub heuristic_sites: usize,
    /// Whether every function's frequency propagation converged
    /// (`false` ⇒ a `BR022` fired for each unconverged function).
    pub converged: bool,
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineResult {
    /// Misprediction (%) of plain profile prediction on the original
    /// program.
    pub profile_misprediction_percent: f64,
    /// Misprediction (%) of static per-site prediction on the replicated
    /// program.
    pub replicated_misprediction_percent: f64,
    /// Misprediction (%) the selection promised on the profiling run
    /// (ignoring replication mechanics); close to the replicated number.
    pub selected_misprediction_percent: f64,
    /// Code size growth factor.
    pub size_growth: f64,
    /// Branch events in the profiling trace.
    pub trace_events: u64,
    /// The per-branch strategy selection.
    pub selection: Selection,
    /// The sites whose machines actually shipped: enabled by the size
    /// budget and kept by every refinement round.
    pub replicated_sites: BTreeSet<BranchId>,
    /// Sites dropped by a gate instead of aborting the pipeline
    /// (empty under [`PipelineConfig::strict`], which aborts instead, and
    /// on clean runs).
    pub quarantined: Vec<QuarantinedSite>,
    /// Growth-budget backoff steps taken
    /// ([`PipelineConfig::max_realized_growth`]).
    pub size_backoffs: Vec<SizeBackoff>,
    /// Warning-severity diagnostics from the last round of the static
    /// gates — the witness validator, the history checker and the
    /// classification gate (e.g. `BR018` constant-condition notes) — as
    /// filtered by [`PipelineConfig::lint`] (empty when all are
    /// disabled). Error-severity diagnostics quarantine or abort instead
    /// of landing here.
    pub warnings: Vec<AnalysisDiag>,
    /// Summary of the static direction classification, or `None` when
    /// [`PipelineConfig::classify`] is off.
    pub classification: Option<ClassificationSummary>,
    /// Summary of the static profile estimation, or `None` when
    /// [`PipelineConfig::estimate`] (or [`PipelineConfig::classify`])
    /// is off.
    pub estimate: Option<EstimateSummary>,
    /// True when the pipeline was planned from a synthesized static
    /// profile ([`run_pipeline_static`]) instead of a profiling run.
    pub static_planned: bool,
    /// The fault the armed chaos engine injected, if it fired
    /// (feature `chaos`; see [`PipelineConfig::chaos`]).
    #[cfg(feature = "chaos")]
    pub chaos_injection: Option<brepl_core::chaos::Injection>,
    /// The replicated program with predictions and provenance.
    pub program: ReplicatedProgram,
}

/// Runs the whole pipeline on `module` with entry function `main`.
///
/// Gate failures quarantine the offending sites and re-replicate without
/// them (see [`PipelineResult::quarantined`]); under
/// [`PipelineConfig::strict`] they abort instead.
///
/// # Errors
///
/// Returns a [`PipelineError`] if any run traps, the dynamic backstop
/// finds a divergence, a gate fires with *nothing left to quarantine*
/// (errors on an empty plan would be a validator bug), or — in strict
/// mode — any gate fires at all.
pub fn run_pipeline(
    module: &Module,
    args: &[Value],
    input: &[Value],
    config: PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    // 1. Profile.
    let mut machine = Machine::new(module, config.run)?;
    machine.set_input(input.to_vec());
    let outcome = machine.run("main", args)?;
    let profile_output = machine.output().to_vec();
    run_pipeline_profiled(module, args, input, &outcome, &profile_output, config)
}

/// [`run_pipeline`] on an already-profiled run.
///
/// `profile`/`profile_output` must be the outcome and output tape of
/// running `module` on exactly `args`/`input` under `config.run` —
/// execution is deterministic, so a caller that just profiled (the bench
/// harness times profiling as its own stage) passes the measurements here
/// instead of paying the run again, and the result is identical to
/// [`run_pipeline`].
///
/// # Errors
///
/// As [`run_pipeline`].
pub fn run_pipeline_profiled(
    module: &Module,
    args: &[Value],
    input: &[Value],
    profile: &brepl_sim::Outcome,
    profile_output: &[Value],
    config: PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    let outcome = profile;
    let stats = outcome.trace.stats();
    let profile_pct = stats.profile_misprediction_percent();

    // 1b. Static direction classification: SCCP over intervals plus
    // trip-count proofs, on the *original* module — the gate below and
    // the planner fast-path both consume it.
    let classification = if config.classify {
        Some(classify_module(module))
    } else {
        None
    };

    // 1c. Static profile estimation, also on the *original* module:
    // the classify layer's proofs promoted to exact rationals plus
    // Ball–Larus heuristics, propagated Wu–Larus-style into per-site
    // expected frequencies. Judged against the measured trace by the
    // drift gate below (2c).
    #[allow(unused_mut)]
    let mut static_profile = match &classification {
        Some(cls) if config.estimate => Some(estimate_profile(module, cls)),
        _ => None,
    };

    // 2. Select per-branch machines — proved-monostatic sites with a
    // unanimous profile skip the machine search, with a bit-identical
    // result (`BREPL_NO_CLASSIFY` disables only this skip) — then apply
    // the size budget by taking branches in greedy benefit-per-size
    // order.
    let fast_path = if std::env::var_os("BREPL_NO_CLASSIFY").is_some() {
        None
    } else {
        classification.as_ref()
    };
    let (selection, planner_skips) =
        select_strategies_classified(module, &outcome.trace, config.max_states, fast_path);
    let mut enabled: BTreeSet<BranchId> = match config.max_size_growth {
        None => selection
            .choices()
            .iter()
            .filter(|c| c.benefit() > 0)
            .map(|c| c.site)
            .collect(),
        Some(budget) => {
            let curve = brepl_core::greedy::greedy_curve_from_selection(
                module,
                &selection,
                outcome.trace.len() as u64,
            );
            curve.sites_within_budget(budget).into_iter().collect()
        }
    };

    let mut quarantined: Vec<QuarantinedSite> = Vec::new();
    let mut size_backoffs: Vec<SizeBackoff> = Vec::new();
    // Machines shrunk by the growth backoff, replacing the selection's
    // choice for their site in every later round.
    let mut overrides: BTreeMap<BranchId, BranchMachine> = BTreeMap::new();

    #[cfg(feature = "chaos")]
    let mut chaos_engine = config.chaos.map(brepl_core::chaos::ChaosEngine::new);
    // Trace stats the classification gate judges; replaced by forged
    // stats when the ForgeTraceEvent chaos point fires.
    #[cfg(feature = "chaos")]
    let mut gate_stats_override: Option<brepl_trace::TraceStats> = None;
    #[cfg(feature = "chaos")]
    if let Some(eng) = &mut chaos_engine {
        // ForgeTraceEvent fires first, before the victim is pinned from
        // the enabled set: it flips one event at a proved-monostatic site
        // (pinning that site as the victim) so the classification gate
        // must catch the contradiction — BR013 — while the witness and
        // history gates stay blind (the forged trace never steers
        // replication).
        if let Some(cls) = &classification {
            if let Some(forged) = eng.forge_trace(&outcome.trace, &cls.proved_sites()) {
                gate_stats_override = Some(forged.stats());
            }
        }
        // ForgeStaticProfile also fires before victim pinning: it
        // perturbs one exact estimate in the profile the drift gate
        // judges (pinning that site as the victim), leaving the trace,
        // module, witness and machine tables honest — BR019 must catch
        // it while BR001–BR018 stay blind.
        if let Some(profile) = &mut static_profile {
            eng.forge_static_profile(profile, &stats);
        }
        let candidates: Vec<BranchId> = enabled.iter().copied().collect();
        eng.pin_victim(&candidates);
        // TruncateTrace fires here, against the profiling trace.
        if let Some(err) = eng.corrupt_trace(&outcome.trace) {
            if config.strict {
                return Err(PipelineError::Trace(format!(
                    "trace truncated mid-event, decode fails with {err:?}"
                )));
            }
            // The profiling data is untrustworthy for replication: ship
            // the baseline, quarantining every candidate site.
            for &site in &enabled {
                quarantined.push(QuarantinedSite {
                    site,
                    gate: QuarantineGate::Profile,
                    codes: Vec::new(),
                    reason: format!("profiling trace truncated mid-event: {err:?}"),
                    round: 0,
                });
            }
            enabled.clear();
        }
    }

    // 2b. Classification gate: the profile must be consistent with the
    // static proofs — no events in a proved-impossible direction (BR013),
    // no taken-count violating an exact bias proof (BR014), no events at
    // provably unreachable sites (BR015) — and every function's fixpoint
    // must have converged (BR017, fail closed). A conflict means the
    // trace or the analysis is lying, so *neither* may steer replication:
    // ship the baseline, quarantining every candidate site (or abort
    // under strict). BR018 constant-condition notes pass through as
    // warnings.
    let mut classify_warnings: Vec<AnalysisDiag> = Vec::new();
    let mut classify_gate_fired = false;
    if let Some(cls) = &classification {
        let diags = {
            #[cfg(feature = "chaos")]
            let gate_stats = gate_stats_override.as_ref().unwrap_or(&stats);
            #[cfg(not(feature = "chaos"))]
            let gate_stats = &stats;
            classification_diags(module, cls, gate_stats)
        };
        let (errors, warns) = config.lint.partition(diags);
        classify_warnings = warns;
        if !errors.is_empty() {
            classify_gate_fired = true;
            if config.strict {
                return Err(QuarantineGate::Classify.hard_error(render_joined(&errors, module)));
            }
            // Name the implicated sites first (BR013–BR015 carry their
            // branch), then ship the baseline: a profile that contradicts
            // even one proof cannot be trusted to steer any replication.
            let mut by_site: BTreeMap<BranchId, Vec<&AnalysisDiag>> = BTreeMap::new();
            for d in &errors {
                if let Some(site) = d.site {
                    by_site.entry(site).or_default().push(d);
                }
            }
            for (&site, diags) in &by_site {
                let mut codes: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
                codes.sort_unstable();
                codes.dedup();
                quarantined.push(QuarantinedSite {
                    site,
                    gate: QuarantineGate::Classify,
                    codes,
                    reason: render_capped(
                        &diags.iter().map(|&d| d.clone()).collect::<Vec<_>>(),
                        module,
                    ),
                    round: 0,
                });
            }
            let mut batch_codes: Vec<DiagCode> = errors.iter().map(|d| d.code).collect();
            batch_codes.sort_unstable();
            batch_codes.dedup();
            let reason = render_capped(&errors, module);
            for &site in &enabled {
                if by_site.contains_key(&site) {
                    continue;
                }
                quarantined.push(QuarantinedSite {
                    site,
                    gate: QuarantineGate::Classify,
                    codes: batch_codes.clone(),
                    reason: reason.clone(),
                    round: 0,
                });
            }
            enabled.clear();
        }
    }

    // 2c. Estimate-vs-measured drift gate: the static profile must be
    // consistent with the measured trace and its own invariants — no
    // measured taken-count contradicting an exact proof-promoted
    // estimate (BR019), no estimated mass at a proved-unreachable site
    // (BR020), flow conservation intact (BR021), every propagation
    // fixpoint converged (BR022). BR019/BR020 carry a site and
    // quarantine it alone — those are exactly the sites whose measured
    // behavior the static view cannot explain; a siteless violation
    // (BR021/BR022) condemns the whole estimate, and because the
    // profile data structure itself is then untrustworthy the pipeline
    // ships the baseline. Skipped when the classification gate already
    // fired: the trace is condemned wholesale and the baseline ships —
    // there is no per-site verdict left to refine.
    if let (Some(cls), Some(profile), false) =
        (&classification, &static_profile, classify_gate_fired)
    {
        let diags = {
            #[cfg(feature = "chaos")]
            let gate_stats = gate_stats_override.as_ref().unwrap_or(&stats);
            #[cfg(not(feature = "chaos"))]
            let gate_stats = &stats;
            static_profile_diags(module, cls, profile, gate_stats)
        };
        let (errors, warns) = config.lint.partition(diags);
        classify_warnings.extend(warns);
        if !errors.is_empty() {
            if config.strict {
                return Err(QuarantineGate::Estimate.hard_error(render_joined(&errors, module)));
            }
            let mut by_site: BTreeMap<BranchId, Vec<&AnalysisDiag>> = BTreeMap::new();
            let mut siteless: Vec<AnalysisDiag> = Vec::new();
            for d in &errors {
                match d.site {
                    Some(site) => by_site.entry(site).or_default().push(d),
                    None => siteless.push(d.clone()),
                }
            }
            for (&site, diags) in &by_site {
                let mut codes: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
                codes.sort_unstable();
                codes.dedup();
                enabled.remove(&site);
                quarantined.push(QuarantinedSite {
                    site,
                    gate: QuarantineGate::Estimate,
                    codes,
                    reason: render_capped(
                        &diags.iter().map(|&d| d.clone()).collect::<Vec<_>>(),
                        module,
                    ),
                    round: 0,
                });
            }
            if !siteless.is_empty() {
                let mut codes: Vec<DiagCode> = siteless.iter().map(|d| d.code).collect();
                codes.sort_unstable();
                codes.dedup();
                let reason = render_capped(&siteless, module);
                for &site in &enabled {
                    quarantined.push(QuarantinedSite {
                        site,
                        gate: QuarantineGate::Estimate,
                        codes: codes.clone(),
                        reason: reason.clone(),
                        round: 0,
                    });
                }
                enabled.clear();
            }
        }
    }

    // 3–5. Replicate, gate, measure — quarantining or backing off on
    // failure. Every retry strictly shrinks (site count, or the state
    // count of some machine), so the loop terminates. Gate results carry
    // over between rounds through `gate_cache` (identical diagnostics,
    // functions/sites untouched by the round's drops are not re-proved);
    // `BREPL_NO_INCREMENTAL` restores unconditional from-scratch gating.
    let incremental = config.incremental && std::env::var_os("BREPL_NO_INCREMENTAL").is_none();
    let mut gate_cache = brepl_analysis::GateCache::new();
    let mut round = 0usize;
    let (program, report, warnings, outcome2, output2) = loop {
        round += 1;
        let mut plan = selection.to_plan_filtered(|site| enabled.contains(&site));
        for (&site, m) in &overrides {
            if enabled.contains(&site) {
                plan.assign(site, m.clone());
            }
        }
        #[allow(unused_mut)]
        let mut program = match apply_plan(module, &plan, &stats) {
            Ok(p) => p,
            Err(e) => {
                if config.strict || enabled.is_empty() {
                    return Err(e.into());
                }
                // Quarantine the named site; an opaque transform error
                // degrades coarsely to the unreplicated baseline.
                match e {
                    ReplicateError::UnknownBranch(s) | ReplicateError::NotInLoop(s)
                        if enabled.contains(&s) =>
                    {
                        enabled.remove(&s);
                        quarantined.push(QuarantinedSite {
                            site: s,
                            gate: QuarantineGate::Replicate,
                            codes: Vec::new(),
                            reason: format!("replication transform refused the site: {e}"),
                            round,
                        });
                    }
                    other => {
                        for &site in &enabled {
                            quarantined.push(QuarantinedSite {
                                site,
                                gate: QuarantineGate::Replicate,
                                codes: Vec::new(),
                                reason: format!("replication transform failed: {other}"),
                                round,
                            });
                        }
                        enabled.clear();
                    }
                }
                continue;
            }
        };

        // Realized-growth budget: shrink the largest machine (halving its
        // states) while over budget; drop the site once it cannot shrink.
        if let Some(budget) = config.max_realized_growth {
            let growth = program.size_growth(module);
            if growth > budget && !enabled.is_empty() {
                let (site, states) = plan
                    .assignments
                    .iter()
                    .filter(|(s, _)| enabled.contains(*s))
                    .map(|(&s, m)| (s, machine_states(m)))
                    .max_by_key(|&(s, st)| (st, std::cmp::Reverse(s)))
                    .expect("enabled sites all have plan entries");
                if states > 2 {
                    let target = (states / 2).max(2);
                    let shrunk = match &plan.assignments[&site] {
                        BranchMachine::Loop(m) => BranchMachine::Loop(m.shrunk(target)),
                        BranchMachine::Correlated(c) => {
                            let mut c = c.clone();
                            c.paths.truncate(target - 1);
                            BranchMachine::Correlated(c)
                        }
                    };
                    overrides.insert(site, shrunk);
                    size_backoffs.push(SizeBackoff {
                        site,
                        from_states: states,
                        to_states: target,
                        round,
                    });
                } else {
                    enabled.remove(&site);
                    overrides.remove(&site);
                    size_backoffs.push(SizeBackoff {
                        site,
                        from_states: states,
                        to_states: 0,
                        round,
                    });
                    quarantined.push(QuarantinedSite {
                        site,
                        gate: QuarantineGate::SizeBudget,
                        codes: Vec::new(),
                        reason: format!(
                            "realized growth {growth:.2}x exceeds budget {budget:.2}x with no states left to shed"
                        ),
                        round,
                    });
                }
                continue;
            }
        }

        // Armed chaos injections against the replicated artifacts (the
        // engine fires at most once per run, and only while its victim is
        // still in the plan).
        #[cfg(feature = "chaos")]
        if let Some(eng) = &mut chaos_engine {
            if eng.victim().is_some_and(|v| enabled.contains(&v)) {
                eng.corrupt_program(module, &mut program);
            }
        }

        // Primary gate: the static translation validator checks the
        // simulation relation against the replica-map witness on every
        // round — no execution required.
        let mut round_warnings = Vec::new();
        if config.validate {
            let diags = if incremental {
                brepl_analysis::validate_replication_cached(
                    module,
                    &program.module,
                    &program.replica_map,
                    &program.predictions,
                    &mut gate_cache,
                )
            } else {
                validate_replication(
                    module,
                    &program.module,
                    &program.replica_map,
                    &program.predictions,
                )
            };
            let (errors, warns) = config.lint.partition(diags);
            if !errors.is_empty() {
                if config.strict {
                    return Err(QuarantineGate::Validation
                        .hard_error(render_joined(&errors, &program.module)));
                }
                quarantine_errors(
                    &errors,
                    QuarantineGate::Validation,
                    round,
                    &program.module,
                    &mut enabled,
                    &mut quarantined,
                )?;
                continue;
            }
            round_warnings = warns;
        }
        // Second gate, independent trust base: re-prove the history
        // encoding from the plan's transition tables and the shipped
        // module alone — the replica-map witness is never consulted.
        if config.check_history {
            #[allow(unused_mut)]
            let mut spec = plan.history_spec();
            #[cfg(feature = "chaos")]
            if let Some(eng) = &mut chaos_engine {
                if eng.victim().is_some_and(|v| enabled.contains(&v)) {
                    eng.corrupt_spec(&program, &mut spec);
                }
            }
            let diags = if incremental {
                brepl_analysis::check_history_cached(
                    &program.module,
                    &program.provenance,
                    &spec,
                    &program.predictions,
                    &mut gate_cache,
                )
            } else {
                check_history(
                    &program.module,
                    &program.provenance,
                    &spec,
                    &program.predictions,
                )
            };
            let (errors, warns) = config.lint.partition(diags);
            if !errors.is_empty() {
                if config.strict {
                    return Err(
                        QuarantineGate::History.hard_error(render_joined(&errors, &program.module))
                    );
                }
                quarantine_errors(
                    &errors,
                    QuarantineGate::History,
                    round,
                    &program.module,
                    &mut enabled,
                    &mut quarantined,
                )?;
                continue;
            }
            round_warnings.extend(warns);
        }
        let mut machine2 = Machine::new(&program.module, config.run)?;
        machine2.set_input(input.to_vec());
        let outcome2 = machine2.run("main", args)?;
        let output2 = machine2.output().to_vec();
        let report = evaluate_static(&program.predictions, &outcome2.trace);
        if !config.refine {
            break (program, report, round_warnings, outcome2, output2);
        }
        // Fold replicated-site mispredictions back to original sites.
        let mut folded: std::collections::HashMap<BranchId, u64> = std::collections::HashMap::new();
        for (site, _, wrong) in report.iter_sites() {
            *folded.entry(program.provenance[site.index()]).or_default() += wrong;
        }
        let mut dropped = false;
        for choice in selection.choices() {
            if !enabled.contains(&choice.site) {
                continue;
            }
            let realized = folded.get(&choice.site).copied().unwrap_or(0);
            if refine_should_drop(realized, choice.profile_misses) {
                enabled.remove(&choice.site);
                dropped = true;
            }
        }
        if !dropped {
            break (program, report, round_warnings, outcome2, output2);
        }
    };

    // Proof-vs-prediction cross-check (BR016) on the shipped program:
    // every replica *not* pinned by a machine state carries its original
    // site's profile-majority prediction, which must agree with any
    // direction proof for that site (an honest profile's majority always
    // does). Firing here means an analysis or replication bug — there is
    // no site left to quarantine, so like gate errors against an empty
    // plan it is a hard error in every mode.
    if let Some(cls) = &classification {
        let mut folded = StaticPrediction::with_default(true);
        let mut checked: BTreeSet<BranchId> = BTreeSet::new();
        for (fid, func) in program.module.iter_functions() {
            let fmap = &program.replica_map.functions[fid.index()];
            for (bid, block) in func.iter_blocks() {
                let brepl_ir::Term::Br { site, .. } = block.term else {
                    continue;
                };
                if fmap.machine_predictions[bid.index()].is_some() {
                    continue;
                }
                let orig = program.provenance[site.index()];
                if stats.site(orig).total() == 0 {
                    continue;
                }
                folded.set(orig, program.predictions.get(site));
                checked.insert(orig);
            }
        }
        let sites: Vec<BranchId> = checked.into_iter().collect();
        let diags = prediction_proof_diags(module, cls, &folded, &sites);
        let (errors, warns) = config.lint.partition(diags);
        if !errors.is_empty() {
            return Err(QuarantineGate::Classify.hard_error(render_joined(&errors, module)));
        }
        classify_warnings.extend(warns);
    }

    // Backstop behind the static gate: compare the profiling run of the
    // original against the final re-measure run of the shipped program —
    // both already executed above, so the check costs two dense histogram
    // passes, not two more full-length simulations.
    if config.dynamic_backstop {
        check_equivalence_outcomes(&program, outcome, profile_output, &outcome2, &output2)
            .map_err(|e| PipelineError::Equivalence(e.to_string()))?;
    }

    let mut warnings = warnings;
    warnings.extend(classify_warnings);

    Ok(PipelineResult {
        profile_misprediction_percent: profile_pct,
        replicated_misprediction_percent: report.misprediction_percent(),
        selected_misprediction_percent: selection.misprediction_percent(),
        size_growth: program.size_growth(module),
        trace_events: outcome.trace.len() as u64,
        selection,
        replicated_sites: enabled,
        quarantined,
        size_backoffs,
        warnings,
        classification: classification.as_ref().map(|cls| {
            let (proved, bounded, dependent) = cls.counts();
            ClassificationSummary {
                proved,
                bounded,
                dependent,
                planner_skips,
                converged: cls.converged(),
            }
        }),
        estimate: static_profile.as_ref().map(|p| {
            let (exact_sites, heuristic_sites) = p.counts();
            EstimateSummary {
                exact_sites,
                heuristic_sites,
                converged: p.converged(),
            }
        }),
        static_planned: false,
        #[cfg(feature = "chaos")]
        chaos_injection: chaos_engine.and_then(|e| e.into_injection()),
        program,
    })
}

/// [`run_pipeline`] with **zero profiling runs**: plans replication from
/// a synthesized static profile instead of a measured trace.
///
/// The module is classified, a [`brepl_analysis::StaticProfile`] is
/// estimated (proof-promoted exact biases plus Ball–Larus heuristics,
/// Wu–Larus frequency propagation), and the expected trace is
/// synthesized from it ([`synthesize_profile_trace`]) — whole periods of
/// each site's bias rational, budget-scaled by estimated frequency. That
/// synthetic outcome then drives the ordinary profiled pipeline: the
/// same selection, the same `apply_plan`, and the full `BR001`–`BR018`
/// gate stack re-prove the shipped program exactly as they would a
/// profile-planned one. `args`/`input` are used only for the
/// **after-the-fact measurement** run of the shipped program —
/// [`PipelineResult::replicated_misprediction_percent`] is real, while
/// `profile_misprediction_percent` and `trace_events` describe the
/// synthetic plan input.
///
/// Two knobs differ from the profiled path, necessarily: `refine` is off
/// (refinement compares the re-measure against the synthetic plan, which
/// would punish honest estimate error, not transfer failure) and the
/// dynamic backstop is off (there is no profiling run to compare
/// against). Everything else — including strictness, lint overrides and
/// the size budgets — applies unchanged.
///
/// # Errors
///
/// As [`run_pipeline`].
pub fn run_pipeline_static(
    module: &Module,
    args: &[Value],
    input: &[Value],
    config: PipelineConfig,
) -> Result<PipelineResult, PipelineError> {
    let cls = classify_module(module);
    let profile = estimate_profile(module, &cls);
    let trace = synthesize_profile_trace(&profile);
    let outcome = brepl_sim::Outcome {
        result: None,
        trace,
        steps: 0,
    };
    let static_config = PipelineConfig {
        refine: false,
        dynamic_backstop: false,
        ..config
    };
    let mut result = run_pipeline_profiled(module, args, input, &outcome, &[], static_config)?;
    result.static_planned = true;
    Ok(result)
}

/// One workload's inputs to [`run_pipeline_suite`]: a module plus the
/// arguments and input tape of its profiling run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineJob<'a> {
    /// The program to replicate.
    pub module: &'a Module,
    /// Entry-function arguments for the profiling and verification runs.
    pub args: &'a [Value],
    /// Input tape for the profiling and verification runs.
    pub input: &'a [Value],
}

/// Runs [`run_pipeline`] over every job on the analysis engine's worker
/// pool, returning results in job order.
///
/// This lifts `brepl_core::par_map` from the per-branch search to the
/// whole-pipeline stage: each job is an independent pure computation, the
/// engine merges results in input order, and nested parallelism inside a
/// job (the per-branch selection fan-out) automatically degrades to
/// serial on worker threads — so the output is **bit-identical** to
/// running the jobs in a serial loop, at suite-level parallel speed.
/// Stage-level memo hits (whole selections, per-branch searches) are
/// shared process-wide across jobs either way.
pub fn run_pipeline_suite(
    jobs: &[PipelineJob<'_>],
    config: PipelineConfig,
) -> Vec<Result<PipelineResult, PipelineError>> {
    run_pipeline_suite_with_threads(jobs, config, brepl_core::thread_count())
}

/// [`run_pipeline_suite`] with an explicit worker count (`1` = serial).
pub fn run_pipeline_suite_with_threads(
    jobs: &[PipelineJob<'_>],
    config: PipelineConfig,
    threads: usize,
) -> Vec<Result<PipelineResult, PipelineError>> {
    brepl_core::par_map_with(threads, jobs, |job| {
        run_pipeline(job.module, job.args, job.input, config)
    })
}

/// Tunables for [`run_pipeline_adaptive`]: the planning pipeline plus
/// the re-specialization layer's knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveConfig {
    /// Planning-time pipeline configuration (profiling on the first
    /// segment, full gate stack). Under the `chaos` feature, the
    /// `inject-drift` and `corrupt-patch` points are stripped from the
    /// planning run — they attack the adaptive layer, and an honest plan
    /// is their precondition; every other point passes through unchanged.
    pub pipeline: PipelineConfig,
    /// Re-specialization knobs (detection windows, CUSUM thresholds,
    /// verification improvement floor, backoff caps).
    pub respec: brepl_core::RespecConfig,
}

/// One observed segment of an adaptive run.
#[derive(Clone, Debug)]
pub struct SegmentMeasure {
    /// Segment index (`0` = the planning segment).
    pub segment: usize,
    /// Branch events the segment drove through the shipped program.
    pub events: u64,
    /// Measured misprediction (%) of the program that ran the segment —
    /// measured *before* any patch this segment's observation produced,
    /// so a drift segment shows the stale pins' real cost.
    pub misprediction_percent: f64,
    /// Patch records appended or resolved by observing this segment.
    pub patches: Vec<brepl_core::PatchRecord>,
}

/// Everything [`run_pipeline_adaptive`] produced.
#[derive(Debug)]
pub struct AdaptiveResult {
    /// The planning-time pipeline result (profiled on segment 0).
    pub plan: PipelineResult,
    /// Per-segment measurements, in segment order.
    pub segments: Vec<SegmentMeasure>,
    /// The full patch log, oldest first, final outcomes filled in.
    pub patch_log: Vec<brepl_core::PatchRecord>,
    /// `BR023`/`BR024` diagnostics from the re-specialization layer.
    pub respec_diags: Vec<AnalysisDiag>,
    /// Sites still machine-controlled after the last segment.
    pub enabled_sites: BTreeSet<BranchId>,
    /// Sites demoted to their profile-majority single version.
    pub demoted_sites: BTreeSet<BranchId>,
    /// Sites quarantined from further patching (flapping).
    pub quarantined_sites: Vec<BranchId>,
    /// Incremental-gate cache hits the patch gating scored.
    pub gate_cache_hits: usize,
    /// The fault the adaptive-layer chaos engine injected, if it fired
    /// (`inject-drift` / `corrupt-patch`; plan-time points record into
    /// [`PipelineResult::chaos_injection`] instead).
    #[cfg(feature = "chaos")]
    pub chaos_injection: Option<brepl_core::chaos::Injection>,
    /// The finally shipped program, after every surviving patch.
    pub program: ReplicatedProgram,
}

/// The adaptive pipeline: plan on the first input segment, ship, then
/// keep the shipped program alive across the remaining segments —
/// detecting input-distribution drift online and hot-patching the
/// program with proof-gated minimal patches instead of re-planning.
///
/// Segment 0 is the planning segment: it drives the ordinary profiled
/// pipeline ([`run_pipeline_profiled`]) end to end, gate stack included.
/// The shipped program is then wrapped in [`brepl_core::Respec`] and run
/// over the full concatenated tape once per segment (execution is
/// deterministic, so each run's prefix is exactly what already shipped);
/// segment `k`'s event slice — delimited by
/// [`brepl_sim::Machine::run_segmented`] marks — is measured and fed to
/// the patcher. Every candidate patch re-proves under `BR001`–`BR012`
/// before commit, survives one verification window or rolls back
/// byte-identically, and the final program re-proves once more from
/// scratch before this function returns.
///
/// # Panics
///
/// Panics if `segments` is empty — there is nothing to plan on.
///
/// # Errors
///
/// As [`run_pipeline`], plus a [`PipelineError::Validation`] if the
/// final from-scratch re-proof of the patched program fails (a patch
/// that gated clean but ships dirty is a re-specializer bug).
pub fn run_pipeline_adaptive(
    module: &Module,
    args: &[Value],
    segments: &[Vec<Value>],
    config: AdaptiveConfig,
) -> Result<AdaptiveResult, PipelineError> {
    assert!(
        !segments.is_empty(),
        "adaptive runs need at least one segment"
    );
    // 1. Plan on the first segment, exactly like the plain pipeline.
    let mut machine = Machine::new(module, config.pipeline.run)?;
    machine.set_input(segments[0].clone());
    let profile = machine.run("main", args)?;
    let profile_output = machine.output().to_vec();
    let plan_stats = profile.trace.stats();

    #[allow(unused_mut)]
    let mut plan_config = config.pipeline;
    #[cfg(feature = "chaos")]
    let mut adaptive_engine = {
        use brepl_core::chaos::{ChaosEngine, ChaosPoint};
        let mut engine = None;
        if let Some(cc) = plan_config.chaos {
            if matches!(cc.point, ChaosPoint::InjectDrift | ChaosPoint::CorruptPatch) {
                // These points attack the adaptive layer; the plan must
                // stay honest for the attack to even be visible.
                plan_config.chaos = None;
                engine = Some(ChaosEngine::new(cc));
            }
        }
        engine
    };
    let plan = run_pipeline_profiled(
        module,
        args,
        &segments[0],
        &profile,
        &profile_output,
        plan_config,
    )?;

    // 2. Statically proved directions: the patcher must never override
    // them, no matter what the observed counters claim.
    let proved: Vec<(BranchId, bool)> = if config.pipeline.classify {
        classify_module(module).proved_sites()
    } else {
        Vec::new()
    };

    // 3. Wrap the shipped plan in the re-specialization layer.
    let mut respec = brepl_core::Respec::new(
        module,
        &plan.selection,
        &plan.replicated_sites,
        &plan_stats,
        &proved,
        config.respec,
    )?;

    #[cfg(feature = "chaos")]
    let patchable: Vec<BranchId> = {
        let proved_sites: BTreeSet<BranchId> = proved.iter().map(|&(s, _)| s).collect();
        (0..module.branch_count())
            .map(BranchId::from_index)
            .filter(|&s| plan_stats.site(s).total() > 0 && !proved_sites.contains(&s))
            .collect()
    };

    // 4. Reference run: the *original* module over the full tape — the
    // dynamic-equivalence baseline every segment run is held to.
    let input: Vec<Value> = segments.iter().flatten().cloned().collect();
    let mut bounds = Vec::with_capacity(segments.len());
    let mut acc = 0usize;
    for seg in segments {
        acc += seg.len();
        bounds.push(acc);
    }
    let mut reference = Machine::new(module, config.pipeline.run)?;
    reference.set_input(input.clone());
    let ref_outcome = reference.run("main", args)?;
    let ref_output = reference.output().to_vec();

    // 5. Observe segment by segment: run the current program, slice out
    // segment k's events, measure, feed the patcher.
    let mut measures = Vec::with_capacity(segments.len());
    for k in 0..segments.len() {
        let mut m2 = Machine::new(&respec.program().module, config.pipeline.run)?;
        m2.set_input(input.clone());
        let (outcome2, marks) = m2.run_segmented("main", args, &bounds)?;
        let output2 = m2.output().to_vec();
        if config.pipeline.dynamic_backstop {
            check_equivalence_outcomes(
                respec.program(),
                &ref_outcome,
                &ref_output,
                &outcome2,
                &output2,
            )
            .map_err(|e| PipelineError::Equivalence(e.to_string()))?;
        }
        let start = if k == 0 { 0 } else { marks[k - 1] };
        // Events after the tape is exhausted (drain loops, epilogues)
        // belong to the last segment.
        let end = if k + 1 == segments.len() {
            outcome2.trace.len()
        } else {
            marks[k]
        };
        let mut slice = brepl_trace::Trace::with_capacity(end - start);
        let mut misses = 0u64;
        for ev in outcome2.trace.iter().skip(start).take(end - start) {
            if respec.program().predictions.get(ev.site) != ev.taken {
                misses += 1;
            }
            slice.push(ev);
        }
        let events = slice.len() as u64;
        let pct = if events == 0 {
            0.0
        } else {
            100.0 * misses as f64 / events as f64
        };

        // InjectDrift forges the patcher's view of a post-planning
        // segment; the measurement above already captured the honest
        // slice, and the execution itself is never touched.
        #[cfg(feature = "chaos")]
        let slice = match &mut adaptive_engine {
            Some(eng) if k >= 1 => eng
                .inject_drift(&slice, &patchable, &respec.program().provenance)
                .unwrap_or(slice),
            _ => slice,
        };
        let patches = respec.observe(k, &slice);
        // CorruptPatch flips a patch the gate just accepted — the
        // verification window is the only defense left.
        #[cfg(feature = "chaos")]
        if let Some(eng) = &mut adaptive_engine {
            let committed = patches
                .iter()
                .find(|r| r.outcome == brepl_core::PatchOutcome::Committed)
                .map(|r| r.site);
            if let Some(site) = committed {
                eng.corrupt_patch(respec.program_mut(), site);
            }
        }
        measures.push(SegmentMeasure {
            segment: k,
            events,
            misprediction_percent: pct,
            patches,
        });
    }

    // 6. Final acceptance: the shipped program — after every surviving
    // patch — must re-prove clean under the full BR001–BR012 stack,
    // from scratch, no cache in the loop.
    let final_diags = respec.revalidate();
    let (errors, _) = config.pipeline.lint.partition(final_diags);
    if !errors.is_empty() {
        return Err(PipelineError::Validation(render_joined(
            &errors,
            &respec.program().module,
        )));
    }

    let enabled_sites = respec.enabled_sites().clone();
    let demoted_sites = respec.demoted_sites().clone();
    let quarantined_sites = respec.quarantined_sites();
    let gate_cache_hits = respec.gate_cache_hits();
    let (program, patch_log, respec_diags) = respec.into_parts();
    Ok(AdaptiveResult {
        plan,
        segments: measures,
        patch_log,
        respec_diags,
        enabled_sites,
        demoted_sites,
        quarantined_sites,
        gate_cache_hits,
        #[cfg(feature = "chaos")]
        chaos_injection: adaptive_engine.and_then(|e| e.into_injection()),
        program,
    })
}

/// One workload's inputs to [`run_pipeline_adaptive_suite_with_threads`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveJob<'a> {
    /// The program to replicate and adapt.
    pub module: &'a Module,
    /// Entry-function arguments.
    pub args: &'a [Value],
    /// The segmented input tape (segment 0 plans, the rest drift).
    pub segments: &'a [Vec<Value>],
}

/// Runs [`run_pipeline_adaptive`] over every job on the analysis
/// engine's worker pool, returning results in job order. Like
/// [`run_pipeline_suite`], nested parallelism degrades to serial on
/// worker threads, so the output — patch sequences included — is
/// **bit-identical** to running the jobs in a serial loop.
pub fn run_pipeline_adaptive_suite_with_threads(
    jobs: &[AdaptiveJob<'_>],
    config: AdaptiveConfig,
    threads: usize,
) -> Vec<Result<AdaptiveResult, PipelineError>> {
    brepl_core::par_map_with(threads, jobs, |job| {
        run_pipeline_adaptive(job.module, job.args, job.segments, config)
    })
}

/// State count of a planned machine.
fn machine_states(m: &BranchMachine) -> usize {
    match m {
        BranchMachine::Loop(sm) => sm.len(),
        BranchMachine::Correlated(c) => c.states(),
    }
}

/// `; `-joined rendering of a diagnostic batch.
fn render_joined(diags: &[AnalysisDiag], module: &Module) -> String {
    diags
        .iter()
        .map(|d| d.render(module))
        .collect::<Vec<_>>()
        .join("; ")
}

/// Removes the sites implicated by `errors` from `enabled`, recording
/// each drop. Diagnostics that carry a site attribution quarantine that
/// site alone; a batch with no attributable site degrades coarsely to the
/// unreplicated baseline (drops every enabled site). Mis-attributions are
/// self-correcting: the caller re-validates, and any surviving error
/// quarantines further sites next round.
///
/// # Errors
///
/// Errors against an *empty* plan cannot come from replication and are
/// reported as a hard [`PipelineError`] even in non-strict mode.
fn quarantine_errors(
    errors: &[AnalysisDiag],
    gate: QuarantineGate,
    round: usize,
    rendered_in: &Module,
    enabled: &mut BTreeSet<BranchId>,
    quarantined: &mut Vec<QuarantinedSite>,
) -> Result<(), PipelineError> {
    if enabled.is_empty() {
        return Err(gate.hard_error(render_joined(errors, rendered_in)));
    }
    let mut by_site: BTreeMap<BranchId, Vec<&AnalysisDiag>> = BTreeMap::new();
    for d in errors {
        if let Some(site) = d.site.filter(|s| enabled.contains(s)) {
            by_site.entry(site).or_default().push(d);
        }
    }
    if by_site.is_empty() {
        let mut codes: Vec<DiagCode> = errors.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        let reason = render_capped(errors, rendered_in);
        for &site in enabled.iter() {
            quarantined.push(QuarantinedSite {
                site,
                gate,
                codes: codes.clone(),
                reason: reason.clone(),
                round,
            });
        }
        enabled.clear();
        return Ok(());
    }
    for (site, diags) in by_site {
        let mut codes: Vec<DiagCode> = diags.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        enabled.remove(&site);
        quarantined.push(QuarantinedSite {
            site,
            gate,
            codes,
            reason: render_capped(
                &diags.iter().map(|&d| d.clone()).collect::<Vec<_>>(),
                rendered_in,
            ),
            round,
        });
    }
    Ok(())
}

/// Renders at most three diagnostics (quarantine reasons stay readable).
fn render_capped(diags: &[AnalysisDiag], module: &Module) -> String {
    let mut s = diags
        .iter()
        .take(3)
        .map(|d| d.render(module))
        .collect::<Vec<_>>()
        .join("; ");
    if diags.len() > 3 {
        s.push_str(&format!("; … and {} more", diags.len() - 3));
    }
    s
}

/// The refinement drop rule: a machine is kept only while it is *strictly
/// better* than plain profile prediction on the re-measured run.
///
/// Intended rule, stated explicitly (the original expression leaned on
/// `&&`/`||` precedence): drop when the realized machine is no better than
/// profile —
///
/// * `profile_misses > 0`: drop when `realized >= profile_misses` (equal
///   realized misses mean the replication bought nothing and only costs
///   code size);
/// * `profile_misses == 0`: profile is already perfect, so keep the
///   machine only while it is also perfect — drop when `realized > 0`.
fn refine_should_drop(realized: u64, profile_misses: u64) -> bool {
    (profile_misses > 0 && realized >= profile_misses) || (profile_misses == 0 && realized > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    fn alternating_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd);
        b.switch_to(even);
        b.add(acc, acc.into(), Operand::imm(3));
        b.jmp(latch);
        b.switch_to(odd);
        b.add(acc, acc.into(), Operand::imm(5));
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), Operand::imm(300));
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn pipeline_halves_misprediction_on_alternation() {
        let m = alternating_module();
        let result = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        // Profile: the alternating branch costs ~25% of all events.
        assert!(result.profile_misprediction_percent > 20.0);
        // Replication: near zero.
        assert!(result.replicated_misprediction_percent < 1.0);
        assert!(result.size_growth > 1.0 && result.size_growth < 4.0);
        assert_eq!(result.trace_events, 600);
        // A clean run quarantines nothing and takes no backoff step.
        assert!(result.quarantined.is_empty());
        assert!(result.size_backoffs.is_empty());
    }

    /// The refine rule must drop a branch whose realized machine exactly
    /// matches profile (`realized == profile_misses`): such a machine buys
    /// nothing and only costs code size. This pins the intended semantics
    /// of the old precedence-reliant expression
    /// `a >= b && b > 0 || a > b`.
    #[test]
    fn refine_drops_machines_no_better_than_profile() {
        // realized == profile_misses > 0: no better than profile -> drop.
        assert!(refine_should_drop(5, 5));
        // Strictly worse than profile -> drop.
        assert!(refine_should_drop(6, 5));
        // Strictly better than profile -> keep.
        assert!(!refine_should_drop(4, 5));
        assert!(!refine_should_drop(0, 5));
        // Profile is perfect: keep only a perfect machine.
        assert!(!refine_should_drop(0, 0));
        assert!(refine_should_drop(1, 0));
    }

    /// End-to-end: a machine whose re-measured misses equal its profile
    /// misses is pruned by the refinement loop, never shipped.
    #[test]
    fn shipped_machines_strictly_beat_profile() {
        let m = alternating_module();
        let result = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        let mut folded: std::collections::HashMap<brepl_ir::BranchId, u64> =
            std::collections::HashMap::new();
        // Re-measure the shipped program and fold misses to original sites.
        let outcome = Machine::new(&result.program.module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        let report = evaluate_static(&result.program.predictions, &outcome.trace);
        for (site, _, wrong) in report.iter_sites() {
            *folded
                .entry(result.program.provenance[site.index()])
                .or_default() += wrong;
        }
        for choice in result.selection.choices() {
            if !result.replicated_sites.contains(&choice.site) {
                continue;
            }
            let realized = folded.get(&choice.site).copied().unwrap_or(0);
            // The site's machine shipped: it must have survived
            // refinement, i.e. be strictly better than profile.
            assert!(
                !refine_should_drop(realized, choice.profile_misses),
                "site {} shipped with realized {} vs profile {}",
                choice.site,
                realized,
                choice.profile_misses
            );
        }
        assert!(
            !result.replicated_sites.is_empty(),
            "the alternating branch should ship a machine"
        );
    }

    /// Static planning ships a replicated program with zero profiling
    /// runs, passes every gate, and still re-measures for real.
    #[test]
    fn static_planning_ships_without_profiling() {
        let m = alternating_module();
        let r = run_pipeline_static(&m, &[], &[], PipelineConfig::default()).unwrap();
        assert!(r.static_planned);
        let est = r.estimate.expect("the estimator ran");
        assert!(est.converged);
        assert!(est.exact_sites + est.heuristic_sites >= 2);
        assert!(r.quarantined.is_empty(), "{:?}", r.quarantined);
        assert!(r.trace_events > 0, "the synthetic plan input has events");
        // The after-the-fact measurement is a real simulator run.
        assert!(r.replicated_misprediction_percent.is_finite());
        // Strict mode agrees: nothing fires on the honest estimate.
        let strict = run_pipeline_static(
            &m,
            &[],
            &[],
            PipelineConfig {
                strict: true,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(strict.replicated_sites, r.replicated_sites);
    }

    /// The always-on estimator summarizes itself on profiled runs and
    /// the drift gate stays silent on honest traces.
    #[test]
    fn estimator_is_always_on_and_silent_when_honest() {
        let m = alternating_module();
        let r = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        let est = r.estimate.expect("estimate defaults on");
        assert!(est.converged);
        assert!(est.exact_sites + est.heuristic_sites >= 2);
        assert!(!r.static_planned);
        assert!(
            !r.quarantined
                .iter()
                .any(|q| q.gate == QuarantineGate::Estimate),
            "honest trace must not drift: {:?}",
            r.quarantined
        );

        let off = run_pipeline(
            &m,
            &[],
            &[],
            PipelineConfig {
                estimate: false,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(off.estimate.is_none());
        assert_eq!(off.replicated_sites, r.replicated_sites);
    }

    #[test]
    fn verification_can_be_disabled() {
        let m = alternating_module();
        let config = PipelineConfig {
            validate: false,
            dynamic_backstop: false,
            ..PipelineConfig::default()
        };
        let result = run_pipeline(&m, &[], &[], config).unwrap();
        assert!(
            result.warnings.is_empty(),
            "validation off collects nothing"
        );
    }

    #[test]
    fn validation_passes_and_collects_only_warnings() {
        let m = alternating_module();
        let result = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        // run_pipeline returned Ok, so no error-severity diagnostics; what
        // was collected must all be warnings.
        for d in &result.warnings {
            assert_eq!(d.severity(), brepl_analysis::Severity::Warning, "{d}");
        }
    }

    /// Strict mode must not change a clean run's numbers: same shipped
    /// sites, same misprediction, no quarantine either way.
    #[test]
    fn strict_mode_is_identical_on_clean_runs() {
        let m = alternating_module();
        let relaxed = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        let strict = run_pipeline(
            &m,
            &[],
            &[],
            PipelineConfig {
                strict: true,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(relaxed.replicated_sites, strict.replicated_sites);
        assert_eq!(
            relaxed.replicated_misprediction_percent,
            strict.replicated_misprediction_percent
        );
        assert!(strict.quarantined.is_empty());
    }

    /// The realized-growth budget backs off machine sizes (recording each
    /// step) until the shipped module fits, and the result still passes
    /// every gate.
    #[test]
    fn realized_growth_budget_backs_off_and_ships_within_budget() {
        let m = alternating_module();
        let budget = 1.05;
        let result = run_pipeline(
            &m,
            &[],
            &[],
            PipelineConfig {
                max_realized_growth: Some(budget),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(
            result.size_growth <= budget,
            "shipped growth {} exceeds budget {budget}",
            result.size_growth
        );
        // The default run replicates (growth > 1.05 per the test above),
        // so the budget must have forced at least one backoff step.
        assert!(
            !result.size_backoffs.is_empty() || !result.quarantined.is_empty(),
            "a 1.05x budget cannot be met without backing off"
        );
        for q in &result.quarantined {
            assert_eq!(q.gate, QuarantineGate::SizeBudget);
        }
        // Shrink steps must strictly reduce state counts.
        for b in &result.size_backoffs {
            assert!(b.to_states < b.from_states, "{b:?}");
        }
    }

    /// A generous realized budget changes nothing: no backoff, identical
    /// shipped sites.
    #[test]
    fn generous_realized_budget_is_a_no_op() {
        let m = alternating_module();
        let base = run_pipeline(&m, &[], &[], PipelineConfig::default()).unwrap();
        let capped = run_pipeline(
            &m,
            &[],
            &[],
            PipelineConfig {
                max_realized_growth: Some(100.0),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert!(capped.size_backoffs.is_empty());
        assert_eq!(base.replicated_sites, capped.replicated_sites);
        assert_eq!(base.size_growth, capped.size_growth);
    }
}
