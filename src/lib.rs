//! # brepl — improving semi-static branch prediction by code replication
//!
//! A full reproduction of Andreas Krall's PLDI 1994 paper. The library
//! profiles a program (written in the [`ir`] intermediate representation),
//! collects per-branch history pattern tables, compacts them into small
//! branch prediction state machines, and *replicates code* — loop bodies
//! and predecessor paths — so that each machine state becomes its own copy
//! of the code and the branch inside every copy is statically predictable.
//!
//! ## Crate map
//!
//! * [`ir`] — the register-based program representation;
//! * [`mod@cfg`] — control-flow analysis (dominators, natural loops, branch
//!   classification);
//! * [`trace`] — compact branch traces;
//! * [`sim`] — the tracing interpreter (the "profiling tool");
//! * [`predict`] — the predictor zoo: static, dynamic and semi-static;
//! * [`core`] — the paper's contribution: state machines, searches,
//!   selection, greedy sizing and the replication transforms;
//! * [`workloads`] — the eight-program benchmark suite, written in the IR.
//!
//! ## Quickstart
//!
//! ```
//! use brepl::pipeline::{run_pipeline, PipelineConfig};
//! use brepl::workloads::{workload_by_name, Scale};
//!
//! let w = workload_by_name("compress", Scale::Small).unwrap();
//! let result = run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()).unwrap();
//! // Replication never makes the profile-based prediction worse ...
//! assert!(result.replicated_misprediction_percent
//!     <= result.profile_misprediction_percent + 1e-9);
//! // ... and costs some code size.
//! assert!(result.size_growth >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use brepl_cfg as cfg;
pub use brepl_core as core;
pub use brepl_ir as ir;
pub use brepl_predict as predict;
pub use brepl_sim as sim;
pub use brepl_trace as trace;
pub use brepl_workloads as workloads;

pub mod pipeline;
