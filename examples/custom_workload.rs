//! Custom workload: parse a program from the textual IR format, run the
//! pipeline on it, and show the misprediction-versus-code-size curve —
//! the per-program view of the paper's Figures 6–13.
//!
//! Run with `cargo run --example custom_workload`.

use brepl::core::greedy::greedy_curve;
use brepl::ir::parse_module;
use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::sim::{Machine, RunConfig};

/// A program with three different branch personalities: a period-3
/// intra-loop branch, a fixed-trip-count exit branch, and a final branch
/// correlated with an earlier one.
const SOURCE: &str = "
func @main(0) regs=12 entry=b0 {
b0:
  r0 = const 0        ; i
  r1 = const 0        ; acc
  jmp b1
b1:
  r2 = rem r0, 3
  r3 = eq r2, 2
  br r3, b2, b3       ; period-3 intra-loop branch
b2:
  r1 = add r1, 7
  jmp b4
b3:
  r1 = add r1, 1
  jmp b4
b4:
  r0 = add r0, 1
  r4 = lt r0, 600
  br r4, b1, b5       ; counted exit branch
b5:
  r5 = rem r1, 2
  r6 = eq r5, 0
  br r6, b6, b7       ; depends on acc parity
b6:
  jmp b8
b7:
  jmp b8
b8:
  r7 = eq r5, 0
  br r7, b9, b10      ; perfectly correlated with the b5 branch
b9:
  out(r1)
  ret r1
b10:
  r8 = sub 0, r1
  out(r8)
  ret r8
}
";

fn main() {
    let module = parse_module(SOURCE).expect("source parses");
    module.verify().expect("source verifies");

    let result =
        run_pipeline(&module, &[], &[], PipelineConfig::default()).expect("pipeline succeeds");
    println!(
        "profile {:.2}% -> replicated {:.2}% at {:.2}x size",
        result.profile_misprediction_percent,
        result.replicated_misprediction_percent,
        result.size_growth
    );
    for choice in result.selection.choices() {
        println!(
            "  {}: {:?} -> {} states, {} -> {} misses",
            choice.site,
            choice.class,
            choice.chosen.states(),
            choice.profile_misses,
            choice.chosen_misses
        );
    }

    // The greedy curve (misprediction vs code size), Figures 6-13 style.
    let trace = Machine::new(&module, RunConfig::default())
        .unwrap()
        .run("main", &[])
        .expect("runs")
        .trace;
    let curve = greedy_curve(&module, &trace, 6);
    println!("\nmisprediction vs code size:");
    for p in &curve.points {
        println!(
            "  {:5.2}x  {:6.2}%  ({} machines)",
            p.size_factor, p.misprediction_percent, p.machines_enabled
        );
    }
}
