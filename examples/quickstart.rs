//! Quickstart: build a tiny program with an alternating branch, run the
//! full profile → replicate pipeline, and print the before/after numbers.
//!
//! Run with `cargo run --example quickstart`.

use brepl::ir::{FunctionBuilder, Module, Operand};
use brepl::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    // for i in 0..1000 { if i % 2 == 0 { a += 3 } else { a += 5 } }
    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let even = b.new_block();
    let odd = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, even, odd);
    b.switch_to(even);
    b.add(acc, acc.into(), Operand::imm(3));
    b.jmp(latch);
    b.switch_to(odd);
    b.add(acc, acc.into(), Operand::imm(5));
    b.jmp(latch);
    b.switch_to(latch);
    b.add(i, i.into(), Operand::imm(1));
    let more = b.lt(i.into(), Operand::imm(1000));
    b.br(more, head, exit);
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));

    let mut module = Module::new();
    module.push_function(b.finish());
    module.verify().expect("valid module");

    let result =
        run_pipeline(&module, &[], &[], PipelineConfig::default()).expect("pipeline succeeds");

    println!("branch events profiled : {}", result.trace_events);
    println!(
        "profile misprediction  : {:.2}%",
        result.profile_misprediction_percent
    );
    println!(
        "after replication      : {:.2}%",
        result.replicated_misprediction_percent
    );
    println!("code size growth       : {:.2}x", result.size_growth);
    println!(
        "branches improved      : {}",
        result.selection.improved_branches()
    );
    println!();
    println!("replicated program:\n{}", result.program.module);
}
