//! Predictor shootout: run every prediction strategy of the paper's §2–§3
//! over one benchmark trace and print a Table-1-style column.
//!
//! Run with `cargo run --release --example predictor_shootout [workload]`.

use brepl::predict::dynamic::{LastDirection, TwoBitCounters, TwoLevel};
use brepl::predict::semistatic::{
    correlation_report, loop_correlation_report, loop_report, profile_report,
};
use brepl::predict::stat::ball_larus::BallLarus;
use brepl::predict::stat::smith;
use brepl::predict::{evaluate_static, simulate_dynamic};
use brepl::workloads::{workload_by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let Some(w) = workload_by_name(&name, Scale::Small) else {
        eprintln!(
            "unknown workload {name:?}; try abalone, c-compiler, compress, ghostview, \
             predict, prolog, scheduler or doduc"
        );
        std::process::exit(1);
    };
    println!("profiling {} — {}", w.name, w.description);
    let outcome = w.run().expect("workload runs");
    let trace = outcome.trace;
    println!(
        "{} branch events over {} static sites\n",
        trace.len(),
        trace.stats().executed_sites()
    );

    // Static strategies.
    let mut rows: Vec<(String, f64)> = vec![(
        "always taken (static)".into(),
        evaluate_static(&smith::always_taken(), &trace).misprediction_percent(),
    )];
    rows.push((
        "BTFN (static)".into(),
        evaluate_static(&smith::backward_taken(&w.module), &trace).misprediction_percent(),
    ));
    rows.push((
        "opcode (static)".into(),
        evaluate_static(&smith::opcode_based(&w.module), &trace).misprediction_percent(),
    ));
    rows.push((
        "Ball-Larus (static)".into(),
        evaluate_static(BallLarus::analyze(&w.module).prediction(), &trace).misprediction_percent(),
    ));

    // Dynamic strategies.
    rows.push((
        "last direction (dynamic)".into(),
        simulate_dynamic(&mut LastDirection::new(), &trace).misprediction_percent(),
    ));
    rows.push((
        "2bit counter (dynamic)".into(),
        simulate_dynamic(&mut TwoBitCounters::new(), &trace).misprediction_percent(),
    ));
    rows.push((
        "two-level 4K bit (dynamic)".into(),
        simulate_dynamic(&mut TwoLevel::paper_4k(), &trace).misprediction_percent(),
    ));

    // Semi-static strategies.
    rows.push((
        "profile (semi-static)".into(),
        profile_report(&trace).misprediction_percent(),
    ));
    rows.push((
        "1 bit correlation".into(),
        correlation_report(&trace, 1).misprediction_percent(),
    ));
    rows.push((
        "1 bit loop".into(),
        loop_report(&trace, 1).misprediction_percent(),
    ));
    rows.push((
        "9 bit loop".into(),
        loop_report(&trace, 9).misprediction_percent(),
    ));
    rows.push((
        "loop-correlation".into(),
        loop_correlation_report(&trace).misprediction_percent(),
    ));

    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, pct) in rows {
        println!("{name:width$}  {pct:6.2}%");
    }
}
