//! Replication demo: reproduce the paper's Figure 1 in the small — a loop
//! with an alternating branch is duplicated into a two-state flip-flop,
//! and the program text before/after is printed so the transformation is
//! visible.
//!
//! Run with `cargo run --example replication_demo`.

use brepl::core::machine::MachineState;
use brepl::core::replicate::{apply_plan, check_equivalence, BranchMachine, ReplicationPlan};
use brepl::core::{HistPattern, StateMachine};
use brepl::ir::{BranchId, FunctionBuilder, Module, Operand};
use brepl::sim::{Machine, RunConfig};

fn main() {
    // The Figure-1 loop: basic block 1 holds the branch alternating
    // between the two arms.
    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    let head = b.new_block();
    let arm2 = b.new_block();
    let arm3 = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();
    b.jmp(head);
    b.switch_to(head);
    let r = b.reg();
    b.rem(r, i.into(), Operand::imm(2));
    let c = b.eq(r.into(), Operand::imm(0));
    b.br(c, arm2, arm3);
    b.switch_to(arm2);
    b.add(acc, acc.into(), Operand::imm(1));
    b.jmp(latch);
    b.switch_to(arm3);
    b.mul(acc, acc.into(), Operand::imm(2));
    b.jmp(latch);
    b.switch_to(latch);
    b.add(i, i.into(), Operand::imm(1));
    let more = b.lt(i.into(), Operand::imm(16));
    b.br(more, head, exit);
    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));

    let mut module = Module::new();
    module.push_function(b.finish());

    println!("=== original program ===\n{module}");

    // The two-state machine of Figure 1: state "0" (last time not taken)
    // predicts taken; state "1" predicts not taken.
    let machine = StateMachine::from_states(
        vec![
            MachineState {
                pattern: HistPattern::parse("0").unwrap(),
                predict: true,
                on_taken: 1,
                on_not_taken: 0,
            },
            MachineState {
                pattern: HistPattern::parse("1").unwrap(),
                predict: false,
                on_taken: 1,
                on_not_taken: 0,
            },
        ],
        0,
    );

    let trace = Machine::new(&module, RunConfig::default())
        .unwrap()
        .run("main", &[])
        .expect("runs")
        .trace;
    let mut plan = ReplicationPlan::new();
    plan.assign(BranchId(0), BranchMachine::Loop(machine));
    let program = apply_plan(&module, &plan, &trace.stats()).expect("replication succeeds");
    check_equivalence(&module, &program, "main", &[], &[]).expect("semantics preserved");

    println!("=== replicated program (two loop copies, dead arms pruned) ===");
    println!("{}", program.module);
    println!("size growth: {:.2}x", program.size_growth(&module));
    for (new_site, orig) in program.provenance.iter().enumerate() {
        let site = BranchId(new_site as u32);
        println!(
            "site {site} (copy of {orig}) predicted {}",
            if program.predictions.get(site) {
                "taken"
            } else {
                "not taken"
            }
        );
    }
}
