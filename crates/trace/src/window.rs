//! Windowed per-site counters for online drift detection.
//!
//! The re-specialization layer (`brepl_core::respec`) watches a shipped
//! program's branch behaviour segment by segment and compares it against
//! the planning-time expectation. Its unit of observation is a *window*:
//! a fixed-length run of consecutive outcomes at one site, summarised as
//! a [`SiteCounts`]. Windows are computed from [`PackedStream`] words —
//! whole words are popcounted and only the window edges pay a mask — so
//! the feed costs ~1 instruction per 64 outcomes.
//!
//! [`windowed_counts`] slices a single stream; [`WindowedCounts`] bundles
//! the per-site feeds for a whole trace via [`packed_site_streams`].

use brepl_ir::BranchId;

use crate::packed::{packed_site_streams, PackedStream};
use crate::stats::SiteCounts;
use crate::trace::Trace;

/// Number of taken outcomes in `stream[start..end)`, word-at-a-time.
///
/// Whole words inside the range are popcounted directly; the first and
/// last partial words are masked. `start..end` must lie within the
/// stream (`end <= len`), and `start <= end`.
fn count_taken_range(stream: &PackedStream, start: usize, end: usize) -> u64 {
    debug_assert!(start <= end && end <= stream.len());
    if start == end {
        return 0;
    }
    let words = stream.words();
    let (first_word, first_bit) = (start / 64, start % 64);
    let (last_word, last_bits) = ((end - 1) / 64, (end - 1) % 64 + 1);
    if first_word == last_word {
        let mask = if last_bits == 64 {
            u64::MAX
        } else {
            (1u64 << last_bits) - 1
        };
        let w = words[first_word] & mask & !((1u64 << first_bit) - 1);
        return u64::from(w.count_ones());
    }
    let mut taken = u64::from((words[first_word] & !((1u64 << first_bit) - 1)).count_ones());
    for &w in &words[first_word + 1..last_word] {
        taken += u64::from(w.count_ones());
    }
    let tail_mask = if last_bits == 64 {
        u64::MAX
    } else {
        (1u64 << last_bits) - 1
    };
    taken += u64::from((words[last_word] & tail_mask).count_ones());
    taken
}

/// Splits one site's outcome stream into consecutive windows of `window`
/// outcomes each and returns a [`SiteCounts`] per window. The final
/// window is partial when the stream length is not a multiple of
/// `window`; it is included (callers that want full windows only can
/// drop it). An empty stream yields no windows.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn windowed_counts(stream: &PackedStream, window: usize) -> Vec<SiteCounts> {
    assert!(window > 0, "window length must be positive");
    let len = stream.len();
    let mut out = Vec::with_capacity(len.div_ceil(window));
    let mut start = 0usize;
    while start < len {
        let end = (start + window).min(len);
        let taken = count_taken_range(stream, start, end);
        out.push(SiteCounts {
            taken,
            not_taken: (end - start) as u64 - taken,
        });
        start = end;
    }
    out
}

/// Per-site windowed counters for a whole trace.
///
/// Site `i`'s windows summarise that site's own outcome stream (not the
/// interleaved trace), so window `k` at site `i` covers executions
/// `k*window .. (k+1)*window` *of that site*. Built in one pass over the
/// trace via [`packed_site_streams`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowedCounts {
    window: usize,
    sites: Vec<Vec<SiteCounts>>,
}

impl WindowedCounts {
    /// Builds the per-site feed from a trace.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn from_trace(trace: &Trace, window: usize) -> Self {
        let streams = packed_site_streams(trace, &trace.stats());
        WindowedCounts {
            window,
            sites: streams.iter().map(|s| windowed_counts(s, window)).collect(),
        }
    }

    /// The window length this feed was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of site slots (`0..=max_site`, empty slots included).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The windows for `site`, oldest first. Sites beyond the trace's
    /// maximum (or that never executed) yield an empty slice.
    pub fn site_windows(&self, site: BranchId) -> &[SiteCounts] {
        self.sites
            .get(site.index())
            .map_or(&[][..], |w| w.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn xorshift_bools(n: usize, mut state: u64) -> Vec<bool> {
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1
            })
            .collect()
    }

    #[test]
    fn windows_match_scalar_slicing() {
        for n in [0usize, 1, 63, 64, 65, 127, 128, 500, 1000] {
            for window in [1usize, 7, 64, 100, 128, 1024] {
                let dirs = xorshift_bools(n, 0xbeef + n as u64 + window as u64);
                let s: PackedStream = dirs.iter().copied().collect();
                let got = windowed_counts(&s, window);
                let want: Vec<SiteCounts> = dirs
                    .chunks(window)
                    .map(|c| {
                        let taken = c.iter().filter(|&&d| d).count() as u64;
                        SiteCounts {
                            taken,
                            not_taken: c.len() as u64 - taken,
                        }
                    })
                    .collect();
                assert_eq!(got, want, "n = {n}, window = {window}");
            }
        }
    }

    #[test]
    fn range_counts_cross_word_boundaries() {
        let dirs = xorshift_bools(300, 42);
        let s: PackedStream = dirs.iter().copied().collect();
        for &(start, end) in &[(0usize, 300usize), (63, 65), (64, 128), (1, 299), (70, 70)] {
            let want = dirs[start..end].iter().filter(|&&d| d).count() as u64;
            assert_eq!(count_taken_range(&s, start, end), want, "{start}..{end}");
        }
    }

    #[test]
    fn per_site_feed_matches_per_site_streams() {
        let mut trace = Trace::new();
        let dirs = xorshift_bools(4000, 7);
        for (i, &taken) in dirs.iter().enumerate() {
            trace.push(TraceEvent {
                site: BranchId((i % 3) as u32),
                taken,
            });
        }
        let feed = WindowedCounts::from_trace(&trace, 100);
        assert_eq!(feed.window(), 100);
        assert_eq!(feed.num_sites(), 3);
        let streams = packed_site_streams(&trace, &trace.stats());
        for site in 0..3u32 {
            let id = BranchId(site);
            let want = windowed_counts(&streams[site as usize], 100);
            assert_eq!(feed.site_windows(id), want.as_slice(), "site {site}");
            let total: u64 = feed.site_windows(id).iter().map(|c| c.total()).sum();
            assert_eq!(total, trace.stats().site(id).total());
        }
        // Out-of-range sites are empty, not a panic.
        assert!(feed.site_windows(BranchId(99)).is_empty());
    }
}
