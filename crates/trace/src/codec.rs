//! Low-level encoding primitives: LEB128 varints, zig-zag signed mapping,
//! and single-bit streams.

/// Encodes `v` as LEB128 into `out`.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncated or oversized input.
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed value to an unsigned one with small magnitudes staying
/// small (`0, -1, 1, -2, 2 → 0, 1, 2, 3, 4`).
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes individual bits, LSB-first within each byte.
#[derive(Debug, Default)]
pub(crate) struct BitWriter {
    bytes: Vec<u8>,
    used_bits: u8,
}

impl BitWriter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, bit: bool) {
        if self.used_bits == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("just pushed");
            *last |= 1 << self.used_bits;
        }
        self.used_bits = (self.used_bits + 1) % 8;
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits written by [`BitWriter`].
#[derive(Debug)]
pub(crate) struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    pub(crate) fn next(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncated_is_none() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [-1000i64, -1, 0, 1, 42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn bits_round_trip() {
        let pattern: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.push(b);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 5); // ceil(37/8)
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.next(), Some(b));
        }
    }
}
