//! # brepl-trace — compact branch traces
//!
//! The paper's profiling tool writes each executed conditional branch as a
//! `(branch number, direction)` record and notes that "in compressed form a
//! trace of 5 million branches occupies about 1 MB". This crate provides the
//! equivalent: an in-memory [`Trace`] of branch events, a compact binary
//! serialization (zig-zag varint site deltas plus a packed direction
//! bitstream), and per-site summary statistics.
//!
//! ```
//! use brepl_trace::{Trace, TraceEvent};
//! use brepl_ir::BranchId;
//!
//! let mut t = Trace::new();
//! for i in 0..100u32 {
//!     t.push(TraceEvent { site: BranchId(0), taken: i % 2 == 0 });
//! }
//! let bytes = t.to_bytes();
//! let back = Trace::from_bytes(&bytes).unwrap();
//! assert_eq!(t, back);
//! let stats = t.stats();
//! assert_eq!(stats.total_events(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod packed;
mod stats;
mod trace;
mod window;

pub use packed::{packed_site_streams, PackedStream};
pub use stats::{SiteCounts, TraceStats};
pub use trace::{Trace, TraceDecodeError, TraceError, TraceEvent};
pub use window::{windowed_counts, WindowedCounts};
