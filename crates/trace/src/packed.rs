//! Dense per-site outcome bitstreams.
//!
//! [`Trace::packed`] interleaves all sites in execution order; the machine
//! search instead wants each site's outcome *stream* on its own, dense
//! enough to evaluate word-at-a-time. A [`PackedStream`] stores one site's
//! directions as `u64` words, 64 outcomes per word with the oldest outcome
//! in bit 0 of word 0 — the same packing `brepl-core`'s memo fingerprint
//! uses, so a stream's fingerprint can be computed straight from its words
//! without unpacking.

use crate::stats::TraceStats;
use crate::trace::Trace;

/// One branch site's outcome stream as a packed bitvector.
///
/// Outcomes are appended LSB-first: outcome `i` lives in bit `i % 64` of
/// word `i / 64`. The tail word's unused high bits are always zero — an
/// invariant every constructor maintains, which lets word-level consumers
/// (fingerprints, chunked machine evaluation, inversion) treat the words
/// array as canonical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedStream {
    words: Vec<u64>,
    len: usize,
}

impl PackedStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty stream with capacity for `n` outcomes.
    pub fn with_capacity(n: usize) -> Self {
        PackedStream {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one outcome.
    pub fn push(&mut self, taken: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if taken {
            *self.words.last_mut().expect("word pushed above") |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no outcomes were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words, oldest outcome in bit 0 of word 0. Exactly
    /// `len().div_ceil(64)` words; tail bits beyond `len()` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The outcome at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "outcome index out of range");
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Iterates over the outcomes in stream order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.words[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Number of taken outcomes — one popcount per word.
    pub fn count_taken(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The complemented stream (`taken` ↔ `not taken`): every word is
    /// bit-flipped and the tail re-masked to keep the zero-padding
    /// invariant.
    pub fn inverted(&self) -> PackedStream {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        PackedStream {
            words,
            len: self.len,
        }
    }
}

impl FromIterator<bool> for PackedStream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut s = PackedStream::new();
        for taken in iter {
            s.push(taken);
        }
        s
    }
}

/// Splits a trace into per-site packed outcome streams in one pass,
/// pre-sized from `stats` so no stream ever reallocates. Index `i` of the
/// result is site `i`'s stream (empty for sites that never executed);
/// the vector covers `0..=max_site`.
pub fn packed_site_streams(trace: &Trace, stats: &TraceStats) -> Vec<PackedStream> {
    let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
    let mut streams: Vec<PackedStream> = (0..n_sites)
        .map(|i| {
            PackedStream::with_capacity(
                stats.site(brepl_ir::BranchId::from_index(i)).total() as usize
            )
        })
        .collect();
    for &p in trace.packed() {
        streams[(p >> 1) as usize].push(p & 1 == 1);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use brepl_ir::BranchId;

    fn xorshift_bools(n: usize, mut state: u64) -> Vec<bool> {
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1
            })
            .collect()
    }

    #[test]
    fn round_trips_at_word_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 127, 128, 129, 1000] {
            let dirs = xorshift_bools(n, 0x9e37 + n as u64);
            let s: PackedStream = dirs.iter().copied().collect();
            assert_eq!(s.len(), n);
            assert_eq!(s.words().len(), n.div_ceil(64));
            let back: Vec<bool> = s.iter().collect();
            assert_eq!(back, dirs, "n = {n}");
            for (i, &d) in dirs.iter().enumerate() {
                assert_eq!(s.get(i), d);
            }
            assert_eq!(s.count_taken(), dirs.iter().filter(|&&d| d).count() as u64);
        }
    }

    #[test]
    fn inverted_flips_and_keeps_tail_zeroed() {
        for n in [1usize, 63, 64, 65, 200] {
            let dirs = xorshift_bools(n, 7 + n as u64);
            let s: PackedStream = dirs.iter().copied().collect();
            let inv = s.inverted();
            assert_eq!(inv.len(), n);
            let want: Vec<bool> = dirs.iter().map(|&d| !d).collect();
            assert_eq!(inv.iter().collect::<Vec<bool>>(), want);
            // Tail-zero invariant: re-inverting restores the original
            // words exactly.
            assert_eq!(inv.inverted(), s);
            // Rebuilding from the inverted outcomes matches word-for-word.
            let rebuilt: PackedStream = want.iter().copied().collect();
            assert_eq!(inv, rebuilt);
        }
    }

    #[test]
    fn per_site_streams_match_scalar_split() {
        let mut trace = Trace::new();
        let mut state = 0xdead_beefu64;
        for _ in 0..10_000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            trace.push(TraceEvent {
                site: BranchId((r % 7) as u32),
                taken: r & (1 << 40) != 0,
            });
        }
        let stats = trace.stats();
        let streams = packed_site_streams(&trace, &stats);
        let mut scalar: Vec<Vec<bool>> = vec![Vec::new(); 7];
        for ev in trace.iter() {
            scalar[ev.site.index()].push(ev.taken);
        }
        assert_eq!(streams.len(), 7);
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s.iter().collect::<Vec<bool>>(), scalar[i], "site {i}");
            assert_eq!(s.len() as u64, stats.site(BranchId(i as u32)).total());
        }
    }

    #[test]
    fn empty_trace_has_no_streams() {
        let t = Trace::new();
        assert!(packed_site_streams(&t, &t.stats()).is_empty());
    }
}
