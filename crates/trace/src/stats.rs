//! Per-site trace statistics: the raw material for profile-based
//! prediction and for Table 1's static/executed branch counts.

use brepl_ir::BranchId;

use crate::trace::Trace;

/// Taken/not-taken counts for one branch site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times the branch was not taken.
    pub not_taken: u64,
}

impl SiteCounts {
    /// Total executions.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// The majority direction (`true` = taken; ties predict taken, matching
    /// a "predict taken" prior for unbiased branches).
    pub fn majority(&self) -> bool {
        self.taken >= self.not_taken
    }

    /// Mispredictions when always predicting the majority direction.
    pub fn minority_count(&self) -> u64 {
        self.taken.min(self.not_taken)
    }
}

/// Aggregated statistics over a whole trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    counts: Vec<SiteCounts>,
    total: u64,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    ///
    /// Pre-sizes the per-site array from a max-site scan, then
    /// accumulates in one branch-free pass over the packed events — no
    /// per-event bounds growth, so cost is flat even when a high site id
    /// appears late in the trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let packed = trace.packed();
        let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
        let mut counts = vec![SiteCounts::default(); n_sites];
        for &p in packed {
            let c = &mut counts[(p >> 1) as usize];
            let taken = u64::from(p & 1);
            c.taken += taken;
            c.not_taken += 1 - taken;
        }
        let total = packed.len() as u64;
        TraceStats { counts, total }
    }

    /// Builds statistics directly from per-site counts indexed by site —
    /// the accumulation shape of [`TraceStats::from_trace`], for callers
    /// (like the fused analytics pass) that produce the same counts as a
    /// by-product of another traversal. Equal to `from_trace` on any trace
    /// whose per-site tallies match `counts`.
    pub fn from_counts(counts: Vec<SiteCounts>) -> Self {
        let total = counts.iter().map(SiteCounts::total).sum();
        TraceStats { counts, total }
    }

    /// Total number of events in the trace.
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// Counts for one site (zero counts for sites never executed).
    pub fn site(&self, site: BranchId) -> SiteCounts {
        self.counts.get(site.index()).copied().unwrap_or_default()
    }

    /// Number of *distinct* sites that executed at least once — the paper's
    /// "executed branches" row of Table 1.
    pub fn executed_sites(&self) -> usize {
        self.counts.iter().filter(|c| c.total() > 0).count()
    }

    /// Iterates over `(site, counts)` for executed sites.
    pub fn iter_executed(&self) -> impl Iterator<Item = (BranchId, SiteCounts)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.total() > 0)
            .map(|(i, c)| (BranchId::from_index(i), *c))
    }

    /// Misprediction rate (in percent) of pure profile prediction: each
    /// site mispredicts its minority direction.
    pub fn profile_misprediction_percent(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let wrong: u64 = self.counts.iter().map(SiteCounts::minority_count).sum();
        100.0 * wrong as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(site: u32, taken: bool) -> TraceEvent {
        TraceEvent {
            site: BranchId(site),
            taken,
        }
    }

    #[test]
    fn counts_accumulate() {
        let t: Trace = vec![ev(0, true), ev(0, true), ev(0, false), ev(2, false)]
            .into_iter()
            .collect();
        let s = t.stats();
        assert_eq!(s.total_events(), 4);
        assert_eq!(
            s.site(BranchId(0)),
            SiteCounts {
                taken: 2,
                not_taken: 1
            }
        );
        assert_eq!(s.site(BranchId(1)).total(), 0);
        assert_eq!(s.executed_sites(), 2);
        assert_eq!(s.site(BranchId(99)).total(), 0);
    }

    #[test]
    fn majority_and_minority() {
        let c = SiteCounts {
            taken: 3,
            not_taken: 7,
        };
        assert!(!c.majority());
        assert_eq!(c.minority_count(), 3);
        let tie = SiteCounts {
            taken: 5,
            not_taken: 5,
        };
        assert!(tie.majority(), "ties predict taken");
    }

    #[test]
    fn profile_misprediction() {
        // Site 0: 75% taken -> 25% wrong. Site 1: always taken -> 0% wrong.
        let mut t = Trace::new();
        for i in 0..4 {
            t.push(ev(0, i != 0));
        }
        for _ in 0..4 {
            t.push(ev(1, true));
        }
        let s = t.stats();
        assert!((s.profile_misprediction_percent() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_zero_percent() {
        assert_eq!(Trace::new().stats().profile_misprediction_percent(), 0.0);
    }

    #[test]
    fn sparse_high_site_trace_is_cheap_and_correct() {
        // Regression guard for the resize-per-event pathology: a single
        // very high site id late in the trace must cost one pre-sized
        // allocation, not repeated growth, and the counts must still be
        // exact. The wall-time side of this guard is simbench's `stats`
        // stage in the committed BENCH_sim.json trajectory.
        let mut t = Trace::new();
        for i in 0..200_000u32 {
            t.push(ev(i % 7, i % 3 == 0));
        }
        t.push(ev(3_000_000, true));
        let s = t.stats();
        assert_eq!(s.total_events(), 200_001);
        assert_eq!(s.executed_sites(), 8);
        assert_eq!(
            s.site(BranchId(3_000_000)),
            SiteCounts {
                taken: 1,
                not_taken: 0
            }
        );
        let low: u64 = (0..7).map(|i| s.site(BranchId(i)).total()).sum();
        assert_eq!(low, 200_000);
    }

    #[test]
    fn iter_executed_skips_gaps() {
        let t: Trace = vec![ev(5, true)].into_iter().collect();
        let s = t.stats();
        let v: Vec<_> = s.iter_executed().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, BranchId(5));
    }
}
