//! The in-memory trace and its binary serialization.

use std::error::Error;
use std::fmt;

use brepl_ir::BranchId;

use crate::codec::{read_varint, unzigzag, write_varint, zigzag, BitReader, BitWriter};
use crate::stats::TraceStats;

/// One executed conditional branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// The static branch site.
    pub site: BranchId,
    /// The direction taken.
    pub taken: bool,
}

/// A branch trace: the sequence of `(site, direction)` events produced by
/// one program execution.
///
/// Events are stored as one packed `u32` each (`site << 1 | taken`), so a
/// ten-million-branch trace occupies 40 MB in memory; the serialized form
/// ([`Trace::to_bytes`]) is considerably smaller because consecutive sites
/// are usually close together (loops) and directions pack to one bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    packed: Vec<u32>,
}

/// A malformed trace: decoding failed or an event cannot be represented.
///
/// Every byte-input path through this crate is *total* — malformed input
/// of any shape yields one of these variants, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The magic number or version did not match.
    BadHeader,
    /// The byte stream ended prematurely, a varint overflowed, or the
    /// declared event count exceeds what the remaining bytes could encode.
    Truncated,
    /// A site id exceeded the encodable range (31 bits).
    SiteOutOfRange,
}

/// The historical name of [`TraceError`], kept for compatibility.
pub type TraceDecodeError = TraceError;

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "bad trace header"),
            TraceError::Truncated => write!(f, "truncated trace data"),
            TraceError::SiteOutOfRange => write!(f, "branch site id out of range"),
        }
    }
}

impl Error for TraceError {}

const MAGIC: &[u8; 4] = b"BRTR";
const VERSION: u8 = 1;
/// Site ids must fit in 31 bits to pack with the direction.
const MAX_SITE: u32 = u32::MAX >> 1;

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            packed: Vec::with_capacity(n),
        }
    }

    /// Appends an event, rejecting unrepresentable site ids with a typed
    /// error. This is the total form every untrusted path (decoding,
    /// fuzzing) goes through.
    ///
    /// # Errors
    ///
    /// [`TraceError::SiteOutOfRange`] if the site id does not fit in 31
    /// bits.
    pub fn try_push(&mut self, ev: TraceEvent) -> Result<(), TraceError> {
        if ev.site.0 > MAX_SITE {
            return Err(TraceError::SiteOutOfRange);
        }
        self.packed.push(ev.site.0 << 1 | u32::from(ev.taken));
        Ok(())
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if the site id does not fit in 31 bits. Site ids produced by
    /// `Module::renumber_branches` are sequential and can never get close,
    /// so in-process producers (the simulator) use this form; code handling
    /// ids from *outside* the process must use [`Trace::try_push`].
    pub fn push(&mut self, ev: TraceEvent) {
        self.try_push(ev).expect("site id exceeds 31 bits");
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Iterates over the events in execution order.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.packed.iter().map(|&p| TraceEvent {
            site: BranchId(p >> 1),
            taken: p & 1 == 1,
        })
    }

    /// The raw packed event words (`site << 1 | taken`), in execution
    /// order. Batched evaluators (stats, static replay, pattern tables)
    /// run as single array passes over this instead of materializing
    /// [`TraceEvent`]s.
    pub fn packed(&self) -> &[u32] {
        &self.packed
    }

    /// The highest site id observed, or `None` for an empty trace. One
    /// array pass; batched passes use it to pre-size per-site tables.
    pub fn max_site(&self) -> Option<BranchId> {
        self.packed.iter().max().map(|&p| BranchId(p >> 1))
    }

    /// A canonical 128-bit fingerprint of the event stream.
    ///
    /// Dual-lane FNV-1a over the length and the packed words, two events
    /// per mixed word. Equal fingerprints identify equal traces to the
    /// stage-level memo in `brepl-core`, where they let whole selection
    /// results be reused across pipeline stages.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut a = 0xcbf2_9ce4_8422_2325u64;
        let mut b = 0x6c62_272e_07bb_0142u64;
        let mut mix = |x: u64| {
            a = (a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
            b = (b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
        };
        mix(self.packed.len() as u64);
        for pair in self.packed.chunks(2) {
            let lo = u64::from(pair[0]);
            let hi = pair.get(1).copied().map_or(0, u64::from);
            mix(lo | hi << 32);
        }
        (a, b)
    }

    /// The event at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn get(&self, idx: usize) -> TraceEvent {
        let p = self.packed[idx];
        TraceEvent {
            site: BranchId(p >> 1),
            taken: p & 1 == 1,
        }
    }

    /// Computes per-site statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// Truncates the trace to at most `n` events (the paper traces "up to a
    /// maximum of 10 million branch instructions").
    pub fn truncate(&mut self, n: usize) {
        self.packed.truncate(n);
    }

    /// Serializes the trace: magic, version, event count, varint-encoded
    /// zig-zag site deltas, then the packed direction bitstream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        write_varint(&mut out, self.len() as u64);
        let mut prev: i64 = 0;
        let mut dirs = BitWriter::new();
        for ev in self.iter() {
            let site = i64::from(ev.site.0);
            write_varint(&mut out, zigzag(site - prev));
            prev = site;
            dirs.push(ev.taken);
        }
        out.extend_from_slice(&dirs.into_bytes());
        out
    }

    /// Writes the serialized trace to any writer (a `&mut W` works too).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(&self.to_bytes())
    }

    /// Reads a serialized trace from any reader (a `&mut R` works too).
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] on I/O failure or malformed data
    /// (malformed data maps [`TraceDecodeError`] into
    /// [`std::io::ErrorKind::InvalidData`]).
    pub fn read_from<R: std::io::Read>(mut reader: R) -> std::io::Result<Self> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Trace::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Deserializes a trace produced by [`Trace::to_bytes`]. Total: any
    /// byte string returns `Ok` or a typed error, never a panic.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 5 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
            return Err(TraceError::BadHeader);
        }
        let mut pos = 5;
        let count64 = read_varint(bytes, &mut pos).ok_or(TraceError::Truncated)?;
        // Every event costs at least one site byte (plus direction bits),
        // so a declared count beyond the remaining bytes is malformed.
        // Checking *before* allocating keeps an adversarial header from
        // forcing a huge (or capacity-overflowing) preallocation.
        if count64 > (bytes.len() - pos) as u64 {
            return Err(TraceError::Truncated);
        }
        let count = count64 as usize;
        let mut sites = Vec::with_capacity(count);
        let mut prev: i64 = 0;
        for _ in 0..count {
            let delta = read_varint(bytes, &mut pos).ok_or(TraceError::Truncated)?;
            // checked_add: an adversarial delta can overflow i64, which is
            // just another way of being out of range.
            let site = prev
                .checked_add(unzigzag(delta))
                .ok_or(TraceError::SiteOutOfRange)?;
            if site < 0 || site > i64::from(MAX_SITE) {
                return Err(TraceError::SiteOutOfRange);
            }
            prev = site;
            sites.push(site as u32);
        }
        let mut dirs = BitReader::new(&bytes[pos..]);
        let mut trace = Trace::with_capacity(count);
        for site in sites {
            let taken = dirs.next().ok_or(TraceError::Truncated)?;
            trace.try_push(TraceEvent {
                site: BranchId(site),
                taken,
            })?;
        }
        Ok(trace)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut t = Trace::new();
        for ev in iter {
            t.push(ev);
        }
        t
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        for ev in iter {
            self.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopy_trace(n: usize) -> Trace {
        // Three sites cycling like a loop: exit check, body branch, nested.
        (0..n)
            .map(|i| TraceEvent {
                site: BranchId((i % 3) as u32),
                taken: i % 7 != 0,
            })
            .collect()
    }

    #[test]
    fn fingerprint_discriminates() {
        let a = loopy_trace(100);
        let b = loopy_trace(101);
        assert_eq!(a.fingerprint(), loopy_trace(100).fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // A single flipped direction is visible.
        let mut flipped = Trace::new();
        for (i, ev) in a.iter().enumerate() {
            flipped.push(TraceEvent {
                site: ev.site,
                taken: if i == 50 { !ev.taken } else { ev.taken },
            });
        }
        assert_ne!(a.fingerprint(), flipped.fingerprint());
        assert_ne!(Trace::new().fingerprint(), a.fingerprint());
    }

    #[test]
    fn round_trip_empty() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn round_trip_loopy() {
        let t = loopy_trace(10_000);
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), t);
        // Loop-like traces compress well below 4 bytes/event: deltas are
        // tiny and directions are one bit.
        assert!(
            bytes.len() < 10_000 * 2,
            "expected < 2 bytes/event, got {}",
            bytes.len()
        );
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            Trace::from_bytes(b"NOPE\x01\x00"),
            Err(TraceDecodeError::BadHeader)
        );
        assert_eq!(Trace::from_bytes(b""), Err(TraceDecodeError::BadHeader));
    }

    #[test]
    fn truncated_rejected() {
        let t = loopy_trace(100);
        let bytes = t.to_bytes();
        assert_eq!(
            Trace::from_bytes(&bytes[..bytes.len() - 13]),
            Err(TraceDecodeError::Truncated)
        );
    }

    #[test]
    fn get_and_iter_agree() {
        let t = loopy_trace(50);
        for (i, ev) in t.iter().enumerate() {
            assert_eq!(t.get(i), ev);
        }
    }

    #[test]
    fn truncate_limits_length() {
        let mut t = loopy_trace(100);
        t.truncate(10);
        assert_eq!(t.len(), 10);
        t.truncate(50); // no-op beyond length
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn io_round_trip() {
        let t = loopy_trace(500);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, t);
        // Malformed data surfaces as InvalidData.
        let err = Trace::read_from(&b"garbage"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_site_is_a_typed_error() {
        let mut t = Trace::new();
        let err = t
            .try_push(TraceEvent {
                site: BranchId(u32::MAX),
                taken: false,
            })
            .unwrap_err();
        assert_eq!(err, TraceError::SiteOutOfRange);
        assert!(t.is_empty(), "a rejected event must not be recorded");
        // The last representable site round-trips.
        t.try_push(TraceEvent {
            site: BranchId(u32::MAX >> 1),
            taken: true,
        })
        .unwrap();
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn huge_declared_count_is_rejected_without_allocating() {
        // Header + varint(u64::MAX) as the event count: must fail fast
        // with Truncated, not preallocate 2^64 slots.
        let mut bytes = b"BRTR\x01".to_vec();
        bytes.extend_from_slice(&[0xff; 9]);
        bytes.push(0x01);
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::Truncated));
    }

    /// Deterministic codec fuzz: single-byte mutations, truncations and
    /// garbage must all decode totally (Ok or typed Err — a panic fails
    /// the test by unwinding).
    #[test]
    fn decoding_is_total_under_mutation() {
        let valid = loopy_trace(200).to_bytes();
        for i in 0..valid.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut mutated = valid.clone();
                mutated[i] ^= flip;
                let _ = Trace::from_bytes(&mutated);
            }
            let _ = Trace::from_bytes(&valid[..i]);
        }
        // Xorshift garbage of assorted lengths.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for len in [0usize, 1, 4, 5, 6, 13, 64, 509] {
            let mut garbage = Vec::with_capacity(len);
            for _ in 0..len {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                garbage.push((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8);
            }
            let _ = Trace::from_bytes(&garbage);
            // Garbage behind a valid header must still be total.
            let mut headed = b"BRTR\x01".to_vec();
            headed.extend_from_slice(&garbage);
            let _ = Trace::from_bytes(&headed);
        }
    }
}
