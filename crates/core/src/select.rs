//! Per-branch strategy selection (§5 of the paper): "the best available
//! strategy for each branch is chosen" among profile prediction, an
//! intra-loop machine, a loop-exit machine and a correlated machine, all
//! capped at a given number of states.

use std::collections::{HashMap, HashSet};

use brepl_analysis::{BiasEstimate, Classification, DirectionClass, StaticProfile};
use brepl_cfg::{BranchClass, Cfg, ClassifiedBranches, DomTree, LoopForest, PredecessorPaths};
use brepl_ir::{BranchId, Module};
use brepl_predict::{HistoryKind, PatternTable, PatternTableSet};
use brepl_trace::{packed_site_streams, PackedStream, SiteCounts, Trace, TraceEvent};

use crate::correlated::{profile_paths, CorrelatedMachine, PathProfile};
use crate::engine;
use crate::intra_loop::IntraLoopSearch;
use crate::loop_exit::exit_machine_menu;
use crate::machine::StateMachine;
use crate::memo::{self, LoopSearchOutcome, SizeMenu};
use crate::replicate::{BranchMachine, ReplicationPlan};

/// The strategy chosen for one branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChosenStrategy {
    /// Plain profile prediction (one state; no replication).
    Profile,
    /// An intra-loop or loop-exit state machine.
    Loop(StateMachine),
    /// A correlated path machine.
    Correlated(CorrelatedMachine),
}

impl ChosenStrategy {
    /// Number of states the choice uses (1 for profile).
    pub fn states(&self) -> usize {
        match self {
            ChosenStrategy::Profile => 1,
            ChosenStrategy::Loop(m) => m.len(),
            ChosenStrategy::Correlated(m) => m.states(),
        }
    }
}

/// Selection result for one branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyChoice {
    /// The branch.
    pub site: BranchId,
    /// Its loop class.
    pub class: BranchClass,
    /// The winning strategy.
    pub chosen: ChosenStrategy,
    /// Profiled executions.
    pub executions: u64,
    /// Mispredictions under plain profile prediction.
    pub profile_misses: u64,
    /// Mispredictions under the chosen strategy (on the profiling run).
    pub chosen_misses: u64,
}

impl StrategyChoice {
    /// Mispredictions this choice removes relative to profile prediction.
    pub fn benefit(&self) -> u64 {
        self.profile_misses - self.chosen_misses
    }
}

/// The per-branch selection over a whole module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Selection {
    choices: Vec<StrategyChoice>,
    total_events: u64,
}

impl Selection {
    /// Per-branch choices, in site order.
    pub fn choices(&self) -> &[StrategyChoice] {
        &self.choices
    }

    /// Total trace events covered.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Aggregate mispredictions of the selection.
    pub fn total_misses(&self) -> u64 {
        self.choices.iter().map(|c| c.chosen_misses).sum()
    }

    /// Aggregate mispredictions of plain profile prediction.
    pub fn profile_misses(&self) -> u64 {
        self.choices.iter().map(|c| c.profile_misses).sum()
    }

    /// Selection misprediction rate in percent.
    pub fn misprediction_percent(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            100.0 * self.total_misses() as f64 / self.total_events as f64
        }
    }

    /// Number of branches strictly improved over profile — Table 1's
    /// "improved branches" metric generalizes to any selection.
    pub fn improved_branches(&self) -> usize {
        self.choices.iter().filter(|c| c.benefit() > 0).count()
    }

    /// Converts the non-profile choices into a replication plan.
    pub fn to_plan(&self) -> ReplicationPlan {
        self.to_plan_filtered(|_| true)
    }

    /// Like [`Selection::to_plan`], restricted to branches accepted by the
    /// filter — used by size-budgeted pipelines that only replicate the
    /// best benefit-per-size branches.
    pub fn to_plan_filtered(
        &self,
        mut keep: impl FnMut(brepl_ir::BranchId) -> bool,
    ) -> ReplicationPlan {
        let mut plan = ReplicationPlan::new();
        for c in &self.choices {
            if !keep(c.site) {
                continue;
            }
            match &c.chosen {
                ChosenStrategy::Profile => {}
                ChosenStrategy::Loop(m) => {
                    plan.assign(c.site, BranchMachine::Loop(m.clone()));
                }
                ChosenStrategy::Correlated(m) => {
                    plan.assign(c.site, BranchMachine::Correlated(m.clone()));
                }
            }
        }
        plan
    }
}

/// Selects the best strategy for every executed branch of `module` with at
/// most `max_states` states per machine.
///
/// Fans the per-branch search out over [`engine::thread_count`] workers;
/// the result is bit-identical to the serial path (see
/// [`select_strategies_with_threads`]).
///
/// # Panics
///
/// Panics unless `2 <= max_states <= 10`.
pub fn select_strategies(module: &Module, trace: &Trace, max_states: usize) -> Selection {
    select_strategies_with_threads(module, trace, max_states, engine::thread_count())
}

/// [`select_strategies`] with an explicit worker count (`1` = serial).
///
/// Each branch's candidate search is independent: the workers read only
/// shared immutable analysis state, and results are merged back in
/// `BranchId` order, so the `Selection` is **bit-identical** for every
/// thread count. Two memo tiers make repeats cheap (see [`crate::memo`]):
/// the whole selection is cached on `(module fingerprint, trace
/// fingerprint, max_states)` — so a pipeline stage re-selecting over
/// inputs a standalone select stage already solved is one hash lookup —
/// and on a whole-selection miss, each branch's loop-machine search is
/// cached on its table and outcome-stream fingerprints.
///
/// # Panics
///
/// Panics unless `2 <= max_states <= 10`.
pub fn select_strategies_with_threads(
    module: &Module,
    trace: &Trace,
    max_states: usize,
    threads: usize,
) -> Selection {
    assert!(
        (2..=10).contains(&max_states),
        "max_states must be in 2..=10"
    );
    let cached = memo::lookup_or_compute_selection(
        module.fingerprint(),
        trace.fingerprint(),
        max_states,
        || select_uncached(module, trace, max_states, threads, &HashSet::new()),
    );
    (*cached).clone()
}

/// [`select_strategies`] with a classification-driven planner fast-path.
///
/// Sites the static layer proved monostatic whose profile is *unanimous*
/// (`minority_count() == 0`) are assigned [`ChosenStrategy::Profile`]
/// without running the machine search: profile prediction already has
/// zero misses on them, no machine can do strictly better, and
/// the per-site search only switches strategy on a strict improvement — so
/// the skipped choice is **bit-identical** to the searched one. Returns
/// the selection plus the number of sites the fast-path handled.
///
/// With `classification` absent (or no site qualifying) this is exactly
/// [`select_strategies`], including the whole-selection memo: because the
/// output is bit-identical either way, both paths share one memo entry.
///
/// # Panics
///
/// Panics unless `2 <= max_states <= 10`.
pub fn select_strategies_classified(
    module: &Module,
    trace: &Trace,
    max_states: usize,
    classification: Option<&Classification>,
) -> (Selection, usize) {
    assert!(
        (2..=10).contains(&max_states),
        "max_states must be in 2..=10"
    );
    let skip = fast_path_sites(trace, classification);
    let threads = engine::thread_count();
    let cached = memo::lookup_or_compute_selection(
        module.fingerprint(),
        trace.fingerprint(),
        max_states,
        || select_uncached(module, trace, max_states, threads, &skip),
    );
    ((*cached).clone(), skip.len())
}

/// Synthetic-trace event budget for estimate-driven planning. Large
/// enough that per-site shares survive rounding, small enough that the
/// zero-profiling path stays cheap.
const SYNTH_EVENT_BUDGET: f64 = 65536.0;

/// Approximates `p` by the small-denominator rational `num/den`
/// (`den <= max_den`) closest to it, preferring the smallest such
/// denominator on ties — heuristic biases become short periodic
/// patterns instead of long irregular streams.
fn approx_rational(p: f64, max_den: u64) -> (u64, u64) {
    let mut best = (1u64, 2u64);
    let mut best_err = f64::INFINITY;
    for den in 1..=max_den {
        let num = (p * den as f64).round().clamp(0.0, den as f64) as u64;
        let err = (p - num as f64 / den as f64).abs();
        if err + 1e-12 < best_err {
            best_err = err;
            best = (num, den);
        }
    }
    best
}

/// Synthesizes the expected profiling trace from a [`StaticProfile`] —
/// the zero-profiling planning input.
///
/// Each estimated site gets a contiguous stream whose length is its
/// share of a fixed event budget (proportional to estimated frequency)
/// rounded to **whole periods** of its bias rational: an exact
/// `num/den` site emits `num` takens then `den - num` not-takens per
/// period — the observable pattern of a counted loop — so the
/// synthetic trace satisfies every promoted proof *exactly* and the
/// BR013/BR014 gates accept it for the same reason they accept an
/// honest measured trace. Heuristic biases are first approximated by
/// the closest rational with denominator at most 8.
///
/// Sites in unconverged functions carry zero estimated frequency and
/// are omitted — fail-closed estimation also fails closed here.
pub fn synthesize_profile_trace(profile: &StaticProfile) -> Trace {
    let mut trace = Trace::new();
    let total: f64 = profile.sites.iter().map(|s| s.freq.max(0.0)).sum();
    if total <= 0.0 {
        return trace;
    }
    for s in &profile.sites {
        if s.freq <= 0.0 {
            continue;
        }
        let share = ((s.freq / total) * SYNTH_EVENT_BUDGET).round() as u64;
        let (num, den) = match s.bias {
            BiasEstimate::Exact { num, den } => (num, den.max(1)),
            BiasEstimate::Heuristic(p) => approx_rational(p, 8),
        };
        let periods = (share / den).max(1);
        for _ in 0..periods {
            for k in 0..den {
                trace.push(TraceEvent {
                    site: s.site,
                    taken: k < num,
                });
            }
        }
    }
    trace
}

/// Estimate-driven strategy selection: plans replication with **zero**
/// profiling runs by selecting over the synthetic trace of
/// [`synthesize_profile_trace`]. Returns the selection, the synthetic
/// trace (the downstream `apply_plan`/gate stack consumes its stats)
/// and the classified fast-path skip count.
///
/// # Panics
///
/// Panics unless `2 <= max_states <= 10`.
pub fn select_strategies_estimated(
    module: &Module,
    profile: &StaticProfile,
    classification: Option<&Classification>,
    max_states: usize,
) -> (Selection, Trace, usize) {
    let trace = synthesize_profile_trace(profile);
    let (selection, skips) =
        select_strategies_classified(module, &trace, max_states, classification);
    (selection, trace, skips)
}

/// The fast-path candidates: executed sites proved monostatic whose
/// profile is unanimous. Unanimity (not the proof) is what licenses the
/// skip — `profile_misses == 0` makes the Profile choice unbeatable — so
/// even a proof contradicted by a (forged) trace never changes the
/// selection, only the BR013 gate's verdict.
fn fast_path_sites(trace: &Trace, classification: Option<&Classification>) -> HashSet<BranchId> {
    let mut skip = HashSet::new();
    let Some(cls) = classification else {
        return skip;
    };
    let stats = trace.stats();
    for sc in &cls.sites {
        if !matches!(sc.class, DirectionClass::ProvedMonostatic(_)) {
            continue;
        }
        let counts = stats.site(sc.site);
        if counts.total() > 0 && counts.minority_count() == 0 {
            skip.insert(sc.site);
        }
    }
    skip
}

/// The selection search proper — everything below the whole-selection
/// memo. Pure in `(module, trace, max_states)`; `threads` only changes
/// wall-clock, and `skip` (sites with a unanimous profile, per
/// [`fast_path_sites`]) only changes how the Profile choice for those
/// sites is *reached*, never what it is.
fn select_uncached(
    module: &Module,
    trace: &Trace,
    max_states: usize,
    threads: usize,
    skip: &HashSet<BranchId>,
) -> Selection {
    let stats = trace.stats();
    let tables = PatternTableSet::build(trace, HistoryKind::Local, 9);
    let search = IntraLoopSearch::new(max_states, 9);

    // Packed per-site outcome streams, built once for the whole selection:
    // machine candidates are scored on these word-at-a-time.
    let outcomes = packed_site_streams(trace, &stats);
    let no_outcomes = PackedStream::new();

    // Candidate decision paths for every executed branch ("a maximum path
    // length of n for an n state machine"), plus loop identity for the
    // joint rebalancing below.
    let mut candidates: HashMap<BranchId, Vec<Vec<brepl_cfg::PathStep>>> = HashMap::new();
    let mut class_of: HashMap<BranchId, BranchClass> = HashMap::new();
    let mut loop_of: HashMap<BranchId, (brepl_ir::FuncId, brepl_ir::BlockId)> = HashMap::new();
    for (fid, func) in module.iter_functions() {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let classes = ClassifiedBranches::analyze(func, &forest);
        for info in classes.branches() {
            if stats.site(info.site).total() == 0 {
                continue;
            }
            class_of.insert(info.site, info.class);
            if skip.contains(&info.site) {
                // Fast path: no candidate paths, no loop membership — the
                // site's choice is synthesized below without a search, and
                // a Profile choice never enters the joint rebalancing.
                continue;
            }
            if let Some(l) = info.innermost_loop {
                loop_of.insert(info.site, (fid, forest.get(l).header));
            }
            let paths =
                PredecessorPaths::enumerate(func, &cfg, info.block, max_states.saturating_sub(1));
            candidates.insert(info.site, paths.paths);
        }
    }
    let path_profiles = profile_paths(trace, &candidates);

    let mut sites: Vec<BranchId> = class_of.keys().copied().collect();
    sites.sort();

    // Fan out: one pure search per branch over shared read-only state.
    let per_site: Vec<(StrategyChoice, Option<SizeMenu>)> =
        engine::par_map_with(threads, &sites, |&site| {
            if skip.contains(&site) {
                let counts = stats.site(site);
                debug_assert_eq!(counts.minority_count(), 0, "fast path needs unanimity");
                return (
                    StrategyChoice {
                        site,
                        class: class_of[&site],
                        chosen: ChosenStrategy::Profile,
                        executions: counts.total(),
                        profile_misses: counts.minority_count(),
                        chosen_misses: counts.minority_count(),
                    },
                    None,
                );
            }
            search_site(
                site,
                class_of[&site],
                stats.site(site),
                tables.site(site),
                outcomes.get(site.index()).unwrap_or(&no_outcomes),
                path_profiles.get(&site),
                &search,
                max_states,
            )
        });

    // Merge in site order (par_map preserves input order).
    let mut choices = Vec::with_capacity(per_site.len());
    let mut menus: HashMap<BranchId, SizeMenu> = HashMap::new();
    for (choice, menu) in per_site {
        if let Some(menu) = menu {
            menus.insert(choice.site, menu);
        }
        choices.push(choice);
    }

    rebalance_same_loop_machines(&mut choices, &menus, &loop_of);

    Selection {
        choices,
        total_events: trace.len() as u64,
    }
}

/// The per-branch unit of work: searches every applicable strategy family
/// for one branch and returns its choice plus (when a loop machine won)
/// the per-size menu for §6 joint rebalancing.
///
/// Pure with respect to its inputs — safe to run on any engine worker.
#[allow(clippy::too_many_arguments)]
fn search_site(
    site: BranchId,
    class: BranchClass,
    counts: SiteCounts,
    table: Option<&PatternTable>,
    outcomes: &PackedStream,
    path_profile: Option<&PathProfile>,
    search: &IntraLoopSearch,
    max_states: usize,
) -> (StrategyChoice, Option<SizeMenu>) {
    let profile_misses = counts.minority_count();
    let mut best_misses = profile_misses;
    let mut best = ChosenStrategy::Profile;
    let mut menu: Option<SizeMenu> = None;

    if let Some(table) = table {
        if !matches!(class, BranchClass::NonLoop) {
            // The loop-machine search depends only on (class, table,
            // outcome stream, budget) — memoize it process-wide.
            let outcome = memo::lookup_or_compute(
                class,
                table.fingerprint(),
                memo::fingerprint_packed(outcomes),
                max_states,
                || loop_search(class, table, outcomes, search, max_states),
            );
            if let Some((machine, misses)) = &outcome.best {
                if *misses < best_misses {
                    best_misses = *misses;
                    best = ChosenStrategy::Loop(machine.clone());
                    menu = Some(outcome.menu.clone());
                }
            }
        }
    }

    if let Some(p) = path_profile {
        // Guard against path overfitting: demand each path pay for
        // itself with at least ~0.5% of the branch's executions.
        let min_gain = (counts.total() / 200).max(2);
        let r = p.select_with_threshold(max_states, min_gain);
        if r.mispredictions() < best_misses && r.machine.states() > 1 {
            best_misses = r.mispredictions();
            best = ChosenStrategy::Correlated(r.machine);
            menu = None;
        }
    }

    (
        StrategyChoice {
            site,
            class,
            chosen: best,
            executions: counts.total(),
            profile_misses,
            chosen_misses: best_misses,
        },
        menu,
    )
}

/// The memoized kernel: finds the best intra-loop or loop-exit machine for
/// one `(table, outcome stream, budget)` input, plus the best machine per
/// exact size. `best` is populated only when a machine strictly beats the
/// profile baseline of the same outcome stream.
fn loop_search(
    class: BranchClass,
    table: &PatternTable,
    outcomes: &PackedStream,
    search: &IntraLoopSearch,
    max_states: usize,
) -> LoopSearchOutcome {
    // Profile baseline, derived from the same stream the memo key hashes.
    let taken = outcomes.count_taken();
    let not_taken = outcomes.len() as u64 - taken;
    let profile_misses = taken.min(not_taken);

    let mut best: Option<(StateMachine, u64)> = None;
    let mut best_misses = profile_misses;
    let mut menu: SizeMenu = vec![None; max_states + 1];
    match class {
        BranchClass::IntraLoop => {
            // Rank candidates by partition score (the paper's
            // bookkeeping), then judge the winners by *simulation*
            // on the real outcome stream — that is what the
            // replicated code will actually do. All surviving
            // candidates share one packed pass over the stream.
            let results: Vec<_> = search.search(table).into_iter().flatten().collect();
            let machines: Vec<StateMachine> = results.iter().map(|r| r.machine.clone()).collect();
            let scores = crate::machine::simulate_packed_many(&machines, outcomes);
            for (r, (correct, total)) in results.into_iter().zip(scores) {
                let misses = total - correct;
                let n = r.machine.len();
                if misses < best_misses {
                    best_misses = misses;
                    best = Some((r.machine.clone(), misses));
                }
                match &menu[n] {
                    Some((_, m)) if *m <= misses => {}
                    _ => menu[n] = Some((r.machine, misses)),
                }
            }
        }
        BranchClass::LoopExit => {
            // One shared pass over all budgets: each entry is bit-identical
            // to `best_exit_machine(n, ..)` but the inverted stream/table
            // and the per-shape simulations happen once, not once per n.
            for r in exit_machine_menu(max_states, table, outcomes) {
                let misses = r.total - r.correct;
                let sz = r.machine.len();
                if misses < best_misses {
                    best_misses = misses;
                    best = Some((r.machine.clone(), misses));
                }
                match &menu[sz] {
                    Some((_, m)) if *m <= misses => {}
                    _ => menu[sz] = Some((r.machine, misses)),
                }
            }
        }
        BranchClass::NonLoop => {}
    }
    LoopSearchOutcome { best, menu }
}

/// The paper's §6 joint search, applied where it matters: when several
/// branches of the *same* loop won machines, their sizes multiply the
/// loop's replication factor. Re-allocate each branch's machine size with
/// the branch-and-bound of [`crate::joint::allocate_joint_states`] so the
/// product stays within [`crate::replicate::MAX_PRODUCT_STATES`] at the
/// smallest total misprediction (choosing independently and shedding later
/// is strictly worse).
fn rebalance_same_loop_machines(
    choices: &mut [StrategyChoice],
    menus: &HashMap<BranchId, Vec<Option<(StateMachine, u64)>>>,
    loop_of: &HashMap<BranchId, (brepl_ir::FuncId, brepl_ir::BlockId)>,
) {
    use crate::joint::{allocate_joint_states, BranchCurve};
    use crate::replicate::MAX_PRODUCT_STATES;

    // Group machine-winning choices by loop.
    let mut groups: HashMap<(brepl_ir::FuncId, brepl_ir::BlockId), Vec<usize>> = HashMap::new();
    for (idx, c) in choices.iter().enumerate() {
        if !matches!(c.chosen, ChosenStrategy::Loop(_)) {
            continue;
        }
        let Some(&key) = loop_of.get(&c.site) else {
            continue;
        };
        groups.entry(key).or_default().push(idx);
    }

    for idxs in groups.into_values() {
        if idxs.len() < 2 {
            continue; // nothing to balance
        }
        let product: usize = idxs.iter().map(|&i| choices[i].chosen.states()).product();
        if product <= MAX_PRODUCT_STATES {
            continue; // independent choices already fit
        }
        // Build curves: index 0 = profile, missing sizes = effectively
        // forbidden.
        const FORBIDDEN: u64 = u64::MAX / 4;
        let curves: Vec<BranchCurve> = idxs
            .iter()
            .map(|&i| {
                let c = &choices[i];
                let menu = &menus[&c.site];
                let mut misses = vec![c.profile_misses];
                for entry in menu.iter().skip(2) {
                    misses.push(entry.as_ref().map_or(FORBIDDEN, |(_, m)| *m));
                }
                // Insert the (unused) 1-state slot placeholder for n=2's
                // position shift: misses[n-1] must be size-n cost, so size
                // 2 sits at index 1 — handled by starting the skip at 2 and
                // pushing in order.
                BranchCurve {
                    site: c.site,
                    misses,
                }
            })
            .collect();
        let allocation = allocate_joint_states(&curves, MAX_PRODUCT_STATES as u64);
        for (&idx, &(site, n)) in idxs.iter().zip(&allocation.states) {
            debug_assert_eq!(choices[idx].site, site);
            if n <= 1 {
                choices[idx].chosen = ChosenStrategy::Profile;
                choices[idx].chosen_misses = choices[idx].profile_misses;
            } else {
                let menu = &menus[&site];
                // Curve index n-1 corresponds to menu entry n (sizes are
                // offset by the missing 1-state machine slot).
                let (machine, misses) = menu[n]
                    .as_ref()
                    .expect("allocation only picks available sizes")
                    .clone();
                choices[idx].chosen = ChosenStrategy::Loop(machine);
                choices[idx].chosen_misses = misses;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand, Value};
    use brepl_sim::{Machine as Sim, RunConfig};

    /// A module with an alternating intra-loop branch, a fixed-count exit
    /// branch and a correlated pair outside loops.
    fn rich_module() -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let after = b.new_block();
        let j1 = b.new_block();
        let j2 = b.new_block();
        let join = b.new_block();
        let yes = b.new_block();
        let no = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd); // intra-loop, alternating
        b.switch_to(even);
        b.jmp(latch);
        b.switch_to(odd);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), n.into());
        b.br(c2, head, after); // loop exit
        b.switch_to(after);
        let c3 = b.gt(n.into(), Operand::imm(10));
        b.br(c3, j1, j2); // first of a correlated pair
        b.switch_to(j1);
        b.jmp(join);
        b.switch_to(j2);
        b.jmp(join);
        b.switch_to(join);
        let c4 = b.gt(n.into(), Operand::imm(10));
        b.br(c4, yes, no); // copies c3: perfectly correlated
        b.switch_to(yes);
        b.ret(Some(Operand::imm(1)));
        b.switch_to(no);
        b.ret(Some(Operand::imm(0)));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    fn trace_of(m: &Module, n: i64) -> Trace {
        Sim::new(m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(n)])
            .unwrap()
            .trace
    }

    #[test]
    fn selection_beats_profile() {
        let m = rich_module();
        let t = trace_of(&m, 100);
        let sel = select_strategies(&m, &t, 4);
        assert!(sel.total_misses() < sel.profile_misses());
        assert!(sel.improved_branches() >= 1);
        assert!(sel.misprediction_percent() < 5.0);
    }

    #[test]
    fn alternating_branch_gets_loop_machine() {
        let m = rich_module();
        let t = trace_of(&m, 100);
        let sel = select_strategies(&m, &t, 4);
        let alt = sel
            .choices()
            .iter()
            .find(|c| c.site == BranchId(0))
            .unwrap();
        assert_eq!(alt.class, BranchClass::IntraLoop);
        assert!(matches!(alt.chosen, ChosenStrategy::Loop(_)));
        assert_eq!(alt.chosen_misses, 0);
        assert!(alt.profile_misses >= 49);
    }

    #[test]
    fn correlated_branch_gets_path_machine() {
        let m = rich_module();
        // Run on several inputs so the correlated branch is not constant.
        let mut t = Trace::new();
        for n in [5i64, 15, 8, 20, 3, 30, 11, 9] {
            t.extend(trace_of(&m, n).iter());
        }
        let sel = select_strategies(&m, &t, 3);
        let corr = sel
            .choices()
            .iter()
            .find(|c| c.site == BranchId(3))
            .unwrap();
        assert_eq!(corr.class, BranchClass::NonLoop);
        assert!(matches!(corr.chosen, ChosenStrategy::Correlated(_)));
        assert_eq!(corr.chosen_misses, 0, "the copier is fully correlated");
    }

    #[test]
    fn plan_round_trips_through_replication() {
        let m = rich_module();
        let t = trace_of(&m, 100);
        let sel = select_strategies(&m, &t, 4);
        let plan = sel.to_plan();
        assert!(!plan.is_empty());
        let program = crate::replicate::apply_plan(&m, &plan, &t.stats()).unwrap();
        crate::replicate::check_equivalence(&m, &program, "main", &[Value::Int(100)], &[]).unwrap();
    }

    /// A loop whose body holds several period-7 branches: independently
    /// each wants a large machine, and the product overflows the cap, so
    /// the §6 joint rebalancing must kick in.
    #[test]
    fn same_loop_machines_are_jointly_rebalanced() {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let head = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let loop_test = b.lt(i.into(), n.into());
        let mut body = b.new_block();
        b.br(loop_test, body, exit);
        for k in 0..4u32 {
            b.switch_to(body);
            let r = b.reg();
            b.rem(r, i.into(), Operand::imm(7));
            let c = b.eq(r.into(), Operand::imm(i64::from(k)));
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            b.br(c, t, e);
            b.switch_to(t);
            b.add(acc, acc.into(), Operand::imm(1));
            b.jmp(j);
            b.switch_to(e);
            b.add(acc, acc.into(), Operand::imm(2));
            b.jmp(j);
            body = j;
        }
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());

        let t = trace_of(&m, 700);
        let sel = select_strategies(&m, &t, 8);
        // All loop-machine products must respect the replication cap.
        let product: usize = sel
            .choices()
            .iter()
            .filter(|c| matches!(c.chosen, ChosenStrategy::Loop(_)))
            .map(|c| c.chosen.states())
            .product();
        assert!(
            product <= crate::replicate::MAX_PRODUCT_STATES,
            "rebalanced product {product} exceeds cap"
        );
        // The rebalanced selection still beats plain profile decisively:
        // period-7 branches are fully predictable with enough states.
        assert!(sel.total_misses() * 2 < sel.profile_misses());
        // And the plan applies without shedding, preserving semantics.
        let plan = sel.to_plan();
        let program = crate::replicate::apply_plan(&m, &plan, &t.stats()).unwrap();
        crate::replicate::check_equivalence(&m, &program, "main", &[Value::Int(700)], &[]).unwrap();
    }

    #[test]
    fn repeated_selection_is_a_memo_hit_and_identical() {
        let m = rich_module();
        let t = trace_of(&m, 90);
        let first = select_strategies(&m, &t, 5);
        let (_, hits_before) = memo::selection_stats();
        let second = select_strategies(&m, &t, 5);
        let (_, hits_after) = memo::selection_stats();
        assert_eq!(first, second, "cache hits must be bit-identical");
        assert!(
            hits_after > hits_before,
            "the repeat selection must come from the whole-selection memo"
        );
        // A different budget is a different key, not a stale hit.
        let third = select_strategies(&m, &t, 2);
        assert!(third.total_misses() >= first.total_misses());
    }

    /// A loop with a constant-true guard (provably monostatic, unanimous
    /// in any trace) next to a real loop-exit branch: the classified fast
    /// path must skip exactly the guard and produce a selection
    /// bit-identical to the full search.
    #[test]
    fn classified_fast_path_is_bit_identical_and_counts_skips() {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let g_t = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), n.into());
        b.br(c, body, exit); // site 0: loop exit, genuinely searched
        b.switch_to(body);
        let one = b.reg();
        b.const_int(one, 1);
        let g = b.gt(one.into(), Operand::imm(0));
        b.br(g, g_t, latch); // site 1: constant-true guard, proved
        b.switch_to(g_t);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();

        let t = trace_of(&m, 50);
        let cls = brepl_analysis::classify_module(&m);
        let skip = fast_path_sites(&t, Some(&cls));
        assert_eq!(skip.len(), 1);
        assert!(skip.contains(&BranchId(1)));

        // Call below the memo so both paths genuinely run the search.
        let plain = select_uncached(&m, &t, 4, 1, &HashSet::new());
        let fast = select_uncached(&m, &t, 4, 1, &skip);
        assert_eq!(plain, fast, "fast path must be bit-identical");

        let (via_api, skips) = select_strategies_classified(&m, &t, 4, Some(&cls));
        assert_eq!(via_api, plain);
        assert_eq!(skips, 1);
        // Without a classification the API degrades to plain selection.
        let (no_cls, no_skips) = select_strategies_classified(&m, &t, 4, None);
        assert_eq!(no_cls, plain);
        assert_eq!(no_skips, 0);
    }

    /// The synthetic trace of a counted loop satisfies every promoted
    /// proof exactly, and estimate-driven selection plans from it with
    /// zero simulator runs.
    #[test]
    fn synthetic_trace_satisfies_exact_rationals() {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let g_t = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), Operand::imm(50));
        b.br(c, body, exit); // site 0: exact 50/51
        b.switch_to(body);
        let one = b.reg();
        b.const_int(one, 1);
        let g = b.gt(one.into(), Operand::imm(0));
        b.br(g, g_t, latch); // site 1: proved always-taken
        b.switch_to(g_t);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();

        let cls = brepl_analysis::classify_module(&m);
        let profile = brepl_analysis::estimate_profile(&m, &cls);
        assert!(profile.converged());

        let t = synthesize_profile_trace(&profile);
        assert!(!t.is_empty());
        let stats = t.stats();
        // Every exact estimate is reproduced as an exact rational.
        for s in &profile.sites {
            if let brepl_analysis::BiasEstimate::Exact { num, den } = s.bias {
                let counts = stats.site(s.site);
                assert!(counts.total() > 0);
                assert_eq!(
                    u128::from(counts.taken) * u128::from(den),
                    u128::from(counts.total()) * u128::from(num),
                    "site {:?} synthetic stream violates {num}/{den}",
                    s.site
                );
            }
        }

        // Estimate-driven selection runs end to end on the synthetic
        // trace and its plan applies to the module.
        let (sel, trace, skips) = select_strategies_estimated(&m, &profile, Some(&cls), 4);
        assert_eq!(sel.total_events(), trace.len() as u64);
        assert!(skips >= 1, "the proved guard takes the fast path");
        let program = crate::replicate::apply_plan(&m, &sel.to_plan(), &trace.stats()).unwrap();
        assert!(program.module.branch_count() >= m.branch_count());
    }

    #[test]
    fn rational_approximation_is_close_and_small() {
        for &(p, want) in &[
            (0.5, (1, 2)),
            (0.88, (7, 8)),
            (0.62, (5, 8)),
            (0.99, (1, 1)),
            (0.01, (0, 1)),
        ] {
            let got = approx_rational(p, 8);
            assert_eq!(got, want, "p = {p}");
            assert!((p - got.0 as f64 / got.1 as f64).abs() <= 0.07);
        }
    }

    #[test]
    fn more_states_never_hurt() {
        let m = rich_module();
        let t = trace_of(&m, 64);
        let mut prev = u64::MAX;
        for n in 2..=6 {
            let sel = select_strategies(&m, &t, n);
            assert!(sel.total_misses() <= prev);
            prev = sel.total_misses();
        }
    }
}
