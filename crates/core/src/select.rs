//! Per-branch strategy selection (§5 of the paper): "the best available
//! strategy for each branch is chosen" among profile prediction, an
//! intra-loop machine, a loop-exit machine and a correlated machine, all
//! capped at a given number of states.

use std::collections::HashMap;

use brepl_cfg::{BranchClass, Cfg, ClassifiedBranches, DomTree, LoopForest, PredecessorPaths};
use brepl_ir::{BranchId, Module};
use brepl_predict::{HistoryKind, PatternTableSet};
use brepl_trace::Trace;

use crate::correlated::{profile_paths, CorrelatedMachine};
use crate::intra_loop::IntraLoopSearch;
use crate::loop_exit::best_exit_machine;
use crate::machine::StateMachine;
use crate::replicate::{BranchMachine, ReplicationPlan};

/// The strategy chosen for one branch.
#[derive(Clone, Debug)]
pub enum ChosenStrategy {
    /// Plain profile prediction (one state; no replication).
    Profile,
    /// An intra-loop or loop-exit state machine.
    Loop(StateMachine),
    /// A correlated path machine.
    Correlated(CorrelatedMachine),
}

impl ChosenStrategy {
    /// Number of states the choice uses (1 for profile).
    pub fn states(&self) -> usize {
        match self {
            ChosenStrategy::Profile => 1,
            ChosenStrategy::Loop(m) => m.len(),
            ChosenStrategy::Correlated(m) => m.states(),
        }
    }
}

/// Selection result for one branch.
#[derive(Clone, Debug)]
pub struct StrategyChoice {
    /// The branch.
    pub site: BranchId,
    /// Its loop class.
    pub class: BranchClass,
    /// The winning strategy.
    pub chosen: ChosenStrategy,
    /// Profiled executions.
    pub executions: u64,
    /// Mispredictions under plain profile prediction.
    pub profile_misses: u64,
    /// Mispredictions under the chosen strategy (on the profiling run).
    pub chosen_misses: u64,
}

impl StrategyChoice {
    /// Mispredictions this choice removes relative to profile prediction.
    pub fn benefit(&self) -> u64 {
        self.profile_misses - self.chosen_misses
    }
}

/// The per-branch selection over a whole module.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    choices: Vec<StrategyChoice>,
    total_events: u64,
}

impl Selection {
    /// Per-branch choices, in site order.
    pub fn choices(&self) -> &[StrategyChoice] {
        &self.choices
    }

    /// Total trace events covered.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Aggregate mispredictions of the selection.
    pub fn total_misses(&self) -> u64 {
        self.choices.iter().map(|c| c.chosen_misses).sum()
    }

    /// Aggregate mispredictions of plain profile prediction.
    pub fn profile_misses(&self) -> u64 {
        self.choices.iter().map(|c| c.profile_misses).sum()
    }

    /// Selection misprediction rate in percent.
    pub fn misprediction_percent(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            100.0 * self.total_misses() as f64 / self.total_events as f64
        }
    }

    /// Number of branches strictly improved over profile — Table 1's
    /// "improved branches" metric generalizes to any selection.
    pub fn improved_branches(&self) -> usize {
        self.choices.iter().filter(|c| c.benefit() > 0).count()
    }

    /// Converts the non-profile choices into a replication plan.
    pub fn to_plan(&self) -> ReplicationPlan {
        self.to_plan_filtered(|_| true)
    }

    /// Like [`Selection::to_plan`], restricted to branches accepted by the
    /// filter — used by size-budgeted pipelines that only replicate the
    /// best benefit-per-size branches.
    pub fn to_plan_filtered(
        &self,
        mut keep: impl FnMut(brepl_ir::BranchId) -> bool,
    ) -> ReplicationPlan {
        let mut plan = ReplicationPlan::new();
        for c in &self.choices {
            if !keep(c.site) {
                continue;
            }
            match &c.chosen {
                ChosenStrategy::Profile => {}
                ChosenStrategy::Loop(m) => {
                    plan.assign(c.site, BranchMachine::Loop(m.clone()));
                }
                ChosenStrategy::Correlated(m) => {
                    plan.assign(c.site, BranchMachine::Correlated(m.clone()));
                }
            }
        }
        plan
    }
}

/// Selects the best strategy for every executed branch of `module` with at
/// most `max_states` states per machine.
///
/// # Panics
///
/// Panics unless `2 <= max_states <= 10`.
pub fn select_strategies(module: &Module, trace: &Trace, max_states: usize) -> Selection {
    assert!(
        (2..=10).contains(&max_states),
        "max_states must be in 2..=10"
    );
    let stats = trace.stats();
    let tables = PatternTableSet::build(trace, HistoryKind::Local, 9);
    let search = IntraLoopSearch::new(max_states, 9);

    // Outcome streams per site, for exit-machine simulation.
    let mut outcomes: Vec<Vec<bool>> = Vec::new();
    for ev in trace.iter() {
        let i = ev.site.index();
        if i >= outcomes.len() {
            outcomes.resize_with(i + 1, Vec::new);
        }
        outcomes[i].push(ev.taken);
    }

    // Candidate decision paths for every executed branch ("a maximum path
    // length of n for an n state machine"), plus loop identity for the
    // joint rebalancing below.
    let mut candidates: HashMap<BranchId, Vec<Vec<brepl_cfg::PathStep>>> = HashMap::new();
    let mut class_of: HashMap<BranchId, BranchClass> = HashMap::new();
    let mut loop_of: HashMap<BranchId, (brepl_ir::FuncId, brepl_ir::BlockId)> = HashMap::new();
    for (fid, func) in module.iter_functions() {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let classes = ClassifiedBranches::analyze(func, &forest);
        for info in classes.branches() {
            if stats.site(info.site).total() == 0 {
                continue;
            }
            class_of.insert(info.site, info.class);
            if let Some(l) = info.innermost_loop {
                loop_of.insert(info.site, (fid, forest.get(l).header));
            }
            let paths =
                PredecessorPaths::enumerate(func, &cfg, info.block, max_states.saturating_sub(1));
            candidates.insert(info.site, paths.paths);
        }
    }
    let path_profiles = profile_paths(trace, &candidates);

    // Per-site machine menus: `menu[site][n]` = best loop machine with
    // exactly n states and its simulated misses (index 0 = profile).
    let mut menus: HashMap<BranchId, Vec<Option<(StateMachine, u64)>>> = HashMap::new();

    let mut choices = Vec::new();
    let mut sites: Vec<BranchId> = class_of.keys().copied().collect();
    sites.sort();
    for site in sites {
        let class = class_of[&site];
        let counts = stats.site(site);
        let profile_misses = counts.minority_count();
        let mut best_misses = profile_misses;
        let mut best = ChosenStrategy::Profile;

        let table = tables.site(site);
        if let Some(table) = table {
            let mut menu: Vec<Option<(StateMachine, u64)>> = vec![None; max_states + 1];
            match class {
                BranchClass::IntraLoop => {
                    // Rank candidates by partition score (the paper's
                    // bookkeeping), then judge the winners by *simulation*
                    // on the real outcome stream — that is what the
                    // replicated code will actually do.
                    let outs = &outcomes[site.index()];
                    for r in search.search(table).into_iter().flatten() {
                        let (correct, total) = r.machine.simulate(outs.iter().copied());
                        let misses = total - correct;
                        let n = r.machine.len();
                        if misses < best_misses {
                            best_misses = misses;
                            best = ChosenStrategy::Loop(r.machine.clone());
                        }
                        match &menu[n] {
                            Some((_, m)) if *m <= misses => {}
                            _ => menu[n] = Some((r.machine, misses)),
                        }
                    }
                }
                BranchClass::LoopExit => {
                    for n in 2..=max_states {
                        let r = best_exit_machine(n, table, &outcomes[site.index()]);
                        let misses = r.total - r.correct;
                        let sz = r.machine.len();
                        if misses < best_misses {
                            best_misses = misses;
                            best = ChosenStrategy::Loop(r.machine.clone());
                        }
                        match &menu[sz] {
                            Some((_, m)) if *m <= misses => {}
                            _ => menu[sz] = Some((r.machine, misses)),
                        }
                    }
                }
                BranchClass::NonLoop => {}
            }
            if matches!(best, ChosenStrategy::Loop(_)) {
                menus.insert(site, menu);
            }
        }

        if let Some(p) = path_profiles.get(&site) {
            // Guard against path overfitting: demand each path pay for
            // itself with at least ~0.5% of the branch's executions.
            let min_gain = (counts.total() / 200).max(2);
            let r = p.select_with_threshold(max_states, min_gain);
            if r.mispredictions() < best_misses && r.machine.states() > 1 {
                best_misses = r.mispredictions();
                best = ChosenStrategy::Correlated(r.machine);
                menus.remove(&site);
            }
        }

        choices.push(StrategyChoice {
            site,
            class,
            chosen: best,
            executions: counts.total(),
            profile_misses,
            chosen_misses: best_misses,
        });
    }

    rebalance_same_loop_machines(&mut choices, &menus, &loop_of);

    Selection {
        choices,
        total_events: trace.len() as u64,
    }
}

/// The paper's §6 joint search, applied where it matters: when several
/// branches of the *same* loop won machines, their sizes multiply the
/// loop's replication factor. Re-allocate each branch's machine size with
/// the branch-and-bound of [`crate::joint::allocate_joint_states`] so the
/// product stays within [`crate::replicate::MAX_PRODUCT_STATES`] at the
/// smallest total misprediction (choosing independently and shedding later
/// is strictly worse).
fn rebalance_same_loop_machines(
    choices: &mut [StrategyChoice],
    menus: &HashMap<BranchId, Vec<Option<(StateMachine, u64)>>>,
    loop_of: &HashMap<BranchId, (brepl_ir::FuncId, brepl_ir::BlockId)>,
) {
    use crate::joint::{allocate_joint_states, BranchCurve};
    use crate::replicate::MAX_PRODUCT_STATES;

    // Group machine-winning choices by loop.
    let mut groups: HashMap<(brepl_ir::FuncId, brepl_ir::BlockId), Vec<usize>> = HashMap::new();
    for (idx, c) in choices.iter().enumerate() {
        if !matches!(c.chosen, ChosenStrategy::Loop(_)) {
            continue;
        }
        let Some(&key) = loop_of.get(&c.site) else {
            continue;
        };
        groups.entry(key).or_default().push(idx);
    }

    for idxs in groups.into_values() {
        if idxs.len() < 2 {
            continue; // nothing to balance
        }
        let product: usize = idxs
            .iter()
            .map(|&i| choices[i].chosen.states())
            .product();
        if product <= MAX_PRODUCT_STATES {
            continue; // independent choices already fit
        }
        // Build curves: index 0 = profile, missing sizes = effectively
        // forbidden.
        const FORBIDDEN: u64 = u64::MAX / 4;
        let curves: Vec<BranchCurve> = idxs
            .iter()
            .map(|&i| {
                let c = &choices[i];
                let menu = &menus[&c.site];
                let mut misses = vec![c.profile_misses];
                for entry in menu.iter().skip(2) {
                    misses.push(entry.as_ref().map_or(FORBIDDEN, |(_, m)| *m));
                }
                // Insert the (unused) 1-state slot placeholder for n=2's
                // position shift: misses[n-1] must be size-n cost, so size
                // 2 sits at index 1 — handled by starting the skip at 2 and
                // pushing in order.
                BranchCurve {
                    site: c.site,
                    misses,
                }
            })
            .collect();
        let allocation = allocate_joint_states(&curves, MAX_PRODUCT_STATES as u64);
        for (&idx, &(site, n)) in idxs.iter().zip(&allocation.states) {
            debug_assert_eq!(choices[idx].site, site);
            if n <= 1 {
                choices[idx].chosen = ChosenStrategy::Profile;
                choices[idx].chosen_misses = choices[idx].profile_misses;
            } else {
                let menu = &menus[&site];
                // Curve index n-1 corresponds to menu entry n (sizes are
                // offset by the missing 1-state machine slot).
                let (machine, misses) = menu[n]
                    .as_ref()
                    .expect("allocation only picks available sizes")
                    .clone();
                choices[idx].chosen = ChosenStrategy::Loop(machine);
                choices[idx].chosen_misses = misses;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand, Value};
    use brepl_sim::{Machine as Sim, RunConfig};

    /// A module with an alternating intra-loop branch, a fixed-count exit
    /// branch and a correlated pair outside loops.
    fn rich_module() -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let after = b.new_block();
        let j1 = b.new_block();
        let j2 = b.new_block();
        let join = b.new_block();
        let yes = b.new_block();
        let no = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd); // intra-loop, alternating
        b.switch_to(even);
        b.jmp(latch);
        b.switch_to(odd);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), n.into());
        b.br(c2, head, after); // loop exit
        b.switch_to(after);
        let c3 = b.gt(n.into(), Operand::imm(10));
        b.br(c3, j1, j2); // first of a correlated pair
        b.switch_to(j1);
        b.jmp(join);
        b.switch_to(j2);
        b.jmp(join);
        b.switch_to(join);
        let c4 = b.gt(n.into(), Operand::imm(10));
        b.br(c4, yes, no); // copies c3: perfectly correlated
        b.switch_to(yes);
        b.ret(Some(Operand::imm(1)));
        b.switch_to(no);
        b.ret(Some(Operand::imm(0)));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    fn trace_of(m: &Module, n: i64) -> Trace {
        Sim::new(m, RunConfig::default())
            .run("main", &[Value::Int(n)])
            .unwrap()
            .trace
    }

    #[test]
    fn selection_beats_profile() {
        let m = rich_module();
        let t = trace_of(&m, 100);
        let sel = select_strategies(&m, &t, 4);
        assert!(sel.total_misses() < sel.profile_misses());
        assert!(sel.improved_branches() >= 1);
        assert!(sel.misprediction_percent() < 5.0);
    }

    #[test]
    fn alternating_branch_gets_loop_machine() {
        let m = rich_module();
        let t = trace_of(&m, 100);
        let sel = select_strategies(&m, &t, 4);
        let alt = sel
            .choices()
            .iter()
            .find(|c| c.site == BranchId(0))
            .unwrap();
        assert_eq!(alt.class, BranchClass::IntraLoop);
        assert!(matches!(alt.chosen, ChosenStrategy::Loop(_)));
        assert_eq!(alt.chosen_misses, 0);
        assert!(alt.profile_misses >= 49);
    }

    #[test]
    fn correlated_branch_gets_path_machine() {
        let m = rich_module();
        // Run on several inputs so the correlated branch is not constant.
        let mut t = Trace::new();
        for n in [5i64, 15, 8, 20, 3, 30, 11, 9] {
            t.extend(trace_of(&m, n).iter());
        }
        let sel = select_strategies(&m, &t, 3);
        let corr = sel
            .choices()
            .iter()
            .find(|c| c.site == BranchId(3))
            .unwrap();
        assert_eq!(corr.class, BranchClass::NonLoop);
        assert!(matches!(corr.chosen, ChosenStrategy::Correlated(_)));
        assert_eq!(corr.chosen_misses, 0, "the copier is fully correlated");
    }

    #[test]
    fn plan_round_trips_through_replication() {
        let m = rich_module();
        let t = trace_of(&m, 100);
        let sel = select_strategies(&m, &t, 4);
        let plan = sel.to_plan();
        assert!(!plan.is_empty());
        let program = crate::replicate::apply_plan(&m, &plan, &t.stats()).unwrap();
        crate::replicate::check_equivalence(&m, &program, "main", &[Value::Int(100)], &[])
            .unwrap();
    }

    /// A loop whose body holds several period-7 branches: independently
    /// each wants a large machine, and the product overflows the cap, so
    /// the §6 joint rebalancing must kick in.
    #[test]
    fn same_loop_machines_are_jointly_rebalanced() {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let head = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let loop_test = b.lt(i.into(), n.into());
        let mut body = b.new_block();
        b.br(loop_test, body, exit);
        for k in 0..4u32 {
            b.switch_to(body);
            let r = b.reg();
            b.rem(r, i.into(), Operand::imm(7));
            let c = b.eq(r.into(), Operand::imm(i64::from(k)));
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            b.br(c, t, e);
            b.switch_to(t);
            b.add(acc, acc.into(), Operand::imm(1));
            b.jmp(j);
            b.switch_to(e);
            b.add(acc, acc.into(), Operand::imm(2));
            b.jmp(j);
            body = j;
        }
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());

        let t = trace_of(&m, 700);
        let sel = select_strategies(&m, &t, 8);
        // All loop-machine products must respect the replication cap.
        let product: usize = sel
            .choices()
            .iter()
            .filter(|c| matches!(c.chosen, ChosenStrategy::Loop(_)))
            .map(|c| c.chosen.states())
            .product();
        assert!(
            product <= crate::replicate::MAX_PRODUCT_STATES,
            "rebalanced product {product} exceeds cap"
        );
        // The rebalanced selection still beats plain profile decisively:
        // period-7 branches are fully predictable with enough states.
        assert!(sel.total_misses() * 2 < sel.profile_misses());
        // And the plan applies without shedding, preserving semantics.
        let plan = sel.to_plan();
        let program = crate::replicate::apply_plan(&m, &plan, &t.stats()).unwrap();
        crate::replicate::check_equivalence(&m, &program, "main", &[Value::Int(700)], &[])
            .unwrap();
    }

    #[test]
    fn more_states_never_hurt() {
        let m = rich_module();
        let t = trace_of(&m, 64);
        let mut prev = u64::MAX;
        for n in 2..=6 {
            let sel = select_strategies(&m, &t, n);
            assert!(sel.total_misses() <= prev);
            prev = sel.total_misses();
        }
    }
}
