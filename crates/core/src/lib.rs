//! # brepl-core — the primary contribution of the paper
//!
//! Implements Krall's technique end to end:
//!
//! 1. **State machines** over branch history patterns
//!    ([`machine::StateMachine`], [`pattern::HistPattern`]);
//! 2. **Searches** for the best machine per branch class: exhaustive
//!    intra-loop search over complete suffix antichains
//!    ([`intra_loop::IntraLoopSearch`]), loop-exit chains and oscillators
//!    ([`loop_exit`]), and greedy correlated-path selection
//!    ([`correlated`]);
//! 3. **Per-branch strategy selection** capped at a state budget
//!    ([`select::select_strategies`], Table 5);
//! 4. **Greedy state addition** under the paper's size model
//!    ([`greedy::greedy_curve`], Figures 6–13);
//! 5. **Code replication**: loop replication with product state spaces and
//!    correlated tail duplication, with semantic-equivalence checking
//!    ([`replicate`]).
//!
//! The full pipeline — profile, select, replicate, re-measure — lives in
//! the root `brepl` crate.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "chaos")]
pub mod chaos;
pub mod correlated;
pub mod engine;
pub mod greedy;
pub mod intra_loop;
pub mod joint;
pub mod loop_exit;
pub mod machine;
pub mod memo;
pub mod pattern;
pub mod replicate;
pub mod respec;
pub mod select;

pub use engine::{par_map, par_map_with, thread_count};
pub use greedy::{greedy_curve, CurvePoint, GreedyCurve};
pub use intra_loop::{IntraLoopSearch, SearchResult};
pub use joint::{allocate_joint_states, BranchCurve, JointAllocation};
pub use machine::{MachineState, StateMachine};
pub use pattern::{HistPattern, ParsePatternError};
pub use replicate::{
    apply_plan, check_equivalence, check_equivalence_outcomes, BranchMachine, ReplicatedProgram,
    ReplicationPlan,
};
pub use respec::{PatchKind, PatchOutcome, PatchRecord, Respec, RespecConfig};
pub use select::{
    select_strategies, select_strategies_classified, select_strategies_estimated,
    select_strategies_with_threads, synthesize_profile_trace, ChosenStrategy, Selection,
    StrategyChoice,
};
