//! Joint state-budget allocation for several branches in one loop — the
//! paper's §6 ("Further Work"):
//!
//! > "A problem of our code replication scheme is that the code size is
//! > multiplied if more than one branch in a loop should be improved. A
//! > possible solution treats all branches of that loop at the same time
//! > and constructs a single state machine for all branches using a higher
//! > number of states. In that case the search for the optimal state
//! > machine must be replaced by a branch-and-bound search since the
//! > search time grows exponentially with the number of states."
//!
//! Our product-state replication already realizes the "single machine for
//! all branches" (the product automaton); what remains is the *search*:
//! given per-branch accuracy curves (mispredictions as a function of that
//! branch's machine size) and a total product budget, choose each branch's
//! size so the product stays within budget and total mispredictions are
//! minimal. The search space is exponential in the number of branches, so
//! we use exactly the branch-and-bound the paper calls for.

use brepl_ir::BranchId;

/// One branch's accuracy curve: `misses[n]` is the misprediction count of
/// its best machine with *exactly* `n + 1` states (`misses[0]` = profile).
/// Curves need not be monotone; the search handles dips and plateaus.
#[derive(Clone, Debug)]
pub struct BranchCurve {
    /// The branch this curve belongs to.
    pub site: BranchId,
    /// Mispredictions by machine size; index 0 is the 1-state (profile)
    /// prediction.
    pub misses: Vec<u64>,
}

impl BranchCurve {
    /// The lowest misprediction on the curve (used for bounding).
    fn best(&self) -> u64 {
        self.misses.iter().copied().min().unwrap_or(0)
    }

    /// Best misprediction among sizes `1..=cap` states.
    fn best_within(&self, cap: usize) -> (usize, u64) {
        self.misses
            .iter()
            .take(cap)
            .copied()
            .enumerate()
            .min_by_key(|&(i, m)| (m, i))
            .map(|(i, m)| (i + 1, m))
            .unwrap_or((1, 0))
    }
}

/// The outcome of a joint allocation: the chosen machine size per branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointAllocation {
    /// `(site, states)` for every input branch, in input order.
    pub states: Vec<(BranchId, usize)>,
    /// Total mispredictions under the allocation.
    pub total_misses: u64,
    /// The product of the chosen sizes (the loop's replication factor).
    pub product: u64,
}

/// Chooses machine sizes for the branches of one loop, minimizing total
/// mispredictions subject to `product(states) <= budget`.
///
/// Branch-and-bound over branches in input order: at each node the bound
/// is the partial cost plus every remaining branch's unconstrained best;
/// a node is pruned when its bound cannot beat the incumbent. The
/// incumbent is seeded greedily (every branch at its best size within the
/// per-branch leftover budget), so pruning bites immediately.
///
/// # Panics
///
/// Panics if `budget == 0` or any curve is empty.
pub fn allocate_joint_states(curves: &[BranchCurve], budget: u64) -> JointAllocation {
    assert!(budget >= 1, "budget must be at least 1");
    for c in curves {
        assert!(!c.misses.is_empty(), "curve for {} is empty", c.site);
    }
    if curves.is_empty() {
        return JointAllocation {
            states: Vec::new(),
            total_misses: 0,
            product: 1,
        };
    }

    // Seed incumbent: greedy left-to-right, each branch taking its best
    // size that still leaves room (>= 1 state) for the rest.
    let mut incumbent_sizes = vec![1usize; curves.len()];
    {
        let mut remaining = budget;
        for (i, c) in curves.iter().enumerate() {
            let cap = remaining.min(c.misses.len() as u64) as usize;
            let (n, _) = c.best_within(cap.max(1));
            incumbent_sizes[i] = n;
            remaining /= n as u64;
            if remaining == 0 {
                remaining = 1;
            }
        }
    }
    let cost_of = |sizes: &[usize]| -> u64 {
        sizes
            .iter()
            .zip(curves)
            .map(|(&n, c)| c.misses[n - 1])
            .sum()
    };
    let mut best_sizes = incumbent_sizes.clone();
    let mut best_cost = cost_of(&incumbent_sizes);

    // Suffix bounds: the unconstrained best cost of branches i.. .
    let mut suffix_best = vec![0u64; curves.len() + 1];
    for i in (0..curves.len()).rev() {
        suffix_best[i] = suffix_best[i + 1] + curves[i].best();
    }

    // Depth-first branch and bound.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        curves: &[BranchCurve],
        suffix_best: &[u64],
        i: usize,
        remaining: u64,
        partial_cost: u64,
        sizes: &mut Vec<usize>,
        best_cost: &mut u64,
        best_sizes: &mut Vec<usize>,
    ) {
        if partial_cost + suffix_best[i] >= *best_cost {
            return; // bound: cannot improve the incumbent
        }
        if i == curves.len() {
            *best_cost = partial_cost;
            best_sizes.clone_from(sizes);
            return;
        }
        let max_n = remaining.min(curves[i].misses.len() as u64) as usize;
        // Try larger sizes first: they tend to reach good incumbents
        // sooner, tightening the bound.
        for n in (1..=max_n.max(1)).rev() {
            sizes.push(n);
            dfs(
                curves,
                suffix_best,
                i + 1,
                (remaining / n as u64).max(1),
                partial_cost + curves[i].misses[n - 1],
                sizes,
                best_cost,
                best_sizes,
            );
            sizes.pop();
        }
    }
    let mut sizes = Vec::with_capacity(curves.len());
    dfs(
        curves,
        &suffix_best,
        0,
        budget,
        0,
        &mut sizes,
        &mut best_cost,
        &mut best_sizes,
    );

    let product = best_sizes.iter().map(|&n| n as u64).product();
    JointAllocation {
        states: curves
            .iter()
            .zip(&best_sizes)
            .map(|(c, &n)| (c.site, n))
            .collect(),
        total_misses: best_cost,
        product,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(site: u32, misses: &[u64]) -> BranchCurve {
        BranchCurve {
            site: BranchId(site),
            misses: misses.to_vec(),
        }
    }

    #[test]
    fn single_branch_takes_best_within_budget() {
        let curves = [curve(0, &[100, 40, 10, 2, 1])];
        let a = allocate_joint_states(&curves, 4);
        assert_eq!(a.states, vec![(BranchId(0), 4)]);
        assert_eq!(a.total_misses, 2);
        let b = allocate_joint_states(&curves, 100);
        assert_eq!(b.states, vec![(BranchId(0), 5)]);
        assert_eq!(b.total_misses, 1);
    }

    #[test]
    fn budget_is_shared_where_it_pays_most() {
        // Branch 0 gains a lot from 2 states; branch 1 needs 4 states to
        // gain anything. Budget 8 fits exactly 2 x 4.
        let curves = [
            curve(0, &[1000, 100, 90, 85]),
            curve(1, &[500, 500, 500, 80]),
        ];
        let a = allocate_joint_states(&curves, 8);
        assert_eq!(a.states, vec![(BranchId(0), 2), (BranchId(1), 4)]);
        assert_eq!(a.total_misses, 180);
        assert_eq!(a.product, 8);
    }

    #[test]
    fn tight_budget_prioritizes_the_bigger_win() {
        // Only one branch can get 2 states under budget 2.
        let curves = [curve(0, &[100, 10]), curve(1, &[100, 60])];
        let a = allocate_joint_states(&curves, 2);
        assert_eq!(a.states, vec![(BranchId(0), 2), (BranchId(1), 1)]);
        assert_eq!(a.total_misses, 110);
    }

    #[test]
    fn exhaustive_agreement_on_random_instances() {
        // Compare against brute force over all size combinations.
        let mut seed = 0x1357_9bdfu64;
        let mut rand = move |bound: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % bound
        };
        for _ in 0..50 {
            let k = 1 + rand(3) as usize;
            let curves: Vec<BranchCurve> = (0..k)
                .map(|i| {
                    let len = 2 + rand(5) as usize;
                    let mut misses: Vec<u64> = (0..len).map(|_| rand(1000)).collect();
                    // Profile entry should be the largest-ish to be realistic,
                    // but the algorithm must not rely on it.
                    misses[0] += 200;
                    curve(i as u32, &misses)
                })
                .collect();
            let budget = 1 + rand(20);
            let got = allocate_joint_states(&curves, budget);

            // Brute force.
            let mut best = u64::MAX;
            let mut stack = vec![Vec::<usize>::new()];
            while let Some(sizes) = stack.pop() {
                if sizes.len() == k {
                    let product: u64 = sizes.iter().map(|&n| n as u64).product();
                    if product <= budget {
                        let cost: u64 = sizes
                            .iter()
                            .zip(&curves)
                            .map(|(&n, c)| c.misses[n - 1])
                            .sum();
                        best = best.min(cost);
                    }
                    continue;
                }
                let i = sizes.len();
                for n in 1..=curves[i].misses.len() {
                    let mut s = sizes.clone();
                    s.push(n);
                    // Prune impossible products early to bound work.
                    let product: u64 = s.iter().map(|&x| x as u64).product();
                    if product <= budget {
                        stack.push(s);
                    }
                }
            }
            assert_eq!(got.total_misses, best, "curves: {curves:?} budget {budget}");
            assert!(got.product <= budget);
        }
    }

    #[test]
    fn empty_input_is_trivial() {
        let a = allocate_joint_states(&[], 4);
        assert_eq!(a.total_misses, 0);
        assert_eq!(a.product, 1);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_rejected() {
        let _ = allocate_joint_states(&[curve(0, &[1])], 0);
    }
}
