//! History pattern strings — the labels of state-machine states.

use std::fmt;

/// A branch-history pattern: up to 16 outcomes with the *newest* outcome in
/// bit 0, exactly like [`brepl_predict::PatternTable`] keys. The paper
/// writes these as strings with the rightmost digit most recent; `Display`
/// follows that convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistPattern {
    bits: u32,
    len: u32,
}

impl HistPattern {
    /// The empty pattern (matches everything).
    pub const EMPTY: HistPattern = HistPattern { bits: 0, len: 0 };

    /// Creates a pattern from `len` low bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 16`.
    pub fn new(bits: u32, len: u32) -> Self {
        assert!(len <= 16, "pattern length exceeds 16");
        let mask = if len == 0 { 0 } else { (1u32 << len) - 1 };
        HistPattern {
            bits: bits & mask,
            len,
        }
    }

    /// Parses the paper's string notation, e.g. `"011"` (rightmost digit
    /// most recent).
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`/`1` or length > 16.
    pub fn parse(s: &str) -> Self {
        let mut bits = 0u32;
        for (i, c) in s.chars().rev().enumerate() {
            match c {
                '0' => {}
                '1' => bits |= 1 << i,
                _ => panic!("invalid pattern character {c:?}"),
            }
        }
        HistPattern::new(bits, s.len() as u32)
    }

    /// The raw bits (newest outcome in bit 0).
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of outcomes recorded.
    pub fn len(self) -> u32 {
        self.len
    }

    /// True for the empty pattern.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The newest outcome, if any.
    pub fn newest(self) -> Option<bool> {
        if self.len == 0 {
            None
        } else {
            Some(self.bits & 1 == 1)
        }
    }

    /// Appends a new outcome (shifting older outcomes up), truncating to
    /// `max_len` outcomes.
    pub fn append(self, taken: bool, max_len: u32) -> HistPattern {
        let bits = self.bits << 1 | u32::from(taken);
        let len = (self.len + 1).min(max_len);
        HistPattern::new(bits, len)
    }

    /// Extends the pattern with an *older* outcome at the far end —
    /// the refinement step that splits a state in two.
    pub fn prepend_older(self, taken: bool) -> HistPattern {
        HistPattern::new(self.bits | u32::from(taken) << self.len, self.len + 1)
    }

    /// True if `self` is a suffix of `other` — i.e. every history matching
    /// `other` also matches `self` (`self` records the same most recent
    /// outcomes, and fewer of them).
    pub fn is_suffix_of(self, other: HistPattern) -> bool {
        if self.len > other.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            (1u32 << self.len) - 1
        };
        other.bits & mask == self.bits
    }

    /// True if a concrete history value (of `hist_len >= self.len()` bits)
    /// matches this pattern.
    pub fn matches(self, history: u32, hist_len: u32) -> bool {
        debug_assert!(hist_len >= self.len);
        let _ = hist_len;
        let mask = if self.len == 0 {
            0
        } else {
            (1u32 << self.len) - 1
        };
        history & mask == self.bits
    }
}

impl fmt::Debug for HistPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for HistPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in (0..self.len).rev() {
            write!(f, "{}", self.bits >> i & 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "01", "011", "1101", "000000000"] {
            assert_eq!(HistPattern::parse(s).to_string(), s);
        }
        assert_eq!(HistPattern::EMPTY.to_string(), "ε");
    }

    #[test]
    fn newest_is_rightmost() {
        assert_eq!(HistPattern::parse("01").newest(), Some(true));
        assert_eq!(HistPattern::parse("10").newest(), Some(false));
        assert_eq!(HistPattern::EMPTY.newest(), None);
    }

    #[test]
    fn append_shifts_and_truncates() {
        let p = HistPattern::parse("011");
        assert_eq!(p.append(false, 4).to_string(), "0110");
        assert_eq!(p.append(true, 3).to_string(), "111");
    }

    #[test]
    fn prepend_older_refines() {
        let p = HistPattern::parse("1");
        assert_eq!(p.prepend_older(false).to_string(), "01");
        assert_eq!(p.prepend_older(true).to_string(), "11");
    }

    #[test]
    fn suffix_relation() {
        let one = HistPattern::parse("1");
        let zero_one = HistPattern::parse("01");
        let one_one = HistPattern::parse("11");
        assert!(one.is_suffix_of(zero_one));
        assert!(one.is_suffix_of(one_one));
        assert!(!zero_one.is_suffix_of(one_one));
        assert!(!zero_one.is_suffix_of(one));
        assert!(HistPattern::EMPTY.is_suffix_of(one));
        assert!(one.is_suffix_of(one));
    }

    #[test]
    fn matches_concrete_history() {
        let p = HistPattern::parse("01");
        assert!(p.matches(0b101, 3));
        assert!(!p.matches(0b111, 3));
        assert!(HistPattern::EMPTY.matches(0b111, 3));
    }

    #[test]
    #[should_panic(expected = "invalid pattern character")]
    fn bad_parse_panics() {
        let _ = HistPattern::parse("0x1");
    }
}
