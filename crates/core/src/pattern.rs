//! History pattern strings — the labels of state-machine states.

use std::fmt;
use std::str::FromStr;

/// Error parsing a [`HistPattern`] from its string notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParsePatternError {
    /// A character other than `0` or `1` at the given byte index.
    InvalidChar {
        /// Byte offset of the offending character.
        index: usize,
        /// The character found.
        found: char,
    },
    /// The string encodes more than 16 outcomes.
    TooLong {
        /// Number of characters supplied.
        len: usize,
    },
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePatternError::InvalidChar { index, found } => {
                write!(f, "invalid pattern character {found:?} at index {index}")
            }
            ParsePatternError::TooLong { len } => {
                write!(f, "pattern length {len} exceeds 16 outcomes")
            }
        }
    }
}

impl std::error::Error for ParsePatternError {}

/// A branch-history pattern: up to 16 outcomes with the *newest* outcome in
/// bit 0, exactly like [`brepl_predict::PatternTable`] keys. The paper
/// writes these as strings with the rightmost digit most recent; `Display`
/// follows that convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistPattern {
    bits: u32,
    len: u32,
}

impl HistPattern {
    /// The empty pattern (matches everything).
    pub const EMPTY: HistPattern = HistPattern { bits: 0, len: 0 };

    /// Creates a pattern from `len` low bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 16`.
    pub fn new(bits: u32, len: u32) -> Self {
        assert!(len <= 16, "pattern length exceeds 16");
        let mask = if len == 0 { 0 } else { (1u32 << len) - 1 };
        HistPattern {
            bits: bits & mask,
            len,
        }
    }

    /// Parses the paper's string notation, e.g. `"011"` (rightmost digit
    /// most recent). Also available through [`FromStr`] (`s.parse()`).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePatternError`] on characters other than `0`/`1` or
    /// on more than 16 outcomes — malformed caller input never aborts the
    /// process.
    pub fn parse(s: &str) -> Result<Self, ParsePatternError> {
        let n = s.chars().count();
        if n > 16 {
            return Err(ParsePatternError::TooLong { len: n });
        }
        let mut bits = 0u32;
        for (i, (idx, c)) in s.char_indices().rev().enumerate() {
            match c {
                '0' => {}
                '1' => bits |= 1 << i,
                _ => {
                    return Err(ParsePatternError::InvalidChar {
                        index: idx,
                        found: c,
                    })
                }
            }
        }
        Ok(HistPattern::new(bits, n as u32))
    }

    /// The raw bits (newest outcome in bit 0).
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of outcomes recorded.
    pub fn len(self) -> u32 {
        self.len
    }

    /// True for the empty pattern.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The newest outcome, if any.
    pub fn newest(self) -> Option<bool> {
        if self.len == 0 {
            None
        } else {
            Some(self.bits & 1 == 1)
        }
    }

    /// Appends a new outcome (shifting older outcomes up), truncating to
    /// `max_len` outcomes.
    pub fn append(self, taken: bool, max_len: u32) -> HistPattern {
        let bits = self.bits << 1 | u32::from(taken);
        let len = (self.len + 1).min(max_len);
        HistPattern::new(bits, len)
    }

    /// Extends the pattern with an *older* outcome at the far end —
    /// the refinement step that splits a state in two.
    pub fn prepend_older(self, taken: bool) -> HistPattern {
        HistPattern::new(self.bits | u32::from(taken) << self.len, self.len + 1)
    }

    /// True if `self` is a suffix of `other` — i.e. every history matching
    /// `other` also matches `self` (`self` records the same most recent
    /// outcomes, and fewer of them).
    pub fn is_suffix_of(self, other: HistPattern) -> bool {
        if self.len > other.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            (1u32 << self.len) - 1
        };
        other.bits & mask == self.bits
    }

    /// True if a concrete history value (of `hist_len >= self.len()` bits)
    /// matches this pattern.
    pub fn matches(self, history: u32, hist_len: u32) -> bool {
        debug_assert!(hist_len >= self.len);
        let _ = hist_len;
        let mask = if self.len == 0 {
            0
        } else {
            (1u32 << self.len) - 1
        };
        history & mask == self.bits
    }
}

impl FromStr for HistPattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HistPattern::parse(s)
    }
}

impl fmt::Debug for HistPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for HistPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in (0..self.len).rev() {
            write!(f, "{}", self.bits >> i & 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "01", "011", "1101", "000000000"] {
            assert_eq!(HistPattern::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(HistPattern::EMPTY.to_string(), "ε");
    }

    #[test]
    fn newest_is_rightmost() {
        assert_eq!(HistPattern::parse("01").unwrap().newest(), Some(true));
        assert_eq!(HistPattern::parse("10").unwrap().newest(), Some(false));
        assert_eq!(HistPattern::EMPTY.newest(), None);
    }

    #[test]
    fn append_shifts_and_truncates() {
        let p = HistPattern::parse("011").unwrap();
        assert_eq!(p.append(false, 4).to_string(), "0110");
        assert_eq!(p.append(true, 3).to_string(), "111");
    }

    #[test]
    fn prepend_older_refines() {
        let p = HistPattern::parse("1").unwrap();
        assert_eq!(p.prepend_older(false).to_string(), "01");
        assert_eq!(p.prepend_older(true).to_string(), "11");
    }

    #[test]
    fn suffix_relation() {
        let one = HistPattern::parse("1").unwrap();
        let zero_one = HistPattern::parse("01").unwrap();
        let one_one = HistPattern::parse("11").unwrap();
        assert!(one.is_suffix_of(zero_one));
        assert!(one.is_suffix_of(one_one));
        assert!(!zero_one.is_suffix_of(one_one));
        assert!(!zero_one.is_suffix_of(one));
        assert!(HistPattern::EMPTY.is_suffix_of(one));
        assert!(one.is_suffix_of(one));
    }

    #[test]
    fn matches_concrete_history() {
        let p = HistPattern::parse("01").unwrap();
        assert!(p.matches(0b101, 3));
        assert!(!p.matches(0b111, 3));
        assert!(HistPattern::EMPTY.matches(0b111, 3));
    }

    #[test]
    fn bad_characters_are_errors_not_panics() {
        assert_eq!(
            HistPattern::parse("0x1"),
            Err(ParsePatternError::InvalidChar {
                index: 1,
                found: 'x'
            })
        );
        let e = HistPattern::parse("01☃").unwrap_err();
        assert!(matches!(
            e,
            ParsePatternError::InvalidChar { found: '☃', .. }
        ));
        assert!(e.to_string().contains("invalid pattern character"));
    }

    #[test]
    fn overlong_patterns_are_errors_not_panics() {
        let s = "01".repeat(9); // 18 outcomes
        assert_eq!(
            HistPattern::parse(&s),
            Err(ParsePatternError::TooLong { len: 18 })
        );
        // 16 outcomes is the documented maximum and still fine.
        assert!(HistPattern::parse(&"10".repeat(8)).is_ok());
    }

    #[test]
    fn from_str_round_trips() {
        let p: HistPattern = "0110".parse().unwrap();
        assert_eq!(p.to_string(), "0110");
        assert!("2".parse::<HistPattern>().is_err());
    }
}
