//! Correlated-branch state machines (§4.3 of the paper).
//!
//! Unlike loop machines, the states of a correlated machine are
//! independent: each state is a *path* — a short sequence of earlier branch
//! decisions leading to the branch — plus one catch-all state for
//! executions matching no selected path. The machine is "the set of those
//! paths which give the lowest misprediction rate", with at most
//! `n - 1` paths for an `n`-state machine and path length below `n`
//! ("we used a maximum path length of n for an n state machine to keep the
//! size of the replicated code small").

use std::collections::HashMap;

use brepl_cfg::PathStep;
use brepl_ir::BranchId;
use brepl_trace::{SiteCounts, Trace};

/// A correlated-branch machine: selected decision paths with per-path
/// predictions plus a catch-all prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrelatedMachine {
    /// Selected paths (execution order within each path) and the direction
    /// predicted when the path matches. Longest path wins on overlap.
    pub paths: Vec<(Vec<PathStep>, bool)>,
    /// Prediction when no selected path matches.
    pub catch_all: bool,
}

impl CorrelatedMachine {
    /// Number of machine states (paths + the catch-all).
    pub fn states(&self) -> usize {
        self.paths.len() + 1
    }

    /// Predicts the branch direction given the most recent branch events
    /// (oldest first). The longest matching path wins.
    pub fn predict(&self, recent: &[(BranchId, bool)]) -> bool {
        let mut best: Option<(usize, bool)> = None;
        for (path, predict) in &self.paths {
            if path_matches(path, recent) {
                match best {
                    Some((len, _)) if len >= path.len() => {}
                    _ => best = Some((path.len(), *predict)),
                }
            }
        }
        best.map_or(self.catch_all, |(_, p)| p)
    }
}

fn path_matches(path: &[PathStep], recent: &[(BranchId, bool)]) -> bool {
    if path.len() > recent.len() {
        return false;
    }
    let tail = &recent[recent.len() - path.len()..];
    path.iter()
        .zip(tail)
        .all(|(step, &(site, taken))| step.site == site && step.taken == taken)
}

/// Per-site profile of path outcomes: for every candidate path, the branch
/// outcome counts over executions whose longest matching candidate was that
/// path, plus the catch-all bucket.
#[derive(Clone, Debug)]
pub struct PathProfile {
    /// Candidate paths (deduplicated, any order).
    candidates: Vec<Vec<PathStep>>,
    /// `chain[g]` lists candidate indices that are suffixes of candidate
    /// `g` (including `g` itself), longest first — when a selected set does
    /// not contain the longest match, counts fall through this chain.
    chain: Vec<Vec<usize>>,
    /// Outcome counts grouped by longest matching candidate.
    group_counts: Vec<SiteCounts>,
    /// Outcomes matching no candidate.
    unmatched: SiteCounts,
    total: u64,
}

/// The result of building a correlated machine: the machine plus its
/// profiled accuracy.
#[derive(Clone, Debug)]
pub struct CorrelatedResult {
    /// The machine.
    pub machine: CorrelatedMachine,
    /// Correct predictions on the profiling trace.
    pub correct: u64,
    /// Total profiled executions of the branch.
    pub total: u64,
}

impl CorrelatedResult {
    /// Mispredictions on the profiling trace.
    pub fn mispredictions(&self) -> u64 {
        self.total - self.correct
    }
}

/// Builds [`PathProfile`]s for a set of branches in one trace pass.
///
/// `candidates_by_site` maps each branch of interest to its candidate
/// decision paths (usually from
/// [`brepl_cfg::PredecessorPaths::enumerate`]); empty paths are ignored
/// (they denote "no decision", which the catch-all covers).
pub fn profile_paths(
    trace: &Trace,
    candidates_by_site: &HashMap<BranchId, Vec<Vec<PathStep>>>,
) -> HashMap<BranchId, PathProfile> {
    let mut sites: Vec<BranchId> = Vec::with_capacity(candidates_by_site.len());
    let mut profiles: Vec<PathProfile> = Vec::with_capacity(candidates_by_site.len());
    let mut max_len = 0usize;
    for (&site, cands) in candidates_by_site {
        let candidates: Vec<Vec<PathStep>> = {
            // Suffix-closure: every non-empty suffix of a candidate is a
            // candidate too. Path enumeration caps its output on dense
            // CFGs; without the closure a deeper enumeration could *lose*
            // the short paths a shallow one found, making more states
            // perform worse than fewer.
            let mut c: Vec<Vec<PathStep>> = Vec::new();
            for p in cands {
                for start in 0..p.len() {
                    c.push(p[start..].to_vec());
                }
            }
            c.retain(|p| !p.is_empty());
            c.sort();
            c.dedup();
            c
        };
        max_len = max_len.max(candidates.iter().map(Vec::len).max().unwrap_or(0));
        let chain = suffix_chains(&candidates);
        let n = candidates.len();
        sites.push(site);
        profiles.push(PathProfile {
            candidates,
            chain,
            group_counts: vec![SiteCounts::default(); n],
            unmatched: SiteCounts::default(),
            total: 0,
        });
    }

    // Dense site -> profile index, so the per-event dispatch below is an
    // array load rather than a hash lookup.
    let n_sites = sites.iter().map(|s| s.index() + 1).max().unwrap_or(0);
    let mut of_site: Vec<Option<usize>> = vec![None; n_sites];
    for (i, site) in sites.iter().enumerate() {
        of_site[site.index()] = Some(i);
    }

    // One reversed-path trie per profile: the longest-match scan walks the
    // recent events newest-first through the trie, and the deepest terminal
    // seen is the longest matching candidate (candidates are deduplicated,
    // so two matches cannot share a length). This replaces the per-event
    // scan over every candidate.
    let tries: Vec<PathTrie> = profiles
        .iter()
        .map(|p| PathTrie::build(&p.candidates))
        .collect();

    // Ring buffer of the most recent events (packed as
    // `site << 1 | taken`, the trace's own encoding): `count` valid
    // entries, the next write landing at `next`. Replaces a front-popped
    // Vec — same logical window, no per-event memmove. The capacity is
    // rounded up to a power of two so the wrap is a mask, not a divide;
    // the trie is at most `max_len` deep, so the walk below can never
    // observe the extra slots.
    let cap = max_len.max(1).next_power_of_two();
    let mask = cap - 1;
    let mut ring: Vec<u32> = vec![0; cap];
    let mut count = 0usize;
    let mut next = 0usize;
    for &packed in trace.packed() {
        let site = BranchId(packed >> 1);
        let taken = packed & 1 == 1;
        if let Some(i) = of_site.get(site.index()).copied().flatten() {
            let profile = &mut profiles[i];
            let trie = &tries[i];
            profile.total += 1;
            let mut best: Option<usize> = None;
            let mut node = 0usize;
            for age in 0..count {
                let key = ring[(next + cap - 1 - age) & mask];
                match trie.edges[node].iter().find(|&&(k, _)| k == key) {
                    Some(&(_, child)) => {
                        node = child;
                        if let Some(gi) = trie.terminal[node] {
                            best = Some(gi);
                        }
                    }
                    None => break,
                }
            }
            let bucket = match best {
                Some(gi) => &mut profile.group_counts[gi],
                None => &mut profile.unmatched,
            };
            if taken {
                bucket.taken += 1;
            } else {
                bucket.not_taken += 1;
            }
        }
        if max_len > 0 {
            ring[next] = packed;
            next = (next + 1) & mask;
            count = (count + 1).min(cap);
        }
    }
    sites.into_iter().zip(profiles).collect()
}

/// A trie over candidate paths keyed newest-event-first: the edge out of
/// the root consumes the most recent event, deeper edges consume older
/// ones. Node 0 is the root; `terminal[n]` holds the candidate index whose
/// reversed path ends at node `n`.
struct PathTrie {
    edges: Vec<Vec<(u32, usize)>>,
    terminal: Vec<Option<usize>>,
}

impl PathTrie {
    fn build(candidates: &[Vec<PathStep>]) -> Self {
        let mut trie = PathTrie {
            edges: vec![Vec::new()],
            terminal: vec![None],
        };
        for (gi, path) in candidates.iter().enumerate() {
            let mut node = 0usize;
            for step in path.iter().rev() {
                let key = (step.site.index() as u32) << 1 | u32::from(step.taken);
                node = match trie.edges[node].iter().find(|&&(k, _)| k == key) {
                    Some(&(_, child)) => child,
                    None => {
                        let child = trie.edges.len();
                        trie.edges[node].push((key, child));
                        trie.edges.push(Vec::new());
                        trie.terminal.push(None);
                        child
                    }
                };
            }
            trie.terminal[node] = Some(gi);
        }
        trie
    }
}

fn is_path_suffix(shorter: &[PathStep], longer: &[PathStep]) -> bool {
    shorter.len() <= longer.len() && longer[longer.len() - shorter.len()..] == *shorter
}

fn suffix_chains(candidates: &[Vec<PathStep>]) -> Vec<Vec<usize>> {
    candidates
        .iter()
        .map(|g| {
            let mut chain: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| is_path_suffix(c, g))
                .map(|(i, _)| i)
                .collect();
            chain.sort_by_key(|&i| std::cmp::Reverse(candidates[i].len()));
            chain
        })
        .collect()
}

impl PathProfile {
    /// Total profiled executions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mispredictions of a given selected path set.
    fn mispredictions_of(&self, selected: &[bool]) -> u64 {
        let mut per_target: Vec<SiteCounts> = vec![SiteCounts::default(); self.candidates.len()];
        let mut catch = self.unmatched;
        for (g, counts) in self.group_counts.iter().enumerate() {
            if counts.total() == 0 {
                continue;
            }
            match self.chain[g].iter().find(|&&i| selected[i]) {
                Some(&i) => {
                    per_target[i].taken += counts.taken;
                    per_target[i].not_taken += counts.not_taken;
                }
                None => {
                    catch.taken += counts.taken;
                    catch.not_taken += counts.not_taken;
                }
            }
        }
        per_target
            .iter()
            .map(SiteCounts::minority_count)
            .sum::<u64>()
            + catch.minority_count()
    }

    /// Greedily selects at most `max_states - 1` paths (one state is the
    /// catch-all) minimizing mispredictions, and returns the resulting
    /// machine with predictions filled in.
    ///
    /// # Panics
    ///
    /// Panics if `max_states == 0`.
    pub fn select(&self, max_states: usize) -> CorrelatedResult {
        self.select_with_threshold(max_states, 1)
    }

    /// Like [`PathProfile::select`], but a path is only added when it
    /// removes at least `min_gain` mispredictions. With hundreds of
    /// candidate paths and few executions, an unthresholded selection can
    /// shatter the executions into pure singleton groups — perfect on the
    /// profiling run and useless after replication; the threshold is the
    /// standard guard against that overfitting.
    ///
    /// # Panics
    ///
    /// Panics if `max_states == 0` or `min_gain == 0`.
    pub fn select_with_threshold(&self, max_states: usize, min_gain: u64) -> CorrelatedResult {
        assert!(max_states >= 1, "need at least the catch-all state");
        assert!(min_gain >= 1, "min_gain must be positive");
        let n = self.candidates.len();
        let mut selected = vec![false; n];
        let mut current = self.mispredictions_of(&selected);
        for _ in 1..max_states {
            let mut best: Option<(usize, u64)> = None;
            for i in 0..n {
                if selected[i] {
                    continue;
                }
                selected[i] = true;
                let w = self.mispredictions_of(&selected);
                selected[i] = false;
                if w + min_gain <= current {
                    match best {
                        Some((_, bw)) if bw <= w => {}
                        _ => best = Some((i, w)),
                    }
                }
            }
            let Some((i, w)) = best else { break };
            selected[i] = true;
            current = w;
        }

        // Final predictions: recompute routed counts.
        let mut per_target: Vec<SiteCounts> = vec![SiteCounts::default(); n];
        let mut catch = self.unmatched;
        for (g, counts) in self.group_counts.iter().enumerate() {
            match self.chain[g].iter().find(|&&i| selected[i]) {
                Some(&i) => {
                    per_target[i].taken += counts.taken;
                    per_target[i].not_taken += counts.not_taken;
                }
                None => {
                    catch.taken += counts.taken;
                    catch.not_taken += counts.not_taken;
                }
            }
        }
        let paths: Vec<(Vec<PathStep>, bool)> = (0..n)
            .filter(|&i| selected[i])
            .map(|i| {
                let c = per_target[i];
                let predict = if c.total() == 0 { true } else { c.majority() };
                (self.candidates[i].clone(), predict)
            })
            .collect();
        let machine = CorrelatedMachine {
            paths,
            catch_all: if catch.total() == 0 {
                true
            } else {
                catch.majority()
            },
        };
        CorrelatedResult {
            machine,
            correct: self.total - current,
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_trace::TraceEvent;

    fn step(site: u32, taken: bool) -> PathStep {
        PathStep {
            site: BranchId(site),
            taken,
        }
    }

    fn ev(site: u32, taken: bool) -> TraceEvent {
        TraceEvent {
            site: BranchId(site),
            taken,
        }
    }

    /// Branch 1 copies branch 0's decision; candidates are the two length-1
    /// paths through branch 0.
    fn correlated_trace() -> (Trace, HashMap<BranchId, Vec<Vec<PathStep>>>) {
        let mut t = Trace::new();
        let mut x = 3u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let d = x >> 40 & 1 == 1;
            t.push(ev(0, d));
            t.push(ev(1, d));
        }
        let mut cands = HashMap::new();
        cands.insert(BranchId(1), vec![vec![step(0, true)], vec![step(0, false)]]);
        (t, cands)
    }

    #[test]
    fn two_paths_predict_copier_perfectly() {
        let (t, cands) = correlated_trace();
        let profiles = profile_paths(&t, &cands);
        let p = &profiles[&BranchId(1)];
        assert_eq!(p.total(), 2000);
        let result = p.select(3);
        assert_eq!(result.mispredictions(), 0);
        // One explicit path plus the catch-all suffices: the catch-all
        // purely holds the other path's executions, so greedy stops early.
        assert!(result.machine.states() <= 3);
        // The machine predicts by recent events.
        assert!(result.machine.predict(&[(BranchId(0), true)]));
        assert!(!result.machine.predict(&[(BranchId(0), false)]));
    }

    #[test]
    fn catch_all_only_equals_profile() {
        let (t, cands) = correlated_trace();
        let profiles = profile_paths(&t, &cands);
        let result = profiles[&BranchId(1)].select(1);
        // One state: plain profile prediction for the branch.
        let stats = t.stats();
        let c = stats.site(BranchId(1));
        assert_eq!(result.mispredictions(), c.minority_count());
        assert_eq!(result.machine.states(), 1);
    }

    #[test]
    fn two_states_capture_the_dominant_path() {
        let (t, cands) = correlated_trace();
        let profiles = profile_paths(&t, &cands);
        let one_path = profiles[&BranchId(1)].select(2);
        // Selecting either path resolves the corresponding half exactly;
        // catch-all handles the other half as its majority.
        assert!(one_path.mispredictions() < 2000 / 2);
        assert_eq!(one_path.machine.paths.len(), 1);
    }

    #[test]
    fn longer_paths_win_over_shorter() {
        // Branch 2 computes XOR of branches 0 and 1: no single path (and no
        // length-1 path at all) can make it predictable; the four length-2
        // paths resolve it exactly.
        let mut t = Trace::new();
        let mut x = 9u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let a = x >> 20 & 1 == 1;
            let b = x >> 21 & 1 == 1;
            t.push(ev(0, a));
            t.push(ev(1, b));
            t.push(ev(2, a ^ b));
        }
        let mut cands = HashMap::new();
        cands.insert(
            BranchId(2),
            vec![
                vec![step(1, true)],
                vec![step(1, false)],
                vec![step(0, true), step(1, true)],
                vec![step(0, false), step(1, true)],
                vec![step(0, true), step(1, false)],
                vec![step(0, false), step(1, false)],
            ],
        );
        let profiles = profile_paths(&t, &cands);
        let five = profiles[&BranchId(2)].select(5);
        assert_eq!(five.mispredictions(), 0, "full length-2 path set is exact");
        let two = profiles[&BranchId(2)].select(2);
        assert!(two.mispredictions() > 0, "XOR defeats a single path");
        assert!(two.mispredictions() < 3000 / 2);
    }

    #[test]
    fn path_matching_is_suffix_anchored() {
        let m = CorrelatedMachine {
            paths: vec![(vec![step(0, true), step(1, false)], false)],
            catch_all: true,
        };
        // Exact suffix matches.
        assert!(!m.predict(&[(BranchId(0), true), (BranchId(1), false)]));
        // Longer context still matches the suffix.
        assert!(!m.predict(&[
            (BranchId(5), true),
            (BranchId(0), true),
            (BranchId(1), false)
        ]));
        // Wrong order or direction falls to catch-all.
        assert!(m.predict(&[(BranchId(1), false), (BranchId(0), true)]));
        assert!(m.predict(&[(BranchId(0), true), (BranchId(1), true)]));
        assert!(m.predict(&[]));
    }

    #[test]
    fn more_states_never_increase_mispredictions() {
        let (t, cands) = correlated_trace();
        let profiles = profile_paths(&t, &cands);
        let p = &profiles[&BranchId(1)];
        let mut prev = u64::MAX;
        for n in 1..=4 {
            let r = p.select(n);
            assert!(r.mispredictions() <= prev);
            prev = r.mispredictions();
        }
    }
}
