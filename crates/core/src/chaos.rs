//! Deterministic fault injection (feature `chaos`).
//!
//! Test-harness machinery for proving the pipeline's degradation paths:
//! each [`ChaosPoint`] names one way a replication artifact can be
//! corrupted — a machine table entry, a replica edge, a witness chain, a
//! shipped prediction, or the profiling trace — and a [`ChaosEngine`]
//! applies exactly one such fault per pipeline run, at a victim site
//! chosen by an xorshift-seeded RNG. Every injection is replayable from
//! `(seed, point)` alone.
//!
//! Injections are **verified**: a candidate mutation is kept only if the
//! real gate (the translation validator or the history checker) actually
//! flags it; ineffective candidates are reverted and the next one tried,
//! in a deterministic seed-rotated order. This guarantees a recorded
//! [`Injection`] corresponds to a fault the pipeline *must* react to —
//! either by quarantining the victim site (default mode) or by aborting
//! with a typed error (strict mode) — never to a silent no-op.
//!
//! Never enable this feature in production builds; it exists so the
//! quarantine machinery in `brepl::pipeline` is exercised end-to-end
//! instead of trusted on faith.

use brepl_analysis::{
    check_history, validate_replication, AnalysisDiag, HistorySpec, Severity, TableState,
};
use brepl_ir::{BlockId, BranchId, FuncId, Module, Term};
use brepl_trace::{Trace, TraceError};

use crate::replicate::ReplicatedProgram;

/// A named fault-injection point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChaosPoint {
    /// Corrupt an entry of the victim's machine transition table in the
    /// [`HistorySpec`] handed to the history checker (or fabricate a
    /// table for a site the spec does not cover).
    CorruptMachineTable,
    /// Swap the taken/not-taken targets of one replica copy of the
    /// victim's branch in the replicated module.
    RetargetReplicaEdge,
    /// Corrupt the witness origin chain of a replica block descending
    /// from the victim's branch (duplicate its head, truncate it, or
    /// clear it outright).
    DropWitnessChain,
    /// Flip the shipped static prediction of a machine-pinned replica of
    /// the victim's branch.
    FlipPinnedPrediction,
    /// Truncate the serialized profiling trace mid-event so it no longer
    /// decodes.
    TruncateTrace,
    /// Flip one trace event at a branch the static classifier proved
    /// monostatic, so the profile contradicts the proof (`BR013`). When
    /// the module has no proved-and-executed site, falls back to the
    /// [`ChaosPoint::TruncateTrace`] corruption so the point still fires
    /// on every workload.
    ForgeTraceEvent,
    /// Perturb the exact bias estimate of one executed site in the
    /// [`brepl_analysis::StaticProfile`] the drift gate judges, so the
    /// honest measured trace contradicts the stored estimate (`BR019`).
    /// The trace, module, witness and machine tables are all untouched —
    /// `BR001`–`BR018` must stay blind; only the estimate drift gate can
    /// catch it. When the module has no exact-and-executed estimate,
    /// falls back to the [`ChaosPoint::TruncateTrace`] corruption so the
    /// point still fires on every workload.
    ForgeStaticProfile,
    /// Swap an observed segment's input distribution mid-trace at a
    /// deterministic boundary (the segment midpoint), by flipping the
    /// victim site's outcomes from that boundary on. Targets the
    /// re-specialization layer: the forged drift provokes a patch the
    /// *next* honest segment must fail to verify, forcing a rollback and
    /// `BR023` — while `BR001`–`BR022` stay blind (the module, witness,
    /// tables and planning trace are all honest). In the plain
    /// (non-adaptive) pipeline this point falls back to the
    /// [`ChaosPoint::TruncateTrace`] corruption so the chaos matrix still
    /// fires on every workload.
    InjectDrift,
    /// Flip a committed re-specialization patch's pinned direction
    /// *after* the BR001–BR012 re-proof accepted it — the gate is honest,
    /// the shipped bits are not. Only the respec verification window can
    /// catch this (measured misprediction fails to improve → rollback +
    /// `BR023`). In the plain pipeline this point falls back to the
    /// [`ChaosPoint::TruncateTrace`] corruption so the chaos matrix still
    /// fires on every workload.
    CorruptPatch,
}

impl ChaosPoint {
    /// Every injection point, in a stable order.
    pub const ALL: [ChaosPoint; 9] = [
        ChaosPoint::CorruptMachineTable,
        ChaosPoint::RetargetReplicaEdge,
        ChaosPoint::DropWitnessChain,
        ChaosPoint::FlipPinnedPrediction,
        ChaosPoint::TruncateTrace,
        ChaosPoint::ForgeTraceEvent,
        ChaosPoint::ForgeStaticProfile,
        ChaosPoint::InjectDrift,
        ChaosPoint::CorruptPatch,
    ];

    /// Stable kebab-case name (CLI flags, JSON output).
    pub fn name(self) -> &'static str {
        match self {
            ChaosPoint::CorruptMachineTable => "corrupt-machine-table",
            ChaosPoint::RetargetReplicaEdge => "retarget-replica-edge",
            ChaosPoint::DropWitnessChain => "drop-witness-chain",
            ChaosPoint::FlipPinnedPrediction => "flip-pinned-prediction",
            ChaosPoint::TruncateTrace => "truncate-trace",
            ChaosPoint::ForgeTraceEvent => "forge-trace-event",
            ChaosPoint::ForgeStaticProfile => "forge-static-profile",
            ChaosPoint::InjectDrift => "inject-drift",
            ChaosPoint::CorruptPatch => "corrupt-patch",
        }
    }

    /// Parses [`Self::name`] back; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<ChaosPoint> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for ChaosPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which fault to inject and the seed making the run replayable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seeds victim choice and all candidate ordering.
    pub seed: u64,
    /// The single injection point activated for the run.
    pub point: ChaosPoint,
}

/// The xorshift64* generator used everywhere in this crate's test
/// tooling: cheap, deterministic, and good enough for fault placement.
#[derive(Clone, Debug)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator; the OR keeps the state non-zero.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed | 0x1234_5678)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish index below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A fault that was actually injected (and verified effective).
#[derive(Clone, Debug)]
pub struct Injection {
    /// The activated point.
    pub point: ChaosPoint,
    /// The original-module branch site the fault targets — the site the
    /// pipeline is expected to quarantine.
    pub victim: BranchId,
    /// Human-readable account of the exact mutation, for logs and JSON.
    pub description: String,
}

/// Per-pipeline-run injection state: pins one victim, fires at most one
/// fault, and remembers what it did.
#[derive(Debug)]
pub struct ChaosEngine {
    config: ChaosConfig,
    rng: ChaosRng,
    victim: Option<BranchId>,
    injection: Option<Injection>,
}

impl ChaosEngine {
    /// A fresh engine for one pipeline run.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosEngine {
            rng: ChaosRng::new(config.seed),
            config,
            victim: None,
            injection: None,
        }
    }

    /// The configured injection point.
    pub fn point(&self) -> ChaosPoint {
        self.config.point
    }

    /// The pinned victim site, once [`Self::pin_victim`] has run.
    pub fn victim(&self) -> Option<BranchId> {
        self.victim
    }

    /// The fault injected so far, if any.
    pub fn injection(&self) -> Option<&Injection> {
        self.injection.as_ref()
    }

    /// Consumes the engine, yielding the recorded injection.
    pub fn into_injection(self) -> Option<Injection> {
        self.injection
    }

    /// Pins the victim site on first call (seed-chosen from `candidates`,
    /// which must be in a deterministic order); later calls return the
    /// pinned site unchanged.
    pub fn pin_victim(&mut self, candidates: &[BranchId]) -> Option<BranchId> {
        if self.victim.is_none() && !candidates.is_empty() {
            self.victim = Some(candidates[self.rng.below(candidates.len())]);
        }
        self.victim
    }

    fn record(&mut self, victim: BranchId, description: String) {
        self.injection = Some(Injection {
            point: self.config.point,
            victim,
            description,
        });
    }

    /// [`ChaosPoint::TruncateTrace`]: serializes `trace`, cuts the byte
    /// stream mid-event, and returns the decode error the cut produces.
    /// Returns `None` when this point is not active or already fired.
    pub fn corrupt_trace(&mut self, trace: &Trace) -> Option<TraceError> {
        // ForgeTraceEvent and ForgeStaticProfile reach here only as
        // their documented fallback, after the forge found no candidate
        // to contradict. InjectDrift and CorruptPatch land here whenever
        // the run is not adaptive (no re-specialization layer to attack).
        if !matches!(
            self.config.point,
            ChaosPoint::TruncateTrace
                | ChaosPoint::ForgeTraceEvent
                | ChaosPoint::ForgeStaticProfile
                | ChaosPoint::InjectDrift
                | ChaosPoint::CorruptPatch
        ) || self.injection.is_some()
            || trace.is_empty()
        {
            return None;
        }
        let victim = self.victim?;
        let bytes = trace.to_bytes();
        // Cut past the 5-byte header so the failure is a mid-stream
        // truncation, not a missing magic; rotate deterministically until
        // a cut actually breaks decoding (any proper prefix should).
        let lo = 6.min(bytes.len() - 1);
        let span = bytes.len() - lo;
        let start = self.rng.below(span);
        for k in 0..span {
            let cut = lo + (start + k) % span;
            if let Err(e) = Trace::from_bytes(&bytes[..cut]) {
                self.record(
                    victim,
                    format!(
                        "truncated serialized trace at byte {cut}/{}: decode fails with {e:?}",
                        bytes.len()
                    ),
                );
                return Some(e);
            }
        }
        None
    }

    /// [`ChaosPoint::ForgeTraceEvent`]: flips one event of `trace` at a
    /// site the classifier proved monostatic (`proved` is the
    /// `(site, direction)` list from `classify_module`), pinning that
    /// site as the victim. The flipped event contradicts the proof by
    /// construction, so the profile-vs-proof gate (`BR013`) *must* fire —
    /// the injection is effective without a separate verification pass.
    ///
    /// Returns the forged trace (the input is never mutated), or `None`
    /// when the point is inactive, already fired, or no proved site has
    /// any event — in which case the pipeline falls back to
    /// [`Self::corrupt_trace`].
    pub fn forge_trace(&mut self, trace: &Trace, proved: &[(BranchId, bool)]) -> Option<Trace> {
        if self.config.point != ChaosPoint::ForgeTraceEvent || self.injection.is_some() {
            return None;
        }
        // Events that currently agree with a proof: flipping one creates
        // an impossible direction.
        let cands: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, ev)| proved.iter().any(|&(s, d)| s == ev.site && d == ev.taken))
            .map(|(i, _)| i)
            .collect();
        if cands.is_empty() {
            return None;
        }
        let at = cands[self.rng.below(cands.len())];
        let mut forged = Trace::with_capacity(trace.len());
        let mut victim = None;
        for (i, mut ev) in trace.iter().enumerate() {
            if i == at {
                ev.taken = !ev.taken;
                victim = Some(ev.site);
            }
            forged.push(ev);
        }
        let victim = victim?;
        self.victim = Some(victim);
        self.record(
            victim,
            format!(
                "flipped trace event {at}/{} at proved-monostatic site {victim}",
                trace.len()
            ),
        );
        Some(forged)
    }

    /// [`ChaosPoint::ForgeStaticProfile`]: overwrites the exact bias
    /// estimate of one *executed* site in `profile` with a rational the
    /// measured counts cannot satisfy, pinning that site as the victim.
    /// The forged rational is chosen so the contradiction holds for any
    /// event count (`taken > 0` vs `0/1`, `taken == 0` vs `1/1`), so the
    /// estimate drift gate (`BR019`) *must* fire — the injection is
    /// effective without a separate verification pass. Nothing else is
    /// touched: the trace, module, witness and machine tables all stay
    /// honest, so `BR001`–`BR018` stay blind.
    ///
    /// Returns `false` when the point is inactive, already fired, or no
    /// site has both an exact estimate and trace events — in which case
    /// the pipeline falls back to [`Self::corrupt_trace`].
    pub fn forge_static_profile(
        &mut self,
        profile: &mut brepl_analysis::StaticProfile,
        stats: &brepl_trace::TraceStats,
    ) -> bool {
        use brepl_analysis::BiasEstimate;
        if self.config.point != ChaosPoint::ForgeStaticProfile || self.injection.is_some() {
            return false;
        }
        let cands: Vec<usize> = profile
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.bias.is_exact() && stats.site(s.site).total() > 0)
            .map(|(i, _)| i)
            .collect();
        if cands.is_empty() {
            return false;
        }
        let at = cands[self.rng.below(cands.len())];
        let entry = &mut profile.sites[at];
        let old = entry.bias;
        let taken = stats.site(entry.site).taken;
        entry.bias = if taken > 0 {
            BiasEstimate::Exact { num: 0, den: 1 }
        } else {
            BiasEstimate::Exact { num: 1, den: 1 }
        };
        let victim = entry.site;
        self.victim = Some(victim);
        self.record(
            victim,
            format!(
                "overwrote site {victim}'s exact estimate {old:?} with {:?} against {taken} measured takens",
                profile.sites[at].bias
            ),
        );
        true
    }

    /// [`ChaosPoint::InjectDrift`]: forges an observed segment so the
    /// victim site's outcomes flip from one quarter into its event stream
    /// — early enough that the whole-segment majority flips too, so the
    /// detector both fires *and* proposes a patch. `patchable` lists the original
    /// sites the re-specialization layer may patch (deterministic order);
    /// `provenance` maps replica sites back to original sites, exactly as
    /// the respec fold does. The forged drift provokes a spurious patch
    /// the next *honest* segment must fail to verify, forcing a rollback
    /// and `BR023` — module, witness, tables and planning trace all stay
    /// honest, so `BR001`–`BR022` stay blind.
    ///
    /// Returns the forged trace (the input is never mutated), or `None`
    /// when the point is inactive, already fired, or no patchable site
    /// has at least two events in the segment — in which case the
    /// adaptive driver leaves the segment honest.
    pub fn inject_drift(
        &mut self,
        seg: &Trace,
        patchable: &[BranchId],
        provenance: &[BranchId],
    ) -> Option<Trace> {
        if self.config.point != ChaosPoint::InjectDrift || self.injection.is_some() {
            return None;
        }
        let orig_of = |site: BranchId| provenance.get(site.index()).copied().unwrap_or(site);
        // A site needs events on both sides of the boundary for the flip
        // to read as a mid-segment distribution shift.
        let cands: Vec<BranchId> = patchable
            .iter()
            .copied()
            .filter(|&s| seg.iter().filter(|ev| orig_of(ev.site) == s).count() >= 2)
            .collect();
        let victim = self.pin_victim(&cands)?;
        let total = seg.iter().filter(|ev| orig_of(ev.site) == victim).count();
        let mut forged = Trace::with_capacity(seg.len());
        let mut nth = 0usize;
        let mut flipped = 0usize;
        for mut ev in seg.iter() {
            if orig_of(ev.site) == victim {
                if nth >= total / 4 {
                    ev.taken = !ev.taken;
                    flipped += 1;
                }
                nth += 1;
            }
            forged.push(ev);
        }
        self.record(
            victim,
            format!(
                "flipped {flipped}/{total} observed outcomes of site {victim} from one quarter \
                 into the segment onward (forged input-distribution shift)"
            ),
        );
        Some(forged)
    }

    /// [`ChaosPoint::CorruptPatch`]: flips the pinned direction of the
    /// victim site's plain (non-machine-pinned) replicas in `program`,
    /// to be called *after* the BR001–BR012 re-proof accepted a patch on
    /// `site` — the gate ran on honest bits, the shipped bits lie. Only
    /// the respec verification window can catch this: measured
    /// misprediction fails to improve, the transaction rolls back to the
    /// byte-identical pre-patch snapshot, and `BR023` fires.
    ///
    /// Returns `false` when the point is inactive, already fired, or the
    /// site has no plain-pinned replica (a re-inflated machine site only
    /// carries witness-checked machine pins, which this point refuses to
    /// touch — flipping one would wake `BR006`).
    pub fn corrupt_patch(&mut self, program: &mut ReplicatedProgram, site: BranchId) -> bool {
        if self.config.point != ChaosPoint::CorruptPatch || self.injection.is_some() {
            return false;
        }
        let mut plain: Vec<(BranchId, bool)> = Vec::new();
        for (fid, f) in program.module.iter_functions() {
            let fmap = &program.replica_map.functions[fid.index()];
            for (bid, block) in f.iter_blocks() {
                if let Some(ns) = block.term.branch_site() {
                    if fmap.machine_predictions[bid.index()].is_none()
                        && program.provenance.get(ns.index()) == Some(&site)
                    {
                        plain.push((ns, program.predictions.get(ns)));
                    }
                }
            }
        }
        if plain.is_empty() {
            return false;
        }
        for &(ns, dir) in &plain {
            program.predictions.set(ns, !dir);
        }
        self.victim = Some(site);
        self.record(
            site,
            format!(
                "flipped the committed patch's pinned direction on {} plain replica(s) of site \
                 {site} after the re-proof accepted it",
                plain.len()
            ),
        );
        true
    }

    /// Program-level injections ([`ChaosPoint::FlipPinnedPrediction`],
    /// [`ChaosPoint::RetargetReplicaEdge`],
    /// [`ChaosPoint::DropWitnessChain`]): mutates `program` in place and
    /// returns whether a verified-effective fault was injected.
    pub fn corrupt_program(&mut self, original: &Module, program: &mut ReplicatedProgram) -> bool {
        if self.injection.is_some() {
            return false;
        }
        let Some(victim) = self.victim else {
            return false;
        };
        match self.config.point {
            ChaosPoint::FlipPinnedPrediction => self.flip_pinned(victim, program),
            ChaosPoint::RetargetReplicaEdge => self.retarget_edge(victim, original, program),
            ChaosPoint::DropWitnessChain => self.drop_chain(victim, original, program),
            _ => false,
        }
    }

    fn flip_pinned(&mut self, victim: BranchId, program: &mut ReplicatedProgram) -> bool {
        // Replica copies of the victim's branch that carry a machine pin:
        // flipping the shipped prediction of one contradicts the witness
        // (BR006) unconditionally.
        let mut pinned: Vec<(BranchId, bool)> = Vec::new();
        for (fid, f) in program.module.iter_functions() {
            let fmap = &program.replica_map.functions[fid.index()];
            for (bid, block) in f.iter_blocks() {
                if let (Some(dir), Some(ns)) = (
                    fmap.machine_predictions[bid.index()],
                    block.term.branch_site(),
                ) {
                    if program.provenance.get(ns.index()) == Some(&victim) {
                        pinned.push((ns, dir));
                    }
                }
            }
        }
        if pinned.is_empty() {
            return false;
        }
        let (ns, dir) = pinned[self.rng.below(pinned.len())];
        program.predictions.set(ns, !dir);
        self.record(
            victim,
            format!(
                "flipped shipped prediction of replica site {ns} (victim {victim}) from {dir} to {}",
                !dir
            ),
        );
        true
    }

    fn retarget_edge(
        &mut self,
        victim: BranchId,
        original: &Module,
        program: &mut ReplicatedProgram,
    ) -> bool {
        // Replica copies of the victim's branch; swapping a copy's edge
        // targets breaks the edge projection (BR004) — verified below.
        let mut cands: Vec<(FuncId, BlockId)> = Vec::new();
        for (fid, f) in program.module.iter_functions() {
            for (bid, block) in f.iter_blocks() {
                if let Some(ns) = block.term.branch_site() {
                    if program.provenance.get(ns.index()) == Some(&victim) {
                        cands.push((fid, bid));
                    }
                }
            }
        }
        if cands.is_empty() {
            return false;
        }
        let start = self.rng.below(cands.len());
        for k in 0..cands.len() {
            let (fid, bid) = cands[(start + k) % cands.len()];
            swap_branch_targets(&mut program.module, fid, bid);
            let diags = validate_replication(
                original,
                &program.module,
                &program.replica_map,
                &program.predictions,
            );
            if has_error_at(&diags, victim) {
                self.record(
                    victim,
                    format!(
                        "swapped branch targets of replica block {fid}:{bid} (victim {victim})"
                    ),
                );
                return true;
            }
            swap_branch_targets(&mut program.module, fid, bid); // revert: benign
        }
        false
    }

    fn drop_chain(
        &mut self,
        victim: BranchId,
        original: &Module,
        program: &mut ReplicatedProgram,
    ) -> bool {
        // Replica blocks whose witness chain ends at the victim's branch
        // block: corrupting the chain breaks the simulation relation the
        // validator re-checks (BR004/BR005/BR008) — verified below.
        let mut cands: Vec<(FuncId, BlockId)> = Vec::new();
        for (fid, f) in program.module.iter_functions() {
            let ofunc = original.function(fid);
            let fmap = &program.replica_map.functions[fid.index()];
            for (bid, _) in f.iter_blocks() {
                let site = fmap.origins[bid.index()]
                    .last()
                    .and_then(|&o| ofunc.block(o).term.branch_site());
                if site == Some(victim) {
                    cands.push((fid, bid));
                }
            }
        }
        if cands.is_empty() {
            return false;
        }
        let start = self.rng.below(cands.len());
        for k in 0..cands.len() {
            let (fid, bid) = cands[(start + k) % cands.len()];
            for kind in ["duplicate-head", "truncate-to-head", "clear"] {
                let chain = &mut program.replica_map.functions[fid.index()].origins[bid.index()];
                let saved = chain.clone();
                match kind {
                    "duplicate-head" => chain.insert(0, saved[0]),
                    "truncate-to-head" if saved.len() > 1 => chain.truncate(1),
                    "truncate-to-head" => continue,
                    _ => chain.clear(),
                }
                let diags = validate_replication(
                    original,
                    &program.module,
                    &program.replica_map,
                    &program.predictions,
                );
                // A cleared chain is a shape error (BR008) the validator
                // cannot attribute to a site; any error counts for it.
                let effective = if kind == "clear" {
                    has_any_error(&diags)
                } else {
                    has_error_at(&diags, victim)
                };
                if effective {
                    self.record(
                        victim,
                        format!(
                            "{kind} on witness chain of replica block {fid}:{bid} (victim {victim})"
                        ),
                    );
                    return true;
                }
                program.replica_map.functions[fid.index()].origins[bid.index()] = saved;
            }
        }
        false
    }

    /// [`ChaosPoint::CorruptMachineTable`]: mutates the victim's
    /// transition table in `spec` (or fabricates one if the spec does not
    /// cover the victim), verified effective against the history checker.
    pub fn corrupt_spec(&mut self, program: &ReplicatedProgram, spec: &mut HistorySpec) -> bool {
        if self.config.point != ChaosPoint::CorruptMachineTable || self.injection.is_some() {
            return false;
        }
        let Some(victim) = self.victim else {
            return false;
        };
        let verify = |spec: &HistorySpec| {
            let diags = check_history(
                &program.module,
                &program.provenance,
                spec,
                &program.predictions,
            );
            has_error_at(&diags, victim)
        };
        if let Some(table) = spec.machines.get(&victim).cloned() {
            let n = table.states.len();
            let start = self.rng.below(n.max(1));
            for k in 0..n {
                let state = (start + k) % n;
                for kind in ["flip-predict", "swap-successors"] {
                    let mut mutated = table.clone();
                    match kind {
                        "flip-predict" => {
                            mutated.states[state].predict = !mutated.states[state].predict;
                        }
                        _ => {
                            let s = &mut mutated.states[state];
                            std::mem::swap(&mut s.on_taken, &mut s.on_not_taken);
                        }
                    }
                    if mutated == table {
                        continue;
                    }
                    spec.machines.insert(victim, mutated);
                    if verify(spec) {
                        self.record(
                            victim,
                            format!("{kind} on state {state} of site {victim}'s machine table"),
                        );
                        return true;
                    }
                    spec.machines.insert(victim, table.clone());
                }
            }
            false
        } else {
            // The victim's machine is not in the spec (correlated-path
            // machines have no loop table): fabricate an alternating
            // 2-state table the code cannot possibly implement.
            let bogus = brepl_analysis::MachineTable {
                states: vec![
                    TableState {
                        predict: true,
                        on_taken: 1,
                        on_not_taken: 0,
                    },
                    TableState {
                        predict: false,
                        on_taken: 0,
                        on_not_taken: 1,
                    },
                ],
                initial: 0,
            };
            spec.machines.insert(victim, bogus);
            if verify(spec) {
                self.record(
                    victim,
                    format!("fabricated a bogus 2-state table for uncovered site {victim}"),
                );
                true
            } else {
                spec.machines.remove(&victim);
                false
            }
        }
    }
}

fn swap_branch_targets(module: &mut Module, fid: FuncId, bid: BlockId) {
    if let Term::Br { then_, else_, .. } = &mut module.function_mut(fid).blocks[bid.index()].term {
        std::mem::swap(then_, else_);
    }
}

fn has_error_at(diags: &[AnalysisDiag], victim: BranchId) -> bool {
    diags
        .iter()
        .any(|d| d.severity() == Severity::Error && d.site == Some(victim))
}

fn has_any_error(diags: &[AnalysisDiag]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_names_round_trip() {
        for p in ChaosPoint::ALL {
            assert_eq!(ChaosPoint::parse(p.name()), Some(p));
        }
        assert_eq!(ChaosPoint::parse("no-such-point"), None);
    }

    #[test]
    fn rng_is_deterministic_and_nonzero_seeded() {
        let a: Vec<u64> = {
            let mut r = ChaosRng::new(0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaosRng::new(0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn victim_is_pinned_once() {
        let mut e = ChaosEngine::new(ChaosConfig {
            seed: 7,
            point: ChaosPoint::FlipPinnedPrediction,
        });
        let cands: Vec<BranchId> = (0..5).map(BranchId).collect();
        let first = e.pin_victim(&cands).unwrap();
        // Later calls (even with different candidates) keep the pin.
        assert_eq!(e.pin_victim(&cands[..1]), Some(first));
        assert_eq!(e.victim(), Some(first));
    }

    #[test]
    fn truncated_trace_fails_to_decode() {
        use brepl_trace::TraceEvent;
        let mut t = Trace::new();
        for i in 0..100u32 {
            t.push(TraceEvent {
                site: BranchId(i % 7),
                taken: i % 3 == 0,
            });
        }
        let mut e = ChaosEngine::new(ChaosConfig {
            seed: 42,
            point: ChaosPoint::TruncateTrace,
        });
        e.pin_victim(&[BranchId(0)]);
        let err = e.corrupt_trace(&t).expect("a cut must break decoding");
        let _ = err; // typed error, not a panic
        assert!(e.injection().is_some());
        // Second call is a no-op: one fault per run.
        assert!(e.corrupt_trace(&t).is_none());
    }
}
