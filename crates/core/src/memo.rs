//! Process-wide memo for per-branch machine searches.
//!
//! The state-machine search is a pure function of `(branch class, pattern
//! table, outcome stream, state budget)` — and across a pipeline run the
//! same table is searched many times: the 2..=10-state sweeps of `table5`
//! re-analyze identical tables at repeated budgets, `ablation` re-runs the
//! pipeline on the same workloads row after row, `crossdata` trains twice
//! per program, and many branches inside one program have bit-identical
//! profiles (always-taken guards, shared loop latches). Keying the search
//! result on a canonical fingerprint of its inputs makes every repeat a
//! hash lookup.
//!
//! Two granularities are cached:
//!
//! * the **per-branch** loop-machine search, keyed on the branch's table
//!   and outcome-stream fingerprints ([`lookup_or_compute`]); and
//! * the **whole-module** strategy selection, keyed on canonical module
//!   and trace fingerprints ([`lookup_or_compute_selection`]) — the
//!   pipeline re-selects over the exact `(module, trace, budget)` triple
//!   that a standalone `select` stage already solved, so benches and
//!   multi-stage drivers pay for selection once per distinct input.
//!
//! Determinism: the cached value for a key is exactly what the search
//! would recompute, so cache hits cannot change results — only wall-clock.
//! The map is guarded by a [`Mutex`] and shared by all engine workers.
//! Lock poisoning is deliberately ignored (`PoisonError::into_inner`): the
//! map is only ever mutated by complete, panic-free operations (`get`,
//! `insert`, `clear`), so a worker that panicked while *holding* the lock
//! cannot have left a torn entry behind, and a panic propagated out of
//! [`crate::engine::par_map`] must not brick every later search.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use brepl_cfg::BranchClass;

use crate::machine::StateMachine;
use crate::select::Selection;

/// One entry per machine size: the best machine of exactly that size and
/// its simulated mispredictions (indices 0 and 1 stay `None`).
pub type SizeMenu = Vec<Option<(StateMachine, u64)>>;

/// The memoized outcome of the loop-machine search for one branch.
#[derive(Clone, Debug)]
pub struct LoopSearchOutcome {
    /// The winning machine and its simulated misses, when one beats the
    /// profile baseline it was searched against.
    pub best: Option<(StateMachine, u64)>,
    /// Best machine per exact state count, for joint §6 rebalancing.
    pub menu: SizeMenu,
}

/// Memo key: branch class, canonical table fingerprint, outcome-stream
/// fingerprint, and the state budget of the search.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct MemoKey {
    class: BranchClass,
    table_fp: (u64, u64),
    outcomes_fp: (u64, u64),
    max_states: usize,
}

/// Entry cap: a full-suite `BREPL_SCALE=full` sweep stays far below this;
/// the cap only guards against pathological long-running processes.
const MAX_ENTRIES: usize = 1 << 16;

/// `BREPL_NO_MEMO=1` disables caching (read once per process). An A/B
/// knob for measuring what the memo buys; results are identical either
/// way, only wall-clock differs.
fn disabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| std::env::var_os("BREPL_NO_MEMO").is_some_and(|v| v == "1"))
}

/// Memo key for a whole-module selection: canonical module fingerprint,
/// trace fingerprint, and the state budget. The worker-thread count is
/// deliberately absent — `select_strategies_with_threads` is bit-identical
/// for every thread count, so one cached value serves them all.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct SelectionKey {
    module_fp: (u64, u64),
    trace_fp: (u64, u64),
    max_states: usize,
}

/// Whole-selection entry cap. Selections are per-(module, trace, budget),
/// so even sweep-heavy drivers create a few hundred entries at most; the
/// cap guards long-lived processes cycling through unbounded inputs.
const MAX_SELECTION_ENTRIES: usize = 1 << 10;

struct Memo {
    map: Mutex<HashMap<MemoKey, Arc<LoopSearchOutcome>>>,
    hits: Mutex<u64>,
    selections: Mutex<HashMap<SelectionKey, Arc<Selection>>>,
    selection_hits: Mutex<u64>,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| Memo {
        map: Mutex::new(HashMap::new()),
        hits: Mutex::new(0),
        selections: Mutex::new(HashMap::new()),
        selection_hits: Mutex::new(0),
    })
}

/// Canonical 128-bit fingerprint of a branch's outcome stream.
pub fn fingerprint_outcomes(outcomes: &[bool]) -> (u64, u64) {
    let mut a = 0xcbf2_9ce4_8422_2325u64;
    let mut b = 0x6c62_272e_07bb_0142u64;
    let mut mix = |x: u64| {
        a = (a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
        b = (b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
    };
    mix(outcomes.len() as u64);
    // Pack 64 outcomes per word before mixing.
    for chunk in outcomes.chunks(64) {
        let mut word = 0u64;
        for (i, &taken) in chunk.iter().enumerate() {
            word |= u64::from(taken) << i;
        }
        mix(word);
    }
    (a, b)
}

/// [`fingerprint_outcomes`] computed straight from a packed stream's words.
///
/// `PackedStream` stores outcomes LSB-first with the tail word zero-padded —
/// exactly the packing `fingerprint_outcomes` builds before mixing — so the
/// words can be mixed verbatim and the two functions agree on every stream.
pub fn fingerprint_packed(stream: &brepl_trace::PackedStream) -> (u64, u64) {
    let mut a = 0xcbf2_9ce4_8422_2325u64;
    let mut b = 0x6c62_272e_07bb_0142u64;
    let mut mix = |x: u64| {
        a = (a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
        b = (b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
    };
    mix(stream.len() as u64);
    for &word in stream.words() {
        mix(word);
    }
    (a, b)
}

/// Looks up a search outcome, computing and caching it on a miss.
///
/// `compute` must be a pure function of the fingerprinted inputs: the
/// memo returns the cached value verbatim on a repeat key.
pub fn lookup_or_compute(
    class: BranchClass,
    table_fp: (u64, u64),
    outcomes_fp: (u64, u64),
    max_states: usize,
    compute: impl FnOnce() -> LoopSearchOutcome,
) -> Arc<LoopSearchOutcome> {
    if disabled() {
        return Arc::new(compute());
    }
    let key = MemoKey {
        class,
        table_fp,
        outcomes_fp,
        max_states,
    };
    let m = memo();
    if let Some(hit) = m
        .map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
        .cloned()
    {
        *m.hits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        return hit;
    }
    let value = Arc::new(compute());
    let mut map = m
        .map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Two workers may race to compute the same key; both computed the same
    // value, so first-insert-wins keeps a single canonical Arc.
    if let Some(existing) = map.get(&key) {
        return existing.clone();
    }
    if map.len() < MAX_ENTRIES {
        map.insert(key, value.clone());
    }
    value
}

/// Looks up a whole-module selection, computing and caching it on a miss.
///
/// Keyed on `(module fingerprint, trace fingerprint, max_states)`; see
/// [`crate::select::select_strategies_with_threads`], the only caller.
/// `compute` must be the selection search itself — the memo returns the
/// cached [`Selection`] verbatim on a repeat key, which is exactly what
/// the search would recompute because selection is a pure function of the
/// fingerprinted inputs.
pub fn lookup_or_compute_selection(
    module_fp: (u64, u64),
    trace_fp: (u64, u64),
    max_states: usize,
    compute: impl FnOnce() -> Selection,
) -> Arc<Selection> {
    if disabled() {
        return Arc::new(compute());
    }
    let key = SelectionKey {
        module_fp,
        trace_fp,
        max_states,
    };
    let m = memo();
    if let Some(hit) = m
        .selections
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
        .cloned()
    {
        *m.selection_hits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        return hit;
    }
    let value = Arc::new(compute());
    let mut map = m
        .selections
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = map.get(&key) {
        return existing.clone();
    }
    if map.len() < MAX_SELECTION_ENTRIES {
        map.insert(key, value.clone());
    }
    value
}

/// `(entries, hits)` for the whole-selection memo — observability for
/// tests and the bench harness.
pub fn selection_stats() -> (usize, u64) {
    let m = memo();
    let entries = m
        .selections
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len();
    let hits = *m
        .selection_hits
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (entries, hits)
}

/// `(entries, hits)` — observability for tests and the bench harness.
pub fn stats() -> (usize, u64) {
    let m = memo();
    let entries = m
        .map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len();
    let hits = *m
        .hits
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (entries, hits)
}

/// Empties both memo tiers (tests; long-lived servers switching
/// workloads).
pub fn clear() {
    let m = memo();
    m.map
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    *m.hits
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = 0;
    m.selections
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    *m.selection_hits
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_fingerprint_discriminates() {
        let a: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..200).map(|i| i % 2 == 1).collect();
        let c: Vec<bool> = (0..201).map(|i| i % 2 == 0).collect();
        assert_eq!(fingerprint_outcomes(&a), fingerprint_outcomes(&a));
        assert_ne!(fingerprint_outcomes(&a), fingerprint_outcomes(&b));
        assert_ne!(fingerprint_outcomes(&a), fingerprint_outcomes(&c));
        assert_ne!(fingerprint_outcomes(&[]), fingerprint_outcomes(&[false]));
    }

    #[test]
    fn packed_fingerprint_matches_scalar() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for n in [0usize, 1, 7, 63, 64, 65, 127, 128, 129, 1000] {
            let dirs: Vec<bool> = (0..n)
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1
                })
                .collect();
            let packed: brepl_trace::PackedStream = dirs.iter().copied().collect();
            assert_eq!(
                fingerprint_packed(&packed),
                fingerprint_outcomes(&dirs),
                "n = {n}"
            );
        }
    }

    #[test]
    fn second_lookup_hits() {
        let fp = fingerprint_outcomes(&[true, false, true, true]);
        let table_fp = (0xdead_beef, 0xfeed_face);
        let mut computed = 0;
        for _ in 0..3 {
            let out = lookup_or_compute(BranchClass::IntraLoop, table_fp, fp, 4, || {
                computed += 1;
                LoopSearchOutcome {
                    best: None,
                    menu: vec![None; 5],
                }
            });
            assert!(out.best.is_none());
        }
        assert_eq!(computed, 1, "repeat keys must not recompute");
    }
}
