//! Loop-exit branch state machines (§4.2 of the paper).
//!
//! A loop-exit branch is taken while the loop keeps iterating and not taken
//! once when the loop exits (or vice versa; we normalize below). The
//! machine has one *initial* state representing "the loop exited last time"
//! (pattern `0`) and a chain of states counting iterations since then
//! (patterns `01`, `011`, `0111`, …), ending in a tail state. Two tail
//! shapes exist:
//!
//! * **Chain** (Figure 5's main spine): the last state `1…1` self-loops
//!   while iterations continue.
//! * **Oscillating tail**: the two longest states alternate on taken, which
//!   predicts loops with a strong even/odd iteration-count bias — "if a
//!   loop has a high probability of an even or odd number of iterations,
//!   the loop would change between the two states with the longest history
//!   information".
//!
//! Exit branches whose *taken* direction leaves the loop are handled by
//! scoring against the complemented outcome stream.

use brepl_predict::{PatternTable, SuffixAggregate};
use brepl_trace::PackedStream;

use crate::intra_loop::SearchResult;
use crate::machine::{simulate_packed_many, MachineState, StateMachine};
use crate::pattern::HistPattern;

/// Builds the plain chain machine with `n >= 2` states:
/// `{0, 01, 011, …, 01^(n-2), 1^(n-1)}`, with longest-suffix transitions
/// (which make the final all-ones state self-loop on taken).
///
/// Predictions come from the pattern table's suffix counts.
///
/// # Panics
///
/// Panics unless `2 <= n <= 10`.
pub fn exit_chain(n: usize, table: &PatternTable) -> StateMachine {
    exit_chain_with(n, &table.suffix_aggregate(table_bits(table)))
}

/// [`exit_chain`] against a precomputed suffix aggregate — identical
/// machine, no per-state table scans.
fn exit_chain_with(n: usize, agg: &SuffixAggregate<'_>) -> StateMachine {
    assert!((2..=10).contains(&n), "chain length must be in 2..=10");
    let mut patterns = Vec::with_capacity(n);
    patterns.push(HistPattern::parse("0").unwrap());
    for ones in 1..n - 1 {
        // 0 followed by `ones` ones: bits = (1 << ones) - 1, len = ones + 1.
        patterns.push(HistPattern::new((1 << ones) - 1, ones as u32 + 1));
    }
    // Tail: all ones of length n-1.
    patterns.push(HistPattern::new((1 << (n - 1)) - 1, n as u32 - 1));
    StateMachine::from_patterns_with(&patterns, agg)
        .expect("chain pattern sets always derive valid machines")
}

/// Builds the oscillating-tail variant: like [`exit_chain`] but the two
/// longest states alternate on taken, capturing even/odd iteration counts.
/// Requires `n >= 3` so two tail states exist.
///
/// Predictions for the two tail states are taken from the suffix counts of
/// `x·1^(n-2)` patterns split by one *older* bit, which is where the parity
/// signal lives in the pattern table.
///
/// # Panics
///
/// Panics unless `3 <= n <= 10`.
pub fn exit_oscillator(n: usize, table: &PatternTable) -> StateMachine {
    exit_oscillator_with(n, &table.suffix_aggregate(table_bits(table)))
}

/// [`exit_oscillator`] against a precomputed suffix aggregate — identical
/// machine, no per-state table scans.
fn exit_oscillator_with(n: usize, agg: &SuffixAggregate<'_>) -> StateMachine {
    assert!((3..=10).contains(&n), "oscillator needs 3..=10 states");
    // Spine: 0, 01, 011, ..., 01^(n-3); tails A = 01^(n-2), B = 11^(n-2).
    let mut states: Vec<MachineState> = Vec::with_capacity(n);
    let spine_len = n - 2;
    let predict_for = |p: HistPattern| -> bool {
        let c = agg.counts(p.bits(), p.len());
        if c.total() == 0 {
            true
        } else {
            c.majority()
        }
    };
    for i in 0..spine_len {
        // Pattern 0 followed by i ones.
        let p = HistPattern::new((1u32 << i) - 1, i as u32 + 1);
        states.push(MachineState {
            pattern: p,
            predict: predict_for(p),
            on_taken: i + 1, // next spine state or tail A
            on_not_taken: 0,
        });
    }
    let ones = n - 2;
    let tail_a = HistPattern::new((1 << ones) - 1, ones as u32 + 1); // 01^(n-2)
    let tail_b = HistPattern::new((1 << (ones + 1)) - 1, ones as u32 + 1); // 11^(n-2)
    let a_idx = spine_len;
    let b_idx = spine_len + 1;
    states.push(MachineState {
        pattern: tail_a,
        predict: predict_for(tail_a),
        on_taken: b_idx,
        on_not_taken: 0,
    });
    states.push(MachineState {
        pattern: tail_b,
        predict: predict_for(tail_b),
        on_taken: a_idx,
        on_not_taken: 0,
    });
    StateMachine::from_states(states, 0)
}

/// Scores both loop-exit shapes against a site's outcome stream — in both
/// polarities — and returns the best. `outcomes` must be the branch's
/// directions in trace order; `table` the site's local-history pattern
/// table.
///
/// Loop-exit machines assume "taken = keep iterating". Branches whose
/// *taken* direction exits the loop are handled by building the chain on
/// the complemented outcome stream and then complementing the machine back
/// ([`StateMachine::complemented`]), so the returned machine always runs on
/// real outcomes.
pub fn best_exit_machine(n: usize, table: &PatternTable, outcomes: &PackedStream) -> SearchResult {
    exit_machine_menu(n, table, outcomes)
        .pop()
        .expect("at least one candidate machine exists")
}

/// [`best_exit_machine`] for every budget `2..=max` in one shared pass:
/// index `n - 2` of the result is the best machine under budget `n`.
///
/// The budgets nest — budget `n`'s candidate list is budget `n - 1`'s plus
/// the size-`n` shapes — so one inverted stream, one inverted table and one
/// simulation per shape serve every budget. Selection pipelines ask for the
/// whole per-size menu anyway (§6 joint rebalancing), which previously
/// rebuilt all of that per budget. Candidate order and the keep-first
/// tie-break are preserved exactly, so each entry is bit-identical to the
/// standalone [`best_exit_machine`] call at that budget.
pub fn exit_machine_menu(
    max: usize,
    table: &PatternTable,
    outcomes: &PackedStream,
) -> Vec<SearchResult> {
    assert!((2..=10).contains(&max), "budget must be in 2..=10");
    let total = outcomes.len() as u64;
    let bits = table_bits(table);
    // The inverted-polarity table is a complement-swap of the original
    // (plus a warmup correction) — no second walk over the stream.
    let warmup: Vec<bool> = outcomes.iter().take(bits as usize).collect();
    let inverted_table = table.complement_single_site(bits, &warmup);
    let agg = table.suffix_aggregate(bits);
    let inv_agg = inverted_table.suffix_aggregate(bits);

    // All chain lengths up to the budget: a longer chain is not always
    // better under true simulation (the machine's state can diverge from
    // the history partition), so the search is over sizes 2..=max. Every
    // budget's candidates are gathered first (in the same order the
    // per-budget loop scored them), then simulated together in one packed
    // pass over the stream.
    let mut candidates: Vec<StateMachine> = Vec::with_capacity(4 * (max - 1));
    let mut budget_sizes = Vec::with_capacity(max - 1);
    for k in 2..=max {
        candidates.push(exit_chain_with(k, &agg));
        candidates.push(exit_chain_with(k, &inv_agg).complemented());
        if k >= 3 {
            candidates.push(exit_oscillator_with(k, &agg));
            candidates.push(exit_oscillator_with(k, &inv_agg).complemented());
        }
        budget_sizes.push(if k >= 3 { 4 } else { 2 });
    }
    let scores = simulate_packed_many(&candidates, outcomes);

    let mut best: Option<SearchResult> = None;
    let mut menu = Vec::with_capacity(max - 1);
    let mut idx = 0;
    for size in budget_sizes {
        for _ in 0..size {
            let (correct, _) = scores[idx];
            match &best {
                Some(b) if b.correct >= correct => {}
                _ => {
                    best = Some(SearchResult {
                        machine: candidates[idx].clone(),
                        correct,
                        total,
                    })
                }
            }
            idx += 1;
        }
        menu.push(best.clone().expect("at least one candidate machine exists"));
    }
    menu
}

/// The history length used when rebuilding tables for the inverted
/// polarity. Pattern tables do not expose their history length, so exit
/// machines rebuild at the paper's 9 bits — more than any chain needs.
fn table_bits(_table: &PatternTable) -> u32 {
    9
}

/// Helper for tests and diagnostics: the profile (1-state) baseline on an
/// outcome stream.
pub fn profile_correct(outcomes: &PackedStream) -> u64 {
    let taken = outcomes.count_taken();
    taken.max(outcomes.len() as u64 - taken)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::BranchId;
    use brepl_predict::{HistoryKind, PatternTableSet};
    use brepl_trace::{Trace, TraceEvent};

    fn table_for(dirs: &[bool]) -> PatternTableSet {
        let t: Trace = dirs
            .iter()
            .map(|&taken| TraceEvent {
                site: BranchId(0),
                taken,
            })
            .collect();
        PatternTableSet::build(&t, HistoryKind::Local, 9)
    }

    fn packed(dirs: &[bool]) -> PackedStream {
        dirs.iter().copied().collect()
    }

    /// Loop running exactly k iterations each activation: k-1 taken then
    /// one not-taken.
    fn fixed_count_loop(k: usize, activations: usize) -> Vec<bool> {
        let mut v = Vec::new();
        for _ in 0..activations {
            for i in 0..k {
                v.push(i + 1 < k);
            }
        }
        v
    }

    #[test]
    fn chain_shape_matches_figure_5() {
        let dirs = fixed_count_loop(4, 200);
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let m = exit_chain(4, table);
        assert_eq!(m.len(), 4);
        // 0 -> 01 -> 011 -> 111(self-loop) and every not-taken returns to 0.
        let pat: Vec<String> = m.states().iter().map(|s| s.pattern.to_string()).collect();
        assert_eq!(pat, vec!["0", "01", "011", "111"]);
        for s in m.states() {
            assert_eq!(s.on_not_taken, 0);
        }
        let last = m.states().len() - 1;
        assert_eq!(m.next(last, true), last, "tail self-loops");
        assert!(m.is_strongly_connected());
    }

    #[test]
    fn chain_with_enough_states_is_perfect_on_fixed_counts() {
        // 4-iteration loop: states 0,01,011,111 -- the 111 state is entered
        // exactly at the 3rd taken, where the next outcome is the exit.
        let dirs = fixed_count_loop(4, 500);
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let best = best_exit_machine(4, table, &packed(&dirs));
        // Profile gets exactly 1/4 wrong; the chain should be perfect
        // modulo warmup.
        assert!(best.mispredictions() <= 1);
        assert!(profile_correct(&packed(&dirs)) <= best.correct);
    }

    #[test]
    fn short_chain_degrades_gracefully() {
        let dirs = fixed_count_loop(8, 300);
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let two = best_exit_machine(2, table, &packed(&dirs));
        let eight = best_exit_machine(8, table, &packed(&dirs));
        assert!(eight.correct >= two.correct);
        // 2 states on an 8-iteration loop: predicts "keep going"
        // everywhere, missing each exit once, like profile.
        assert!(two.correct >= profile_correct(&packed(&dirs)) - 2);
    }

    #[test]
    fn oscillator_captures_even_odd_loops() {
        // Loop alternating between 2 and 4 iterations — even counts with a
        // strong parity structure that the plain chain's self-looping tail
        // cannot see.
        let mut dirs = Vec::new();
        for i in 0..400 {
            let k = if i % 2 == 0 { 2 } else { 4 };
            for j in 0..k {
                dirs.push(j + 1 < k);
            }
        }
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let chain = exit_chain(3, table);
        let (chain_c, _) = chain.simulate(dirs.iter().copied());
        let osc = exit_oscillator(3, table);
        let (osc_c, _) = osc.simulate(dirs.iter().copied());
        // The 3-state oscillator tracks parity of iterations; it should
        // beat the plain 3-state chain here.
        assert!(
            osc_c >= chain_c,
            "oscillator {osc_c} should be >= chain {chain_c}"
        );
        let best = best_exit_machine(3, table, &packed(&dirs));
        assert_eq!(best.correct, osc_c.max(chain_c));
    }

    #[test]
    fn inverted_polarity_loops_still_learn() {
        // Exit-on-taken loops: 5 not-taken then one taken.
        let dirs: Vec<bool> = (0..1200).map(|i| i % 6 == 5).collect();
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let best = best_exit_machine(6, table, &packed(&dirs));
        let profile_wrong = dirs.len() as u64 - profile_correct(&packed(&dirs));
        assert!(best.mispredictions() < profile_wrong);
    }

    #[test]
    #[should_panic(expected = "chain length")]
    fn chain_rejects_one_state() {
        let dirs = fixed_count_loop(2, 10);
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let _ = exit_chain(1, table);
    }
}
