//! Runtime re-specialization: online drift detection and proof-gated
//! hot re-patching of a shipped replicated program.
//!
//! The planner fixes every replica's pinned direction from one profiling
//! run. When the input distribution later shifts, those pins go stale —
//! the drift gate (`BR019`) can *report* the shift, but until this layer
//! the only repair was a full re-plan. [`Respec`] instead watches the
//! shipped program segment by segment and applies **minimal patches**:
//!
//! * **swap** — re-pin the profile-majority replicas of a site whose
//!   observed majority flipped (no CFG change, only `StaticPrediction`);
//! * **demote** — collapse a machine-controlled site whose machine
//!   stopped predicting back to its profile-majority single version;
//! * **re-inflate** — restore a previously demoted site's machine when
//!   the drift reverses.
//!
//! Detection follows the planning-time expectation two ways, mirroring
//! the estimate drift gate: sites with a statically *proved* direction
//! reuse the BR019 exact-rational comparison (a proved direction that
//! drifts means corrupt observation, never a patch — the proof wins and
//! the refusal is reported as `BR023`); heuristic sites run a CUSUM-style
//! windowed test over the per-site counter feed
//! ([`brepl_trace::windowed_counts`]) on both the taken rate *and* — for
//! machine-controlled sites — the machine's realized miss rate, so a
//! pattern shift that leaves the marginal rate untouched still trips the
//! detector.
//!
//! Every candidate patch is re-proved by the full BR001–BR012 gate stack
//! before commit, through the incremental [`GateCache`] so only dirtied
//! functions and sites pay ([`brepl_analysis::check_patch_cached`]). A
//! committed patch then has one **verification window**: if the next
//! observed segment does not improve the patched sites' measured miss
//! rate by `min_improvement`, the whole patch transaction is rolled back
//! to the byte-identical pre-patch program. Failed patches put their
//! sites on exponential backoff (`2^failures` segments); at
//! `max_failures` the site is quarantined from further patching and
//! `BR024` (flapping-site) is emitted. Patches commit one transaction at
//! a time — while one awaits verification no new patch is proposed — so
//! rollback is always a whole-program restore, never a partial undo.

use std::collections::{BTreeMap, BTreeSet};

use brepl_analysis::{
    check_history, check_patch_cached, has_errors, validate_replication, AnalysisDiag, DiagCode,
    GateCache, Severity,
};
use brepl_ir::{BranchId, Loc, Module};
use brepl_trace::{windowed_counts, PackedStream, SiteCounts, Trace, TraceStats};

use crate::replicate::{
    apply_plan, BranchMachine, ReplicateError, ReplicatedProgram, ReplicationPlan,
};
use crate::select::{ChosenStrategy, Selection};

/// Tunables for the re-specialization layer.
#[derive(Clone, Copy, Debug)]
pub struct RespecConfig {
    /// Outcomes per CUSUM window (per site).
    pub window: usize,
    /// CUSUM slack `k`: per-window deviation below this is absorbed.
    pub cusum_slack: f64,
    /// CUSUM threshold `h`: accumulated deviation above this fires.
    pub cusum_threshold: f64,
    /// Minimum absolute miss-rate improvement a committed patch must show
    /// in its verification window to survive.
    pub min_improvement: f64,
    /// Failed patches (gate rejection or rollback) before a site is
    /// quarantined and `BR024` fires.
    pub max_failures: u32,
    /// How close (absolute taken-rate distance) a demoted site must
    /// return to its planning-time rate to be re-inflated rather than
    /// merely re-pinned.
    pub reinflate_slack: f64,
}

impl Default for RespecConfig {
    fn default() -> Self {
        RespecConfig {
            window: 256,
            cusum_slack: 0.08,
            cusum_threshold: 0.75,
            min_improvement: 0.02,
            max_failures: 2,
            reinflate_slack: 0.1,
        }
    }
}

/// The kind of a minimal patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchKind {
    /// Re-pin a profile site's replicas to the observed majority.
    SwapPin {
        /// The direction pinned before the patch.
        from: bool,
        /// The observed-majority direction pinned by the patch.
        to: bool,
    },
    /// Collapse a machine-controlled site to its profile-majority single
    /// version.
    Demote {
        /// The observed-majority direction the single version pins.
        to: bool,
    },
    /// Restore a previously demoted site's machine.
    Reinflate,
}

/// What became of a patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchOutcome {
    /// Committed and awaiting its verification window.
    Committed,
    /// Committed and confirmed by its verification window.
    Verified,
    /// Committed, failed verification, rolled back byte-identically.
    RolledBack,
    /// Rejected by the BR001–BR012 re-proof; never shipped.
    RejectedByGate,
    /// Refused by policy (e.g. drift against a statically proved
    /// direction); never shipped.
    RejectedByPolicy,
}

/// One entry of the patch log.
#[derive(Clone, Debug, PartialEq)]
pub struct PatchRecord {
    /// The original-module branch site.
    pub site: BranchId,
    /// What the patch does.
    pub kind: PatchKind,
    /// The observed segment that triggered it.
    pub segment: usize,
    /// Current status (updated in place when verification resolves).
    pub outcome: PatchOutcome,
    /// Human-readable specifics.
    pub detail: String,
}

/// Per-site drift-detector and backoff state.
#[derive(Clone, Debug)]
struct SiteState {
    /// Statically proved direction, if any: such a site is never patched.
    proved: Option<bool>,
    /// The currently expected taken rate (planning rate, updated to the
    /// accepted observed rate when a patch at this site commits).
    expect_rate: f64,
    /// The planning-time taken rate (re-inflation target).
    plan_rate: f64,
    /// The currently expected miss rate under the shipped strategy.
    expect_miss: f64,
    /// CUSUM accumulators: taken-rate up, taken-rate down, miss-rate up.
    s_pos: f64,
    s_neg: f64,
    s_miss: f64,
    /// Patch failures so far (gate rejections + rollbacks).
    failures: u32,
    /// No patch proposals before this segment index.
    blocked_until: usize,
    /// Permanently excluded from patching (BR024 fired).
    quarantined: bool,
}

/// Snapshot taken before a patch transaction commits, for rollback.
struct Snapshot {
    program: ReplicatedProgram,
    enabled: BTreeSet<BranchId>,
    demoted: BTreeSet<BranchId>,
    overrides: BTreeMap<BranchId, SiteCounts>,
    expects: BTreeMap<BranchId, (f64, f64)>,
}

/// A committed patch transaction awaiting its verification window.
struct PendingVerify {
    /// Member sites with their patch-log indices and their own
    /// pre-patch miss rates in the drift segment — the per-member bar
    /// the verification window holds each one to.
    members: Vec<(BranchId, usize, f64)>,
    snapshot: Snapshot,
}

/// One site's folded observation for a segment: the outcome stream and
/// the shipped program's miss stream, both in that site's own order.
#[derive(Default)]
struct Folded {
    taken: PackedStream,
    miss: PackedStream,
}

impl Folded {
    fn counts(&self) -> SiteCounts {
        let taken = self.taken.count_taken();
        SiteCounts {
            taken,
            not_taken: self.taken.len() as u64 - taken,
        }
    }
}

/// The drift-adaptive runtime layer for one shipped program.
///
/// Feed it one observed trace segment at a time via [`Respec::observe`];
/// read the (possibly re-patched) program back via [`Respec::program`]
/// between segments. See the module docs for the full state machine.
pub struct Respec<'m> {
    module: &'m Module,
    config: RespecConfig,
    program: ReplicatedProgram,
    /// The planned machine for every machine-selected site, enabled or
    /// currently demoted.
    base: BTreeMap<BranchId, BranchMachine>,
    /// Sites currently shipped machine-controlled.
    enabled: BTreeSet<BranchId>,
    /// Sites planned machine-controlled but currently demoted.
    demoted: BTreeSet<BranchId>,
    /// Planning-time per-site counts, indexed by original site.
    plan_counts: Vec<SiteCounts>,
    /// Accepted observed counts (from committed patches), overriding
    /// `plan_counts` when the program is rebuilt.
    overrides: BTreeMap<BranchId, SiteCounts>,
    sites: BTreeMap<BranchId, SiteState>,
    pending: Option<PendingVerify>,
    cache: GateCache,
    diags: Vec<AnalysisDiag>,
    log: Vec<PatchRecord>,
}

impl<'m> Respec<'m> {
    /// Ships `selection` (restricted to `shipped` machine sites) over
    /// `module` and wraps the result in the adaptive layer.
    ///
    /// `plan_stats` are the planning-run per-site counts (the drift
    /// baseline), `proved` the statically proved directions (from
    /// [`brepl_analysis::Classification::proved_sites`]) that must never
    /// be patched against.
    ///
    /// # Errors
    ///
    /// Propagates [`ReplicateError`] from the initial plan application.
    pub fn new(
        module: &'m Module,
        selection: &Selection,
        shipped: &BTreeSet<BranchId>,
        plan_stats: &TraceStats,
        proved: &[(BranchId, bool)],
        config: RespecConfig,
    ) -> Result<Respec<'m>, ReplicateError> {
        let plan = selection.to_plan_filtered(|site| shipped.contains(&site));
        let base = plan.assignments.clone();
        let enabled: BTreeSet<BranchId> = base.keys().copied().collect();
        let plan_counts: Vec<SiteCounts> = (0..module.branch_count())
            .map(|i| plan_stats.site(BranchId::from_index(i)))
            .collect();
        let program = apply_plan(module, &plan, plan_stats)?;

        let proved_map: BTreeMap<BranchId, bool> = proved.iter().copied().collect();
        let mut sites = BTreeMap::new();
        for (i, counts) in plan_counts.iter().enumerate() {
            if counts.total() == 0 {
                continue;
            }
            let site = BranchId::from_index(i);
            let rate = counts.taken as f64 / counts.total() as f64;
            // Expected miss rate under the shipped strategy: the chosen
            // machine's profiling miss rate where one shipped, otherwise
            // the profile-majority minority rate.
            let choice = selection.choices().iter().find(|c| c.site == site);
            let miss = match choice {
                Some(c) if enabled.contains(&site) && c.executions > 0 => {
                    c.chosen_misses as f64 / c.executions as f64
                }
                _ => counts.minority_count() as f64 / counts.total() as f64,
            };
            sites.insert(
                site,
                SiteState {
                    proved: proved_map.get(&site).copied(),
                    expect_rate: rate,
                    plan_rate: rate,
                    expect_miss: miss,
                    s_pos: 0.0,
                    s_neg: 0.0,
                    s_miss: 0.0,
                    failures: 0,
                    blocked_until: 0,
                    quarantined: false,
                },
            );
        }

        Ok(Respec {
            module,
            config,
            program,
            base,
            enabled,
            demoted: BTreeSet::new(),
            plan_counts,
            overrides: BTreeMap::new(),
            sites,
            pending: None,
            cache: GateCache::new(),
            diags: Vec::new(),
            log: Vec::new(),
        })
    }

    /// The currently shipped program.
    pub fn program(&self) -> &ReplicatedProgram {
        &self.program
    }

    /// Mutable access to the shipped program — exists solely so the chaos
    /// harness can corrupt a committed patch *post-gate*; honest callers
    /// never need it.
    pub fn program_mut(&mut self) -> &mut ReplicatedProgram {
        &mut self.program
    }

    /// Every diagnostic emitted so far (only BR023/BR024; gate findings
    /// from rejected candidates are folded into BR023 details).
    pub fn diags(&self) -> &[AnalysisDiag] {
        &self.diags
    }

    /// The full patch log, oldest first.
    pub fn log(&self) -> &[PatchRecord] {
        &self.log
    }

    /// Sites currently machine-controlled.
    pub fn enabled_sites(&self) -> &BTreeSet<BranchId> {
        &self.enabled
    }

    /// Sites currently demoted to their profile-majority single version.
    pub fn demoted_sites(&self) -> &BTreeSet<BranchId> {
        &self.demoted
    }

    /// Sites quarantined from further patching.
    pub fn quarantined_sites(&self) -> Vec<BranchId> {
        self.sites
            .iter()
            .filter(|(_, st)| st.quarantined)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Incremental-gate cache hits so far.
    pub fn gate_cache_hits(&self) -> usize {
        self.cache.hits()
    }

    /// From-scratch re-proof of the *currently shipped* program under the
    /// full BR001–BR012 gate stack — the translation validator plus the
    /// witness-independent history checker, with no cache in the loop.
    /// Every committed patch must leave this clean; callers run it once
    /// after the last segment as the final acceptance check.
    pub fn revalidate(&self) -> Vec<AnalysisDiag> {
        let spec = self.current_plan().history_spec();
        let mut diags = validate_replication(
            self.module,
            &self.program.module,
            &self.program.replica_map,
            &self.program.predictions,
        );
        diags.extend(check_history(
            &self.program.module,
            &self.program.provenance,
            &spec,
            &self.program.predictions,
        ));
        diags
    }

    /// Consumes the layer, returning the final program, patch log and
    /// diagnostics.
    pub fn into_parts(self) -> (ReplicatedProgram, Vec<PatchRecord>, Vec<AnalysisDiag>) {
        (self.program, self.log, self.diags)
    }

    /// The replication plan over the currently enabled sites.
    fn current_plan(&self) -> ReplicationPlan {
        let mut plan = ReplicationPlan::new();
        for (&site, machine) in &self.base {
            if self.enabled.contains(&site) {
                plan.assign(site, machine.clone());
            }
        }
        plan
    }

    /// Planning counts with every accepted override applied — the stats
    /// the program is rebuilt from, so committed swaps survive rebuilds.
    fn current_stats(&self) -> TraceStats {
        let mut counts = self.plan_counts.clone();
        for (&site, &c) in &self.overrides {
            if site.index() < counts.len() {
                counts[site.index()] = c;
            }
        }
        TraceStats::from_counts(counts)
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            program: self.program.clone(),
            enabled: self.enabled.clone(),
            demoted: self.demoted.clone(),
            overrides: self.overrides.clone(),
            expects: self
                .sites
                .iter()
                .map(|(&s, st)| (s, (st.expect_rate, st.expect_miss)))
                .collect(),
        }
    }

    fn restore(&mut self, snap: Snapshot) {
        self.program = snap.program;
        self.enabled = snap.enabled;
        self.demoted = snap.demoted;
        self.overrides = snap.overrides;
        for (site, (rate, miss)) in snap.expects {
            if let Some(st) = self.sites.get_mut(&site) {
                st.expect_rate = rate;
                st.expect_miss = miss;
            }
        }
    }

    /// The diagnostic location for an original-module site.
    fn site_loc(&self, site: BranchId) -> Loc {
        self.module
            .locate_branch(site)
            .map_or(Loc::function(brepl_ir::FuncId(0)), |(f, b)| Loc::term(f, b))
    }

    /// Registers a patch failure at `site`: exponential backoff, and
    /// quarantine + BR024 at the failure cap.
    fn register_failure(&mut self, site: BranchId, segment: usize) {
        let cap = self.config.max_failures;
        let loc = self.site_loc(site);
        let Some(st) = self.sites.get_mut(&site) else {
            return;
        };
        st.failures += 1;
        st.blocked_until = segment + (1usize << st.failures.min(16));
        st.s_pos = 0.0;
        st.s_neg = 0.0;
        st.s_miss = 0.0;
        if st.failures >= cap && !st.quarantined {
            st.quarantined = true;
            let failures = st.failures;
            self.diags.push(
                AnalysisDiag::new(
                    DiagCode::FlappingSite,
                    loc,
                    format!(
                        "site drifted and failed {failures} patches — the input \
                         distribution is oscillating faster than the adaptation \
                         window; quarantining from further re-patching"
                    ),
                )
                .with_site(site),
            );
        }
    }

    /// Folds an observed segment to per-original-site outcome and miss
    /// streams under the program that produced it.
    fn fold(&self, seg: &Trace) -> BTreeMap<BranchId, Folded> {
        let provenance = &self.program.provenance;
        let predictions = &self.program.predictions;
        let mut folded: BTreeMap<BranchId, Folded> = BTreeMap::new();
        for ev in seg.iter() {
            let orig = provenance.get(ev.site.index()).copied().unwrap_or(ev.site);
            let f = folded.entry(orig).or_default();
            f.taken.push(ev.taken);
            f.miss.push(predictions.get(ev.site) != ev.taken);
        }
        folded
    }

    /// Observes one trace segment produced by the *current* program and
    /// applies at most one patch transaction. Returns the records
    /// appended or resolved this call (resolved records are re-emitted
    /// with their final outcome).
    ///
    /// `segment` indices must be strictly increasing across calls.
    pub fn observe(&mut self, segment: usize, seg: &Trace) -> Vec<PatchRecord> {
        let mut touched: Vec<usize> = Vec::new();
        let folded = self.fold(seg);
        self.verify_pending(segment, &folded, &mut touched);
        self.check_proved(segment, &folded, &mut touched);
        if self.pending.is_none() {
            let proposals = self.detect(segment, &folded);
            if !proposals.is_empty() {
                self.apply_transaction(segment, proposals, &folded, &mut touched);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched.into_iter().map(|i| self.log[i].clone()).collect()
    }

    /// Resolves the pending verification window, if any. The window
    /// resolves on the first segment in which any member site executed;
    /// each member that executed must beat its *own* pre-patch miss
    /// rate by `min_improvement`, and members that did not execute pass
    /// trivially. One failing member rolls the whole transaction back:
    /// per-member verification means a regressing (or corrupted) pin
    /// cannot hide behind its siblings' improvements in a pooled rate.
    fn verify_pending(
        &mut self,
        segment: usize,
        folded: &BTreeMap<BranchId, Folded>,
        touched: &mut Vec<usize>,
    ) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        let mut any_events = false;
        let mut verdicts = Vec::with_capacity(pending.members.len());
        for &(site, idx, pre) in &pending.members {
            let (events, misses) = folded
                .get(&site)
                .map(|f| (f.taken.len() as u64, f.miss.count_taken()))
                .unwrap_or((0, 0));
            any_events |= events > 0;
            let rate = misses as f64 / events.max(1) as f64;
            let pass = events == 0 || rate <= pre - self.config.min_improvement;
            verdicts.push((site, idx, pre, rate, events, pass));
        }
        if !any_events {
            // The member sites did not execute this segment; the window
            // stays open.
            self.pending = Some(pending);
            return;
        }
        if verdicts.iter().all(|&(.., pass)| pass) {
            for &(site, idx, ..) in &verdicts {
                self.log[idx].outcome = PatchOutcome::Verified;
                touched.push(idx);
                if let Some(st) = self.sites.get_mut(&site) {
                    st.failures = 0;
                }
            }
            return;
        }
        // Verification failed: byte-identical rollback, then backoff.
        self.restore(pending.snapshot);
        for (site, idx, pre, rate, events, pass) in verdicts {
            self.log[idx].outcome = PatchOutcome::RolledBack;
            touched.push(idx);
            let why = if !pass {
                format!(
                    "measured miss rate {rate:.4} did not improve on \
                     pre-patch {pre:.4} by {}",
                    self.config.min_improvement
                )
            } else if events == 0 {
                "a sibling member of the transaction regressed (this site \
                 did not execute in the window)"
                    .to_string()
            } else {
                "a sibling member of the transaction regressed".to_string()
            };
            self.diags.push(
                AnalysisDiag::new(
                    DiagCode::PatchRejected,
                    self.site_loc(site),
                    format!(
                        "patch failed its verification window: {why}; \
                         rolled back to the pre-patch program"
                    ),
                )
                .with_site(site),
            );
            self.register_failure(site, segment);
        }
    }

    /// The BR019-style exact comparison: a site with a statically proved
    /// direction whose observed segment contradicts the proof is refused
    /// patching outright — the proof outranks any counter.
    fn check_proved(
        &mut self,
        segment: usize,
        folded: &BTreeMap<BranchId, Folded>,
        touched: &mut Vec<usize>,
    ) {
        let contradicted: Vec<(BranchId, bool, SiteCounts)> = self
            .sites
            .iter()
            .filter(|(_, st)| !st.quarantined)
            .filter_map(|(&site, st)| {
                let dir = st.proved?;
                let counts = folded.get(&site)?.counts();
                let impossible = if dir { counts.not_taken } else { counts.taken };
                (impossible > 0).then_some((site, dir, counts))
            })
            .collect();
        for (site, dir, counts) in contradicted {
            let loc = self.site_loc(site);
            let (taken, not_taken) = (counts.taken, counts.not_taken);
            self.diags.push(
                AnalysisDiag::new(
                    DiagCode::PatchRejected,
                    loc,
                    format!(
                        "observed {taken} taken / {not_taken} not-taken events \
                         contradict the statically proved {} direction — the \
                         observation stream is corrupt or stale; refusing to \
                         patch against a proof",
                        if dir { "always-taken" } else { "never-taken" },
                    ),
                )
                .with_site(site),
            );
            self.log.push(PatchRecord {
                site,
                kind: PatchKind::SwapPin {
                    from: dir,
                    to: !dir,
                },
                segment,
                outcome: PatchOutcome::RejectedByPolicy,
                detail: "drift contradicts a statically proved direction".to_string(),
            });
            touched.push(self.log.len() - 1);
            if let Some(st) = self.sites.get_mut(&site) {
                st.quarantined = true;
            }
        }
    }

    /// Runs the windowed CUSUM detectors and returns patch proposals in
    /// deterministic site order.
    fn detect(
        &mut self,
        segment: usize,
        folded: &BTreeMap<BranchId, Folded>,
    ) -> Vec<(BranchId, PatchKind, SiteCounts, f64)> {
        let config = self.config;
        let min_window = config.window / 2;
        let mut proposals = Vec::new();
        for (&site, f) in folded {
            // Phase 1: advance the CUSUM accumulators under the mutable
            // per-site borrow and decide whether a detector fired.
            let (plan_rate, expect_miss) = {
                let Some(st) = self.sites.get_mut(&site) else {
                    continue;
                };
                if st.quarantined || st.proved.is_some() || segment < st.blocked_until {
                    continue;
                }
                let mut drift = false;
                for w in windowed_counts(&f.taken, config.window) {
                    if (w.total() as usize) < min_window {
                        continue;
                    }
                    let x = w.taken as f64 / w.total() as f64;
                    st.s_pos = (st.s_pos + x - st.expect_rate - config.cusum_slack).max(0.0);
                    st.s_neg = (st.s_neg + st.expect_rate - x - config.cusum_slack).max(0.0);
                    if st.s_pos > config.cusum_threshold || st.s_neg > config.cusum_threshold {
                        drift = true;
                    }
                }
                for w in windowed_counts(&f.miss, config.window) {
                    if (w.total() as usize) < min_window {
                        continue;
                    }
                    let m = w.taken as f64 / w.total() as f64;
                    st.s_miss = (st.s_miss + m - st.expect_miss - config.cusum_slack).max(0.0);
                    if st.s_miss > config.cusum_threshold {
                        drift = true;
                    }
                }
                if !drift {
                    continue;
                }
                st.s_pos = 0.0;
                st.s_neg = 0.0;
                st.s_miss = 0.0;
                (st.plan_rate, st.expect_miss)
            };

            // Phase 2: the borrow is released; classify the drift.
            let counts = f.counts();
            let seg_rate = counts.taken as f64 / counts.total().max(1) as f64;
            let miss_rate = f.miss.count_taken() as f64 / f.miss.len().max(1) as f64;
            let kind = if self.enabled.contains(&site) {
                // A machine-controlled site is demoted only when the
                // machine itself stopped predicting. The marginal taken
                // rate can drift arbitrarily while the history pattern
                // the machine encodes still holds (miss rate intact) —
                // a history-driven predictor does not care about the
                // marginal. Just move the expectations so the detector
                // re-arms on the new distribution.
                if miss_rate <= expect_miss + config.cusum_slack {
                    if let Some(st) = self.sites.get_mut(&site) {
                        st.expect_rate = seg_rate;
                        st.expect_miss = miss_rate;
                    }
                    continue;
                }
                PatchKind::Demote {
                    to: counts.majority(),
                }
            } else if self.demoted.contains(&site)
                && (seg_rate - plan_rate).abs() <= config.reinflate_slack
            {
                PatchKind::Reinflate
            } else {
                // Profile-pinned site (plain or demoted): follow the
                // observed majority. A drift that does not flip the
                // majority needs no patch — just move the expectation.
                let to = counts.majority();
                let from = self.current_pin(site).unwrap_or(to);
                if from == to {
                    if let Some(st) = self.sites.get_mut(&site) {
                        st.expect_rate = seg_rate;
                        st.expect_miss =
                            counts.minority_count() as f64 / counts.total().max(1) as f64;
                    }
                    continue;
                }
                PatchKind::SwapPin { from, to }
            };
            proposals.push((site, kind, counts, miss_rate));
        }
        proposals
    }

    /// The direction currently pinned on `site`'s profile replicas, from
    /// any one of its non-machine-pinned replicas.
    fn current_pin(&self, site: BranchId) -> Option<bool> {
        self.program
            .provenance
            .iter()
            .enumerate()
            .find(|&(_, &orig)| orig == site)
            .map(|(ns, _)| self.program.predictions.get(BranchId::from_index(ns)))
    }

    /// Applies one patch transaction: snapshot, rebuild, re-prove under
    /// BR001–BR012, commit or reject.
    fn apply_transaction(
        &mut self,
        segment: usize,
        proposals: Vec<(BranchId, PatchKind, SiteCounts, f64)>,
        folded: &BTreeMap<BranchId, Folded>,
        touched: &mut Vec<usize>,
    ) {
        let snapshot = self.snapshot();

        // Per-member pre-patch miss rates: the bar each member must
        // clear in its verification window.
        let pre_rates: BTreeMap<BranchId, f64> = proposals
            .iter()
            .map(|&(site, _, _, _)| {
                let rate = folded
                    .get(&site)
                    .map(|f| f.miss.count_taken() as f64 / (f.taken.len() as f64).max(1.0))
                    .unwrap_or(0.0);
                (site, rate)
            })
            .collect();

        // Mutate the layer state, then rebuild deterministically.
        for &(site, kind, counts, _) in &proposals {
            match kind {
                PatchKind::SwapPin { .. } => {
                    self.overrides.insert(site, counts);
                }
                PatchKind::Demote { .. } => {
                    self.enabled.remove(&site);
                    self.demoted.insert(site);
                    self.overrides.insert(site, counts);
                }
                PatchKind::Reinflate => {
                    self.demoted.remove(&site);
                    self.enabled.insert(site);
                    self.overrides.remove(&site);
                }
            }
        }
        let plan = self.current_plan();
        let stats = self.current_stats();
        let rebuilt = match apply_plan(self.module, &plan, &stats) {
            Ok(p) => p,
            Err(e) => {
                self.reject(
                    segment,
                    &proposals,
                    &format!("patch application failed: {e}"),
                );
                self.restore(snapshot);
                let start = self.log.len() - proposals.len();
                touched.extend(start..self.log.len());
                return;
            }
        };

        // Re-prove the candidate under the full static gate stack via the
        // incremental cache: only functions/sites the patch dirtied pay.
        let spec = plan.history_spec();
        let gate_diags = check_patch_cached(
            self.module,
            &rebuilt.module,
            &rebuilt.replica_map,
            &rebuilt.provenance,
            &spec,
            &rebuilt.predictions,
            &mut self.cache,
        );
        if has_errors(&gate_diags) {
            let first = gate_diags
                .iter()
                .find(|d| d.severity() == Severity::Error)
                .map(|d| d.render(&rebuilt.module))
                .unwrap_or_default();
            self.reject(
                segment,
                &proposals,
                &format!("BR001-BR012 re-proof failed: {first}"),
            );
            self.restore(snapshot);
            let start = self.log.len() - proposals.len();
            touched.extend(start..self.log.len());
            for &(site, _, _, _) in &proposals {
                self.register_failure(site, segment);
            }
            return;
        }

        // Commit: ship the rebuilt program, open the verification window.
        self.program = rebuilt;
        let mut members = Vec::with_capacity(proposals.len());
        for (site, kind, counts, miss_rate) in proposals {
            let detail = format!(
                "observed {} taken / {} not-taken (miss rate {miss_rate:.4}) in segment {segment}",
                counts.taken, counts.not_taken
            );
            self.log.push(PatchRecord {
                site,
                kind,
                segment,
                outcome: PatchOutcome::Committed,
                detail,
            });
            let idx = self.log.len() - 1;
            touched.push(idx);
            members.push((site, idx, pre_rates.get(&site).copied().unwrap_or(0.0)));
            if let Some(st) = self.sites.get_mut(&site) {
                match kind {
                    PatchKind::Reinflate => {
                        st.expect_rate = st.plan_rate;
                        // The machine is back: expect its planning miss
                        // rate again (approximated by zero until the next
                        // committed patch refines it — the verification
                        // window is the real arbiter).
                        st.expect_miss = 0.0;
                    }
                    _ => {
                        let total = counts.total().max(1) as f64;
                        st.expect_rate = counts.taken as f64 / total;
                        st.expect_miss = counts.minority_count() as f64 / total;
                    }
                }
            }
        }
        self.pending = Some(PendingVerify { members, snapshot });
    }

    /// Logs a gate rejection for every member of a failed transaction.
    fn reject(
        &mut self,
        segment: usize,
        proposals: &[(BranchId, PatchKind, SiteCounts, f64)],
        why: &str,
    ) {
        for &(site, kind, _, _) in proposals {
            self.diags.push(
                AnalysisDiag::new(
                    DiagCode::PatchRejected,
                    self.site_loc(site),
                    format!("patch rejected before commit: {why}"),
                )
                .with_site(site),
            );
            self.log.push(PatchRecord {
                site,
                kind,
                segment,
                outcome: PatchOutcome::RejectedByGate,
                detail: why.to_string(),
            });
        }
    }
}

/// Convenience: which strategy `selection` chose for `site`, for callers
/// assembling the shipped-site set.
pub fn is_machine_choice(selection: &Selection, site: BranchId) -> bool {
    selection
        .choices()
        .iter()
        .any(|c| c.site == site && !matches!(c.chosen, ChosenStrategy::Profile))
}
