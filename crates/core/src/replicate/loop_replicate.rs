//! Loop replication (§4–§5, Figure 1 of the paper): one copy of the loop
//! body per state of the branch prediction state machine, with the
//! replicated branch's edges wired to the successor *states'* copies so the
//! machine state lives in the program counter.
//!
//! Several improved branches in the same loop multiply the state count
//! (the paper: "if branches are in the same loop, the number of states
//! must be multiplied"), which we realize directly with a product state
//! space.

use std::collections::BTreeSet;

use brepl_ir::{BlockId, Function};

use crate::machine::StateMachine;

/// Why a loop could not be replicated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoopReplicateError {
    /// A planned branch block is not inside the given loop.
    BranchNotInLoop(BlockId),
    /// The product state space exceeds the configured cap.
    TooManyStates {
        /// The product of machine sizes requested.
        requested: usize,
        /// The configured cap.
        cap: usize,
    },
    /// No machines were supplied.
    NoMachines,
}

impl std::fmt::Display for LoopReplicateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopReplicateError::BranchNotInLoop(b) => {
                write!(f, "branch block {b} is not inside the loop")
            }
            LoopReplicateError::TooManyStates { requested, cap } => {
                write!(f, "product state space {requested} exceeds cap {cap}")
            }
            LoopReplicateError::NoMachines => write!(f, "no machines supplied"),
        }
    }
}

impl std::error::Error for LoopReplicateError {}

/// Hard cap on the product state space of one loop; beyond this the code
/// growth is out of the range the paper explores (its plots stop around
/// code-size factor 5).
pub const MAX_PRODUCT_STATES: usize = 512;

/// The result of replicating one loop.
#[derive(Clone, Debug)]
pub struct LoopReplication {
    /// For every product state, the map `original loop block -> copy`.
    /// State of the *initial* product state maps blocks to themselves.
    pub copies: Vec<Vec<(BlockId, BlockId)>>,
    /// For every `(branch_block_copy, prediction)` of every replicated
    /// branch: the static prediction the copy's state dictates.
    pub branch_predictions: Vec<(BlockId, bool)>,
    /// Blocks added by the replication.
    pub added_blocks: usize,
}

/// Replicates `loop_blocks` of `func` with the product of `machines`, one
/// machine per improved branch (`(branch block, machine)` pairs).
///
/// External entries into the loop keep flowing to the original blocks, so
/// the original copy must represent the initial product state — which it
/// does, because every machine's initial state indexes the identity copy.
///
/// The caller is responsible for running
/// [`remove_unreachable`](super::cleanup::remove_unreachable) afterwards
/// (unreachable state copies are expected — see Figure 1) and for
/// renumbering branch sites at the module level.
///
/// # Errors
///
/// Returns a [`LoopReplicateError`] when a branch lies outside the loop or
/// the product space exceeds [`MAX_PRODUCT_STATES`].
pub fn replicate_loop(
    func: &mut Function,
    loop_blocks: &BTreeSet<BlockId>,
    machines: &[(BlockId, &StateMachine)],
) -> Result<LoopReplication, LoopReplicateError> {
    if machines.is_empty() {
        return Err(LoopReplicateError::NoMachines);
    }
    for &(b, _) in machines {
        if !loop_blocks.contains(&b) {
            return Err(LoopReplicateError::BranchNotInLoop(b));
        }
    }
    let dims: Vec<usize> = machines.iter().map(|(_, m)| m.len()).collect();
    let product: usize = dims.iter().product();
    if product > MAX_PRODUCT_STATES {
        return Err(LoopReplicateError::TooManyStates {
            requested: product,
            cap: MAX_PRODUCT_STATES,
        });
    }

    // Product-state indexing: mixed-radix over the per-machine states.
    let encode = |components: &[usize]| -> usize {
        let mut s = 0;
        for (i, &c) in components.iter().enumerate() {
            s = s * dims[i] + c;
        }
        s
    };
    let initial: Vec<usize> = machines.iter().map(|(_, m)| m.initial()).collect();
    let initial_idx = encode(&initial);
    let decode = |mut s: usize| -> Vec<usize> {
        let mut out = vec![0; dims.len()];
        for i in (0..dims.len()).rev() {
            out[i] = s % dims[i];
            s /= dims[i];
        }
        out
    };

    // Allocate copies: the initial product state is the original blocks;
    // every other state gets fresh clones appended at the end.
    let loop_list: Vec<BlockId> = loop_blocks.iter().copied().collect();
    let mut copy_of = vec![vec![BlockId(0); loop_list.len()]; product];
    let mut added = 0usize;
    // `s` is the product-state index, a semantic quantity, not just a
    // position in `copy_of`.
    #[allow(clippy::needless_range_loop)]
    for s in 0..product {
        for (li, &orig) in loop_list.iter().enumerate() {
            if s == initial_idx {
                copy_of[s][li] = orig;
            } else {
                let id = BlockId::from_index(func.blocks.len());
                let cloned = func.block(orig).clone();
                func.blocks.push(cloned);
                copy_of[s][li] = id;
                added += 1;
            }
        }
    }
    let loop_index = |b: BlockId| loop_list.iter().position(|&x| x == b);

    // Rewire every copy.
    let mut branch_predictions = Vec::new();
    for s in 0..product {
        let comps = decode(s);
        for (li, &orig) in loop_list.iter().enumerate() {
            let this = copy_of[s][li];
            // Which machine (if any) owns this block's branch?
            let owner = machines.iter().position(|&(bb, _)| bb == orig);
            if let Some(mi) = owner {
                let machine = machines[mi].1;
                branch_predictions.push((this, machine.states()[comps[mi]].predict));
            }
            let term = &mut func.blocks[this.index()].term;
            // Compute the taken/not-taken successor states.
            let succ_state = |taken: bool| -> usize {
                match owner {
                    None => s,
                    Some(mi) => {
                        let mut c = comps.clone();
                        c[mi] = machines[mi].1.next(comps[mi], taken);
                        encode(&c)
                    }
                }
            };
            match term {
                brepl_ir::Term::Br { then_, else_, .. } => {
                    let retarget = |t: BlockId, taken: bool, copy_of: &Vec<Vec<BlockId>>| {
                        match loop_index(t) {
                            Some(ti) => copy_of[succ_state(taken)][ti],
                            None => t,
                        }
                    };
                    let new_then = retarget(*then_, true, &copy_of);
                    let new_else = retarget(*else_, false, &copy_of);
                    *then_ = new_then;
                    *else_ = new_else;
                }
                brepl_ir::Term::Jmp { target } => {
                    if let Some(ti) = loop_index(*target) {
                        *target = copy_of[s][ti];
                    }
                }
                brepl_ir::Term::Ret { .. } => {}
            }
        }
    }

    let copies = copy_of
        .into_iter()
        .map(|c| loop_list.iter().copied().zip(c).collect())
        .collect();
    Ok(LoopReplication {
        copies,
        branch_predictions,
        added_blocks: added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineState;
    use crate::pattern::HistPattern;
    use brepl_cfg::{Cfg, DomTree, LoopForest};
    use brepl_ir::{FunctionBuilder, Module, Operand};
    use brepl_sim::{Machine as Sim, RunConfig};

    /// The paper's Figure 1 setting: a loop with an alternating intra-loop
    /// branch. main() sums f(i) over i in 0..200 where the branch tests
    /// i % 2.
    fn alternating_loop_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd);
        b.switch_to(even);
        b.add(acc, acc.into(), Operand::imm(3));
        b.jmp(latch);
        b.switch_to(odd);
        b.add(acc, acc.into(), Operand::imm(5));
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), Operand::imm(200));
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    fn two_state_machine() -> StateMachine {
        // {0 -> predict taken, 1 -> predict not taken}: the alternating
        // branch i%2==0 is taken on even i; after taken (state 1) the next
        // is odd -> not taken.
        StateMachine::from_states(
            vec![
                MachineState {
                    pattern: HistPattern::parse("0").unwrap(),
                    predict: true,
                    on_taken: 1,
                    on_not_taken: 0,
                },
                MachineState {
                    pattern: HistPattern::parse("1").unwrap(),
                    predict: false,
                    on_taken: 1,
                    on_not_taken: 0,
                },
            ],
            0,
        )
    }

    #[test]
    fn figure_1_replication_preserves_semantics_and_predicts_perfectly() {
        let module = alternating_loop_module();
        let original = Sim::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();

        let mut replicated = module.clone();
        let fid = replicated.function_by_name("main").unwrap();
        let func = replicated.function_mut(fid);
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        assert_eq!(forest.loops().len(), 1);
        let loop_blocks = forest.loops()[0].blocks.clone();
        let machine = two_state_machine();
        let branch_block = BlockId(1); // head holds the alternating branch
        let info = replicate_loop(func, &loop_blocks, &[(branch_block, &machine)]).unwrap();
        assert_eq!(info.copies.len(), 2);
        assert_eq!(info.branch_predictions.len(), 2);
        super::super::cleanup::remove_unreachable(func);
        replicated.renumber_branches();
        replicated.verify().unwrap();

        // Semantics preserved.
        let transformed = Sim::new(&replicated, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(original.result, transformed.result);
        assert_eq!(original.trace.len(), transformed.trace.len());

        // Per-site profile prediction on the replicated program is now
        // nearly perfect: each copy of the alternating branch sees a single
        // direction, and only the loop's final exit can still miss.
        let original_stats = original.trace.stats();
        let transformed_stats = transformed.trace.stats();
        let orig_wrong: u64 = original_stats
            .iter_executed()
            .map(|(_, c)| c.minority_count())
            .sum();
        let new_wrong: u64 = transformed_stats
            .iter_executed()
            .map(|(_, c)| c.minority_count())
            .sum();
        assert!(orig_wrong >= 100, "alternation defeats plain profile");
        assert!(new_wrong <= 1, "replication leaves only the exit miss");
        // Both copies of the alternating branch execute and are pure.
        let pure_100: usize = transformed_stats
            .iter_executed()
            .filter(|(_, c)| c.total() == 100 && c.minority_count() == 0)
            .count();
        assert!(pure_100 >= 2);
    }

    #[test]
    fn product_replication_of_two_branches() {
        // Replicate both the alternating branch (2 states) and the latch
        // (2-state chain) -> 4 product states.
        let module = alternating_loop_module();
        let original = Sim::new(&module, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        let mut replicated = module.clone();
        let fid = replicated.function_by_name("main").unwrap();
        let func = replicated.function_mut(fid);
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let loop_blocks = forest.loops()[0].blocks.clone();
        let m1 = two_state_machine();
        let m2 = two_state_machine();
        let info =
            replicate_loop(func, &loop_blocks, &[(BlockId(1), &m1), (BlockId(4), &m2)]).unwrap();
        assert_eq!(info.copies.len(), 4);
        super::super::cleanup::remove_unreachable(func);
        replicated.renumber_branches();
        replicated.verify().unwrap();
        let transformed = Sim::new(&replicated, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(original.result, transformed.result);
        assert_eq!(original.trace.len(), transformed.trace.len());
    }

    #[test]
    fn branch_outside_loop_rejected() {
        let module = alternating_loop_module();
        let mut m = module.clone();
        let fid = m.function_by_name("main").unwrap();
        let func = m.function_mut(fid);
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let loop_blocks = forest.loops()[0].blocks.clone();
        let machine = two_state_machine();
        let err = replicate_loop(func, &loop_blocks, &[(BlockId(0), &machine)]).unwrap_err();
        assert_eq!(err, LoopReplicateError::BranchNotInLoop(BlockId(0)));
    }

    #[test]
    fn state_cap_enforced() {
        let module = alternating_loop_module();
        let mut m = module.clone();
        let fid = m.function_by_name("main").unwrap();
        let func = m.function_mut(fid);
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let loop_blocks = forest.loops()[0].blocks.clone();
        // A 1024-state machine via repeated product of 2-state machines is
        // simulated by asking for 10 copies of the same branch... instead
        // build one machine with too many states cheaply.
        let machine = two_state_machine();
        let machines: Vec<(BlockId, &StateMachine)> =
            (0..10).map(|_| (BlockId(1), &machine)).collect();
        let err = replicate_loop(func, &loop_blocks, &machines).unwrap_err();
        assert!(matches!(err, LoopReplicateError::TooManyStates { .. }));
    }
}
