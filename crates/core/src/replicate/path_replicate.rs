//! Path replication for correlated branches (§4.3): tail duplication in
//! the style of Mueller & Whalley, except that the goal is to *encode the
//! incoming decision path in the program counter* rather than to remove
//! jumps.
//!
//! [`split_by_paths`] duplicates a block (recursively, up to a depth) so
//! that every copy is reached through a unique chain of predecessor
//! blocks. Each copy of a correlated branch then corresponds to one path
//! state of its [`crate::correlated::CorrelatedMachine`], and the per-copy
//! static prediction is the machine's prediction for that path.

use brepl_ir::{BlockId, BranchId, Function, Term};

use crate::correlated::CorrelatedMachine;

/// Result of splitting a block by predecessor paths.
#[derive(Clone, Debug)]
pub struct PathSplit {
    /// All copies of the split block (the original comes first).
    pub branch_copies: Vec<BlockId>,
    /// Blocks added in total (including duplicated intermediate blocks).
    pub added_blocks: usize,
    /// Every `(source, clone)` pair in creation order — clone ids are
    /// consecutive and each source precedes its clone, so origin maps can
    /// replay the log front to back.
    pub clones: Vec<(BlockId, BlockId)>,
}

/// Collects `(pred block, is_taken_edge_slot)` pairs — one entry per
/// incoming edge of `block`.
fn incoming_edges(func: &Function, block: BlockId) -> Vec<(BlockId, usize)> {
    let mut edges = Vec::new();
    for (bid, b) in func.iter_blocks() {
        for (slot, succ) in b.term.successors().enumerate() {
            if succ == block {
                edges.push((bid, slot));
            }
        }
    }
    edges
}

fn retarget_edge(func: &mut Function, pred: BlockId, slot: usize, new_target: BlockId) {
    let term = &mut func.block_mut(pred).term;
    let mut i = 0;
    term.map_successors(|t| {
        let out = if i == slot { new_target } else { t };
        i += 1;
        out
    });
}

/// Duplicates `block` (and, recursively, its predecessors) so that every
/// copy of `block` has a unique predecessor chain of length up to `depth`.
/// The entry block and blocks on a cycle back to themselves are never
/// split. Returns the copies of `block`.
///
/// The caller must renumber branch sites afterwards (copies carry stale
/// ids, which is what provenance tracking expects).
pub fn split_by_paths(func: &mut Function, block: BlockId, depth: usize) -> PathSplit {
    let mut added = 0usize;
    let mut stack = Vec::new();
    let mut clones = Vec::new();
    let copies = split_rec(func, block, depth, &mut stack, &mut added, &mut clones);
    PathSplit {
        branch_copies: copies,
        added_blocks: added,
        clones,
    }
}

fn split_rec(
    func: &mut Function,
    block: BlockId,
    depth: usize,
    stack: &mut Vec<BlockId>,
    added: &mut usize,
    clones: &mut Vec<(BlockId, BlockId)>,
) -> Vec<BlockId> {
    if depth == 0 || block == func.entry || stack.contains(&block) {
        return vec![block];
    }
    stack.push(block);
    // First give each predecessor a unique chain (so the edges arriving
    // here already encode deeper history). Depth counts *decisions*:
    // walking back through a jump-only predecessor does not consume it,
    // matching how `PredecessorPaths::enumerate` counts path length.
    let preds: Vec<BlockId> = {
        let mut p: Vec<BlockId> = incoming_edges(func, block)
            .into_iter()
            .map(|(b, _)| b)
            .collect();
        p.sort();
        p.dedup();
        p
    };
    for p in preds {
        if p != block {
            let pred_depth = match func.block(p).term {
                Term::Br { .. } => depth - 1,
                _ => depth,
            };
            let _ = split_rec(func, p, pred_depth, stack, added, clones);
        }
    }
    stack.pop();

    // ... then give each incoming edge its own copy of this block.
    let edges = incoming_edges(func, block);
    let mut copies = vec![block];
    for &(pred, slot) in edges.iter().skip(1) {
        let clone = func.block(block).clone();
        let id = BlockId::from_index(func.blocks.len());
        func.blocks.push(clone);
        clones.push((block, id));
        *added += 1;
        retarget_edge(func, pred, slot, id);
        copies.push(id);
    }
    copies
}

/// Walks backwards from `block` along unique-predecessor chains, collecting
/// up to `depth` branch decisions `(site, taken)` oldest-first — the
/// decision path a copy produced by [`split_by_paths`] is reached through.
pub fn decision_path(func: &Function, block: BlockId, depth: usize) -> Vec<(BranchId, bool)> {
    let mut path = Vec::new();
    let mut cur = block;
    let mut steps = 0usize;
    while path.len() < depth && steps < 128 {
        steps += 1;
        let edges = incoming_edges(func, cur);
        // Unique predecessor blocks only; several parallel edges from the
        // same branch (then == else) are fine for walking but ambiguous
        // for direction, handled below.
        let mut preds: Vec<BlockId> = edges.iter().map(|&(b, _)| b).collect();
        preds.sort();
        preds.dedup();
        if preds.len() != 1 || preds[0] == cur {
            break;
        }
        let p = preds[0];
        if let Term::Br { then_, site, .. } = func.block(p).term {
            path.push((site, then_ == cur));
        }
        cur = p;
    }
    path.reverse();
    path
}

/// Applies a correlated machine to `func`: splits the branch's block to
/// the machine's maximum path depth and returns, for every copy, the
/// static prediction of the matching path state.
///
/// Returns `(copies_with_predictions, split)` — the [`PathSplit`] carries
/// the clone log so origin maps can follow the duplication.
pub fn replicate_correlated(
    func: &mut Function,
    branch_block: BlockId,
    machine: &CorrelatedMachine,
) -> (Vec<(BlockId, bool)>, PathSplit) {
    let depth = machine
        .paths
        .iter()
        .map(|(p, _)| p.len())
        .max()
        .unwrap_or(0);
    if depth == 0 {
        let split = PathSplit {
            branch_copies: vec![branch_block],
            added_blocks: 0,
            clones: Vec::new(),
        };
        return (vec![(branch_block, machine.catch_all)], split);
    }
    let split = split_by_paths(func, branch_block, depth);
    let annotated = split
        .branch_copies
        .iter()
        .map(|&copy| {
            let recent = decision_path(func, copy, depth);
            (copy, machine.predict(&recent))
        })
        .collect();
    (annotated, split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_cfg::PathStep;
    use brepl_ir::{FunctionBuilder, Module, Operand, Value};
    use brepl_sim::{Machine as Sim, RunConfig};

    /// Diamond into a join holding a correlated branch:
    /// b0: br x>0 -> b1 | b2; both jmp b3; b3: br x>0 again (copier).
    fn correlated_module() -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let yes = b.new_block();
        let no = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let c2 = b.gt(x.into(), Operand::imm(0));
        b.br(c2, yes, no);
        b.switch_to(yes);
        b.ret(Some(Operand::imm(1)));
        b.switch_to(no);
        b.ret(Some(Operand::imm(0)));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn split_creates_copy_per_path() {
        let mut m = correlated_module();
        let fid = m.function_by_name("main").unwrap();
        let func = m.function_mut(fid);
        let split = split_by_paths(func, BlockId(3), 1);
        assert_eq!(split.branch_copies.len(), 2);
        assert_eq!(split.added_blocks, 1);
        m.renumber_branches();
        m.verify().unwrap();
        // Each copy has exactly one predecessor now.
        let func = m.function(fid);
        for &(bid, _) in [(BlockId(3), 0usize), (BlockId::from_index(6), 0)].iter() {
            let preds = incoming_edges(func, bid);
            assert_eq!(preds.len(), 1, "copy {bid} should have one pred");
        }
    }

    #[test]
    fn decision_paths_identify_copies() {
        let mut m = correlated_module();
        let fid = m.function_by_name("main").unwrap();
        let func = m.function_mut(fid);
        let split = split_by_paths(func, BlockId(3), 2);
        let func = m.function(fid);
        let mut dirs = Vec::new();
        for &c in &split.branch_copies {
            let path = decision_path(func, c, 2);
            assert_eq!(path.len(), 1, "one decision precedes the join");
            dirs.push(path[0].1);
        }
        dirs.sort();
        assert_eq!(dirs, vec![false, true]);
    }

    #[test]
    fn replicate_correlated_annotates_and_preserves_semantics() {
        let m = correlated_module();
        let machine = CorrelatedMachine {
            paths: vec![
                (
                    vec![PathStep {
                        site: BranchId(0),
                        taken: true,
                    }],
                    true,
                ),
                (
                    vec![PathStep {
                        site: BranchId(0),
                        taken: false,
                    }],
                    false,
                ),
            ],
            catch_all: true,
        };
        let mut transformed = m.clone();
        let fid = transformed.function_by_name("main").unwrap();
        let func = transformed.function_mut(fid);
        let (annotated, split) = replicate_correlated(func, BlockId(3), &machine);
        assert_eq!(annotated.len(), 2);
        assert_eq!(split.added_blocks, 1);
        assert_eq!(split.clones.len(), 1);
        // The clone log's source is the split block; the clone id is fresh.
        assert_eq!(split.clones[0].0, BlockId(3));
        super::super::cleanup::remove_unreachable(func);
        transformed.renumber_branches();
        transformed.verify().unwrap();

        for &arg in &[5i64, -5, 0, 17] {
            let a = Sim::new(&m, RunConfig::default())
                .unwrap()
                .run("main", &[Value::Int(arg)])
                .unwrap();
            let b = Sim::new(&transformed, RunConfig::default())
                .unwrap()
                .run("main", &[Value::Int(arg)])
                .unwrap();
            assert_eq!(a.result, b.result, "arg {arg}");
        }
        // One copy predicts taken, the other not taken.
        let mut preds: Vec<bool> = annotated.iter().map(|&(_, p)| p).collect();
        preds.sort();
        assert_eq!(preds, vec![false, true]);
    }

    #[test]
    fn entry_block_is_never_split() {
        let mut m = correlated_module();
        let fid = m.function_by_name("main").unwrap();
        let func = m.function_mut(fid);
        let split = split_by_paths(func, BlockId(0), 3);
        assert_eq!(split.branch_copies, vec![BlockId(0)]);
        assert_eq!(split.added_blocks, 0);
    }

    #[test]
    fn loops_do_not_diverge() {
        // A self-loop feeding a branch: splitting must terminate.
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let head = b.new_block();
        let after = b.new_block();
        let t = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(x.into(), Operand::imm(10));
        b.br(c, head, after);
        b.switch_to(after);
        let c2 = b.gt(x.into(), Operand::imm(5));
        b.br(c2, t, t);
        b.switch_to(t);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let fid = m.function_by_name("main").unwrap();
        let func = m.function_mut(fid);
        let split = split_by_paths(func, BlockId(2), 4);
        assert!(!split.branch_copies.is_empty());
        m.renumber_branches();
        m.verify().unwrap();
    }
}
