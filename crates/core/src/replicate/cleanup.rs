//! Dead-block removal after rewiring — the paper's Figure 1 discards the
//! replicas "2b" and "3a" because no path leads to them. Reachability
//! comes from `brepl-analysis`, the same computation the `BR001` lint
//! uses, so "cleanup removed it" and "the validator would flag it" can
//! never disagree.

use brepl_analysis::reachable_blocks;
use brepl_ir::{BlockId, Function};

/// Removes blocks unreachable from the entry and compacts the block list.
///
/// Returns the remapping `old block id -> new block id` (`None` for
/// removed blocks).
pub fn remove_unreachable(func: &mut Function) -> Vec<Option<BlockId>> {
    let n = func.blocks.len();
    let reachable = reachable_blocks(func);
    let mut map: Vec<Option<BlockId>> = vec![None; n];
    let mut next = 0u32;
    for i in 0..n {
        if reachable[i] {
            map[i] = Some(BlockId(next));
            next += 1;
        }
    }
    // Compact and rewrite.
    let mut new_blocks = Vec::with_capacity(next as usize);
    for (i, block) in std::mem::take(&mut func.blocks).into_iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let mut block = block;
        block
            .term
            .map_successors(|t| map[t.index()].expect("successor of reachable block is reachable"));
        new_blocks.push(block);
    }
    func.blocks = new_blocks;
    func.entry = map[func.entry.index()].expect("entry is reachable");
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    #[test]
    fn removes_and_remaps() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let dead = b.new_block();
        let live = b.new_block();
        let end = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, live, end);
        b.switch_to(dead);
        b.jmp(end);
        b.switch_to(live);
        b.jmp(end);
        b.switch_to(end);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        let map = remove_unreachable(&mut f);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(map[1], None, "dead block removed");
        assert_eq!(map[0], Some(BlockId(0)));
        assert_eq!(map[2], Some(BlockId(1)));
        assert_eq!(map[3], Some(BlockId(2)));
        // Terminators remapped: entry branch now targets 1 and 2.
        let succs: Vec<_> = f.block(BlockId(0)).term.successors().collect();
        assert_eq!(succs, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn post_cleanup_has_zero_br001() {
        // After cleanup the BR001 lint (unreachable block) must be silent —
        // the lint and the cleanup share the same reachability analysis.
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let dead = b.new_block();
        let dead2 = b.new_block();
        let end = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, end, end);
        b.switch_to(dead);
        b.jmp(dead2);
        b.switch_to(dead2);
        b.jmp(dead);
        b.switch_to(end);
        b.ret(None);
        let mut f = b.finish();
        assert!(!brepl_analysis::unreachable_diags(brepl_ir::FuncId(0), &f).is_empty());
        remove_unreachable(&mut f);
        assert!(brepl_analysis::unreachable_diags(brepl_ir::FuncId(0), &f).is_empty());
    }

    #[test]
    fn fully_reachable_is_identity() {
        let mut b = FunctionBuilder::new("f", 0);
        let next = b.new_block();
        b.jmp(next);
        b.switch_to(next);
        b.ret(None);
        let mut f = b.finish();
        let map = remove_unreachable(&mut f);
        assert_eq!(map, vec![Some(BlockId(0)), Some(BlockId(1))]);
        assert_eq!(f.blocks.len(), 2);
    }
}
