//! The code replication transform: applies a per-branch plan of state
//! machines to a module, producing a replicated module whose branch sites
//! each carry a static prediction.

mod check;
mod cleanup;
mod loop_replicate;
mod path_replicate;
mod simplify;

pub use check::{check_equivalence, check_equivalence_outcomes, EquivalenceError};
pub use cleanup::remove_unreachable;
pub use loop_replicate::{replicate_loop, LoopReplicateError, LoopReplication, MAX_PRODUCT_STATES};
pub use path_replicate::{decision_path, replicate_correlated, split_by_paths, PathSplit};
pub use simplify::{
    simplify_function, simplify_function_tracked, simplify_function_with_map, simplify_module,
    SimplifyStats, SimplifyTrace,
};

pub use brepl_analysis::{ReplicaFuncMap, ReplicaMap};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use brepl_cfg::{Cfg, DomTree, LoopForest, LoopId};
use brepl_ir::{BlockId, BranchId, FuncId, Function, Module, Term};
use brepl_predict::StaticPrediction;
use brepl_trace::TraceStats;

use crate::correlated::CorrelatedMachine;
use crate::machine::StateMachine;

/// The machine assigned to one branch.
#[derive(Clone, Debug)]
pub enum BranchMachine {
    /// Intra-loop or loop-exit machine: replicate the innermost loop that
    /// can carry the machine's history (see `region_loop`).
    Loop(StateMachine),
    /// Correlated machine: tail-duplicate the incoming paths.
    Correlated(CorrelatedMachine),
}

/// A replication plan: which branches get which machines. Keys are branch
/// sites of the *original* module.
#[derive(Clone, Debug, Default)]
pub struct ReplicationPlan {
    /// Per-branch machine assignments.
    pub assignments: BTreeMap<BranchId, BranchMachine>,
}

impl ReplicationPlan {
    /// An empty plan (replication is the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a machine to a branch.
    pub fn assign(&mut self, site: BranchId, machine: BranchMachine) {
        self.assignments.insert(site, machine);
    }

    /// Number of planned branches.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no branches are planned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The plan's history specification: the bare transition table of every
    /// [`BranchMachine::Loop`] assignment, keyed by original site.
    ///
    /// This is the input to the witness-independent checker
    /// ([`brepl_analysis::check_history`]): it is derived from the
    /// transform's *input*, never from the `ReplicaMap` the transform
    /// emits. Correlated machines have no state-transition table — their
    /// tail-duplicated paths are covered by the witness validator's BR006
    /// check and by the exact cost replay.
    pub fn history_spec(&self) -> brepl_analysis::HistorySpec {
        let mut spec = brepl_analysis::HistorySpec::new();
        for (&site, machine) in &self.assignments {
            if let BranchMachine::Loop(m) = machine {
                spec.insert(site, m.to_table());
            }
        }
        spec
    }
}

/// Why a plan could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicateError {
    /// A planned site does not exist in the module.
    UnknownBranch(BranchId),
    /// A loop machine was assigned to a branch outside any loop.
    NotInLoop(BranchId),
    /// The loop replication failed (state cap and friends).
    Loop(String),
}

impl fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicateError::UnknownBranch(s) => write!(f, "no branch with site {s}"),
            ReplicateError::NotInLoop(s) => {
                write!(f, "loop machine assigned to non-loop branch {s}")
            }
            ReplicateError::Loop(e) => write!(f, "loop replication failed: {e}"),
        }
    }
}

impl std::error::Error for ReplicateError {}

/// The output of [`apply_plan`].
#[derive(Clone, Debug)]
pub struct ReplicatedProgram {
    /// The transformed module (verified, branch sites renumbered).
    pub module: Module,
    /// Static per-site predictions for the transformed module: machine
    /// states where planned, profile majority elsewhere.
    pub predictions: StaticPrediction,
    /// `provenance[new_site] = original site` the branch was copied from.
    pub provenance: Vec<BranchId>,
    /// The witness for static translation validation: per replica block,
    /// the chain of original blocks it carries and the machine-pinned
    /// prediction, if any (see [`brepl_analysis::validate_replication`]).
    pub replica_map: ReplicaMap,
}

impl ReplicatedProgram {
    /// Code-size growth factor relative to `original`.
    pub fn size_growth(&self, original: &Module) -> f64 {
        self.module.size_units() as f64 / original.size_units() as f64
    }
}

/// The replication region for a loop machine controlling the branch in
/// `bid`: the innermost containing loop that can carry the machine's
/// history.
///
/// `replicate_loop` keeps the original target for any leg leaving the
/// replicated region, which lands re-entries on the initial state's copy
/// — the machine step of that leg is dropped. Starting from the branch's
/// innermost loop, this walks up the nest until every leg either stays
/// inside the region, resets the machine (`next(q, leg) == initial` for
/// all `q`, so the dropped step coincides with the re-entry reset), or
/// leaves every loop containing the branch (control then never returns
/// to the branch, so the lost state is irrelevant). Without the walk, a
/// machine whose non-reset leg exits the innermost loop — e.g. one
/// counting consecutive takens of a loop-exit branch across iterations
/// of the *enclosing* loop — degenerates: its non-initial copies are
/// unreachable and every surviving copy pins the initial state's
/// prediction, silently diverging from the plan.
///
/// Returns `None` when the branch is in no loop at all.
fn region_loop(
    func: &Function,
    forest: &LoopForest,
    bid: BlockId,
    machine: &StateMachine,
) -> Option<LoopId> {
    let mut cur = forest.innermost(bid)?;
    let Term::Br { then_, else_, .. } = &func.block(bid).term else {
        return Some(cur);
    };
    let mut top = cur;
    while let Some(p) = forest.get(top).parent {
        top = p;
    }
    let resets =
        |taken: bool| (0..machine.len()).all(|q| machine.next(q, taken) == machine.initial());
    let legs = [(*then_, true), (*else_, false)];
    loop {
        let l = forest.get(cur);
        let carried = legs
            .iter()
            .all(|&(t, taken)| l.contains(t) || resets(taken) || !forest.get(top).contains(t));
        if carried {
            return Some(cur);
        }
        match l.parent {
            Some(p) => cur = p,
            None => return Some(cur),
        }
    }
}

/// Applies `plan` to a copy of `module`. `profile` supplies the fallback
/// profile predictions for unplanned branches (use the stats of the
/// profiling trace).
///
/// # Errors
///
/// Returns a [`ReplicateError`] if a planned site is missing, a loop
/// machine targets a non-loop branch, or a loop's product state space
/// exceeds [`MAX_PRODUCT_STATES`].
pub fn apply_plan(
    module: &Module,
    plan: &ReplicationPlan,
    profile: &TraceStats,
) -> Result<ReplicatedProgram, ReplicateError> {
    let mut out = module.clone();

    // Locate planned branches: site -> (func, block).
    let mut loop_branches: HashMap<FuncId, Vec<(BlockId, BranchId)>> = HashMap::new();
    let mut corr_branches: HashMap<FuncId, Vec<(BlockId, BranchId)>> = HashMap::new();
    for (&site, machine) in &plan.assignments {
        let (fid, bid) = out
            .locate_branch(site)
            .ok_or(ReplicateError::UnknownBranch(site))?;
        match machine {
            BranchMachine::Loop(_) => loop_branches.entry(fid).or_default().push((bid, site)),
            BranchMachine::Correlated(_) => corr_branches.entry(fid).or_default().push((bid, site)),
        }
    }

    // Predictions tracked per (func, block) through all transforms.
    let mut pending: HashMap<(FuncId, BlockId), bool> = HashMap::new();

    let fids: Vec<FuncId> = out.iter_functions().map(|(f, _)| f).collect();
    let mut fn_maps: Vec<ReplicaFuncMap> = Vec::with_capacity(fids.len());
    for fid in fids {
        // Origin chains for this function: replica block -> the original
        // blocks whose instruction streams it carries, maintained through
        // every transform below. This is the witness the translation
        // validator checks the simulation relation against.
        let mut org: Vec<Vec<BlockId>> = (0..out.function(fid).blocks.len())
            .map(|i| vec![BlockId::from_index(i)])
            .collect();

        // --- Loop machines, deepest regions first -----------------------
        let mut todo: Vec<(BlockId, BranchId)> = loop_branches.remove(&fid).unwrap_or_default();
        while !todo.is_empty() {
            let func = out.function_mut(fid);
            let cfg = Cfg::new(func);
            let dom = DomTree::new(&cfg);
            let forest = LoopForest::new(&cfg, &dom);

            // Each branch's replication region, then the deepest among
            // the remaining branches.
            let machine_of = |site: BranchId| -> &StateMachine {
                match &plan.assignments[&site] {
                    BranchMachine::Loop(m) => m,
                    BranchMachine::Correlated(_) => unreachable!("loop_branches holds Loop sites"),
                }
            };
            let mut regions: Vec<LoopId> = Vec::with_capacity(todo.len());
            for &(bid, site) in &todo {
                let Some(l) = region_loop(func, &forest, bid, machine_of(site)) else {
                    return Err(ReplicateError::NotInLoop(site));
                };
                regions.push(l);
            }
            let mut best: Option<(usize, u32)> = None; // (todo idx, depth)
            for (i, &l) in regions.iter().enumerate() {
                let depth = forest.get(l).depth;
                match best {
                    Some((_, d)) if d >= depth => {}
                    _ => best = Some((i, depth)),
                }
            }
            let (idx, _) = best.expect("todo not empty");
            let target_loop = regions[idx];
            let loop_blocks = forest.get(target_loop).blocks.clone();

            // All remaining branches with this same region replicate
            // together (product machine), as the paper prescribes for
            // same-loop branches.
            let mut group: Vec<(BlockId, BranchId)> = Vec::new();
            let mut rest: Vec<(BlockId, BranchId)> = Vec::new();
            for (i, &entry) in todo.iter().enumerate() {
                if regions[i] == target_loop {
                    group.push(entry);
                } else {
                    rest.push(entry);
                }
            }
            todo = rest;

            let mut machines: Vec<(BlockId, &StateMachine)> = group
                .iter()
                .map(|&(bid, site)| match &plan.assignments[&site] {
                    BranchMachine::Loop(m) => (bid, m),
                    BranchMachine::Correlated(_) => unreachable!("partitioned above"),
                })
                .collect();
            // Same-loop machines multiply the state space; when the product
            // overflows the cap, shed the largest machines — those branches
            // simply stay at profile prediction, which is what a compiler's
            // cost function would do.
            while machines.len() > 1
                && machines.iter().map(|(_, m)| m.len()).product::<usize>() > MAX_PRODUCT_STATES
            {
                let worst = machines
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (_, m))| m.len())
                    .map(|(i, _)| i)
                    .expect("non-empty");
                machines.remove(worst);
            }
            if machines.len() == 1 && machines[0].1.len() > MAX_PRODUCT_STATES {
                continue;
            }
            let info = replicate_loop(func, &loop_blocks, &machines)
                .map_err(|e| ReplicateError::Loop(e.to_string()))?;

            // Propagate existing pending predictions into the new copies,
            // and track clones of correlated branches so their path
            // machines later apply to *every* copy, not just the original.
            let mut new_pending: Vec<((FuncId, BlockId), bool)> = Vec::new();
            let mut corr_clones: Vec<(BlockId, BranchId)> = Vec::new();
            org.resize(out.function(fid).blocks.len(), Vec::new());
            for state_map in &info.copies {
                for &(orig, copy) in state_map {
                    if copy == orig {
                        continue;
                    }
                    // Copies inherit their source block's origin chain.
                    org[copy.index()] = org[orig.index()].clone();
                    if let Some(&p) = pending.get(&(fid, orig)) {
                        new_pending.push(((fid, copy), p));
                    }
                    if let Some(cb) = corr_branches.get(&fid) {
                        for &(bid, site) in cb {
                            if bid == orig {
                                corr_clones.push((copy, site));
                            }
                        }
                    }
                }
            }
            pending.extend(new_pending);
            if !corr_clones.is_empty() {
                corr_branches.entry(fid).or_default().extend(corr_clones);
            }
            for &(bid, p) in &info.branch_predictions {
                pending.insert((fid, bid), p);
            }

            // Cleanup and remap everything we still track.
            let map = remove_unreachable(out.function_mut(fid));
            remap_pending(fid, &map, &mut pending);
            remap_blocks(&map, &mut todo);
            remap_origins(&map, &mut org);
            if let Some(cb) = corr_branches.get_mut(&fid) {
                remap_blocks(&map, cb);
            }
        }

        // --- Correlated machines ----------------------------------------
        // Loop replication above may have multiplied these branch blocks;
        // every copy gets its path machine. The worklist is remapped after
        // each transform's cleanup.
        let mut corr_todo: Vec<(BlockId, BranchId)> =
            corr_branches.remove(&fid).unwrap_or_default();
        while let Some((bid, site)) = corr_todo.pop() {
            let BranchMachine::Correlated(machine) = &plan.assignments[&site] else {
                unreachable!("partitioned above")
            };
            let func = out.function_mut(fid);
            let (annotated, split) = replicate_correlated(func, bid, machine);
            // Replay the clone log: each clone inherits its source's
            // chain. Sources precede their clones, so front-to-back works.
            // A clone also inherits its source's machine-pinned prediction:
            // tail duplication places the copy on one incoming path of the
            // source, so the machine states reaching the clone are a subset
            // of those reaching the source and the pin stays consistent.
            // (Dropping the pin here silently reverted such clones to the
            // profile-majority prediction — and hid them from the witness
            // validator, whose machine_predictions entry went None with it.)
            for &(src, id) in &split.clones {
                debug_assert_eq!(id.index(), org.len(), "clone log is in push order");
                let chain = org[src.index()].clone();
                org.push(chain);
                if let Some(&p) = pending.get(&(fid, src)) {
                    pending.insert((fid, id), p);
                }
            }
            for (copy, p) in annotated {
                pending.insert((fid, copy), p);
            }
            let map = remove_unreachable(out.function_mut(fid));
            remap_pending(fid, &map, &mut pending);
            remap_blocks(&map, &mut corr_todo);
            remap_origins(&map, &mut org);
        }

        // --- Jump threading / block merging (Mueller–Whalley style) -----
        // Replication leaves pruned arms and empty jump blocks behind; a
        // real code generator would clean these up, so the size growth we
        // report should too. Simplification never touches a conditional
        // branch, only where it lives.
        let (_, strace) = simplify::simplify_function_tracked(out.function_mut(fid));
        // A merge concatenates the donor's instruction stream onto the
        // absorber — origin chains concatenate the same way.
        for &(a, t) in &strace.merges {
            let chain = std::mem::take(&mut org[t.index()]);
            org[a.index()].extend(chain);
        }
        remap_origins(&strace.cleanup, &mut org);
        remap_pending(fid, &strace.block_map(), &mut pending);

        // This function is final now (renumbering below does not move
        // blocks); record its origin chains and machine predictions.
        let n_blocks = out.function(fid).blocks.len();
        debug_assert_eq!(org.len(), n_blocks);
        fn_maps.push(ReplicaFuncMap {
            origins: org,
            machine_predictions: (0..n_blocks)
                .map(|i| pending.get(&(fid, BlockId::from_index(i))).copied())
                .collect(),
        });
    }

    // Final numbering + prediction table.
    let provenance = out.renumber_branches_with_provenance();
    out.verify().expect("replication must produce valid IR");
    let mut predictions = StaticPrediction::with_default(true);
    let mut counter = 0u32;
    for (fid, func) in out.iter_functions() {
        for (bid, block) in func.iter_blocks() {
            if block.term.branch_site().is_none() {
                continue;
            }
            let new_site = BranchId(counter);
            counter += 1;
            let p = match pending.get(&(fid, bid)) {
                Some(&p) => p,
                None => {
                    let orig = provenance[new_site.index()];
                    profile.site(orig).majority()
                }
            };
            predictions.set(new_site, p);
        }
    }

    Ok(ReplicatedProgram {
        module: out,
        predictions,
        provenance,
        replica_map: ReplicaMap { functions: fn_maps },
    })
}

/// Remaps per-block origin chains through a cleanup block map.
fn remap_origins(map: &[Option<BlockId>], org: &mut Vec<Vec<BlockId>>) {
    let n_new = map.iter().flatten().count();
    let mut new_org: Vec<Vec<BlockId>> = vec![Vec::new(); n_new];
    for (i, chain) in std::mem::take(org).into_iter().enumerate() {
        if let Some(&Some(nb)) = map.get(i) {
            new_org[nb.index()] = chain;
        }
    }
    *org = new_org;
}

/// Remaps the `pending` prediction keys of one function through a cleanup
/// block map. Must be called exactly once per cleanup.
fn remap_pending(
    fid: FuncId,
    map: &[Option<BlockId>],
    pending: &mut HashMap<(FuncId, BlockId), bool>,
) {
    let old: Vec<((FuncId, BlockId), bool)> = pending
        .iter()
        .filter(|((f, _), _)| *f == fid)
        .map(|(&k, &v)| (k, v))
        .collect();
    for ((f, b), _) in &old {
        pending.remove(&(*f, *b));
    }
    for ((f, b), v) in old {
        if let Some(Some(nb)) = map.get(b.index()) {
            pending.insert((f, *nb), v);
        }
    }
}

/// Remaps a tracked `(block, site)` worklist through a cleanup block map,
/// dropping entries whose block became unreachable.
fn remap_blocks(map: &[Option<BlockId>], blocks: &mut Vec<(BlockId, BranchId)>) {
    blocks.retain_mut(|(b, _)| match map.get(b.index()) {
        Some(Some(nb)) => {
            *b = *nb;
            true
        }
        _ => false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineState;
    use crate::pattern::HistPattern;
    use brepl_ir::{FunctionBuilder, Operand, Value};
    use brepl_predict::evaluate_static;
    use brepl_sim::{Machine as Sim, RunConfig};

    /// Loop over i in 0..n with an alternating branch and an exit branch.
    fn alternating_module() -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd);
        b.switch_to(even);
        b.add(acc, acc.into(), Operand::imm(3));
        b.jmp(latch);
        b.switch_to(odd);
        b.add(acc, acc.into(), Operand::imm(5));
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), n.into());
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    fn flip_flop() -> StateMachine {
        StateMachine::from_states(
            vec![
                MachineState {
                    pattern: HistPattern::parse("0").unwrap(),
                    predict: true,
                    on_taken: 1,
                    on_not_taken: 0,
                },
                MachineState {
                    pattern: HistPattern::parse("1").unwrap(),
                    predict: false,
                    on_taken: 1,
                    on_not_taken: 0,
                },
            ],
            0,
        )
    }

    #[test]
    fn empty_plan_is_identity_modulo_numbering() {
        let m = alternating_module();
        let trace = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(50)])
            .unwrap()
            .trace;
        let program = apply_plan(&m, &ReplicationPlan::new(), &trace.stats()).unwrap();
        assert_eq!(program.module.size_units(), m.size_units());
        assert_eq!(program.size_growth(&m), 1.0);
        // Predictions are profile majorities.
        let report = evaluate_static(&program.predictions, &trace);
        let profile_wrong: u64 = trace
            .stats()
            .iter_executed()
            .map(|(_, c)| c.minority_count())
            .sum();
        assert_eq!(report.mispredictions(), profile_wrong);
    }

    #[test]
    fn planned_loop_replication_halves_mispredictions() {
        let m = alternating_module();
        let args = [Value::Int(100)];
        let original = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &args)
            .unwrap();
        let stats = original.trace.stats();

        // The alternating branch is site 0 (first branch of the function).
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
        let program = apply_plan(&m, &plan, &stats).unwrap();
        check_equivalence(&m, &program, "main", &args, &[]).unwrap();

        let transformed = Sim::new(&program.module, RunConfig::default())
            .unwrap()
            .run("main", &args)
            .unwrap();
        let report = evaluate_static(&program.predictions, &transformed.trace);
        // Original profile: ~50 wrong (alternation) + 1 (exit).
        // Replicated: only the exit miss remains.
        assert!(report.mispredictions() <= 1);
        assert!(program.size_growth(&m) > 1.0);
        assert!(program.size_growth(&m) < 2.0);
    }

    #[test]
    fn machine_advancing_on_inner_loop_exit_widens_region() {
        // Nested loops shaped like compress's scan loop: the controlled
        // branch A heads the inner loop, but its taken leg exits to C in
        // the enclosing loop, and the machine advances on taken. The
        // innermost loop alone cannot carry that history (the step would
        // be dropped at the region boundary and every copy would pin the
        // initial state), so the region must widen to the outer loop.
        //
        //   h: br -> A | exit      (outer header)
        //   A: br -> C | B         (inner header, machine-controlled)
        //   B: br -> h | A         (inner latch / outer latch)
        //   C: jmp h               (outer blocks only)
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        let acc = b.reg();
        b.const_int(i, 0);
        b.const_int(acc, 0);
        let h = b.new_block();
        let a = b.new_block();
        let bb = b.new_block();
        let c = b.new_block();
        let exit = b.new_block();
        b.jmp(h);
        b.switch_to(h);
        let c1 = b.lt(i.into(), Operand::imm(30));
        b.br(c1, a, exit);
        b.switch_to(a);
        b.add(i, i.into(), Operand::imm(1));
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(3));
        let c2 = b.eq(r.into(), Operand::imm(0));
        b.br(c2, c, bb);
        b.switch_to(bb);
        let r2 = b.reg();
        b.rem(r2, i.into(), Operand::imm(2));
        let c3 = b.eq(r2.into(), Operand::imm(0));
        b.br(c3, h, a);
        b.switch_to(c);
        b.add(acc, acc.into(), Operand::imm(1));
        b.jmp(h);
        b.switch_to(exit);
        b.out(acc.into());
        b.ret(Some(acc.into()));
        let mut m = Module::new();
        m.push_function(b.finish());

        // Predict taken only after two consecutive takens of A; on_taken
        // advances, so the exit leg must stay inside the region.
        let machine = StateMachine::from_states(
            vec![
                MachineState {
                    pattern: HistPattern::parse("0").unwrap(),
                    predict: false,
                    on_taken: 1,
                    on_not_taken: 0,
                },
                MachineState {
                    pattern: HistPattern::parse("01").unwrap(),
                    predict: false,
                    on_taken: 2,
                    on_not_taken: 0,
                },
                MachineState {
                    pattern: HistPattern::parse("11").unwrap(),
                    predict: true,
                    on_taken: 2,
                    on_not_taken: 0,
                },
            ],
            0,
        );

        let stats = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap()
            .trace
            .stats();
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(1), BranchMachine::Loop(machine));
        let program = apply_plan(&m, &plan, &stats).unwrap();
        check_equivalence(&m, &program, "main", &[], &[]).unwrap();

        // The witness-independent checker re-derives the per-copy states;
        // before region widening it reported BR009/BR010 here, because the
        // non-initial copies were unreachable and every surviving copy
        // pinned the initial state's prediction.
        let diags = brepl_analysis::check_history(
            &program.module,
            &program.provenance,
            &plan.history_spec(),
            &program.predictions,
        );
        assert!(diags.is_empty(), "history check must pass: {diags:?}");

        // The predict-taken state is realized by some copy.
        let f = program
            .module
            .function(program.module.function_by_name("main").unwrap());
        let has_taken_pin = f.iter_blocks().any(|(_, block)| {
            block.term.branch_site().is_some_and(|s| {
                program.provenance[s.index()] == BranchId(1) && program.predictions.get(s)
            })
        });
        assert!(has_taken_pin, "no copy pins the machine's taken state");
    }

    #[test]
    fn replica_map_passes_static_validation() {
        let m = alternating_module();
        let args = [Value::Int(100)];
        let stats = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &args)
            .unwrap()
            .trace
            .stats();
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
        let program = apply_plan(&m, &plan, &stats).unwrap();
        let diags = brepl_analysis::validate_replication(
            &m,
            &program.module,
            &program.replica_map,
            &program.predictions,
        );
        assert!(
            !brepl_analysis::has_errors(&diags),
            "static validation failed: {diags:?}"
        );
    }

    #[test]
    fn empty_plan_replica_map_is_identity_and_validates() {
        let m = alternating_module();
        let stats = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(10)])
            .unwrap()
            .trace
            .stats();
        let program = apply_plan(&m, &ReplicationPlan::new(), &stats).unwrap();
        assert_eq!(program.replica_map, ReplicaMap::identity(&m));
        let diags = brepl_analysis::validate_replication(
            &m,
            &program.module,
            &program.replica_map,
            &program.predictions,
        );
        assert!(diags.is_empty(), "identity must validate clean: {diags:?}");
    }

    #[test]
    fn correlated_replication_passes_static_validation() {
        // Diamond into a join holding a correlated branch: the second
        // branch repeats the first's condition, so path depth 1 predicts
        // it perfectly.
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let yes = b.new_block();
        let no = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let c2 = b.gt(x.into(), Operand::imm(0));
        b.br(c2, yes, no);
        b.switch_to(yes);
        b.ret(Some(Operand::imm(1)));
        b.switch_to(no);
        b.ret(Some(Operand::imm(0)));
        let mut m = Module::new();
        m.push_function(b.finish());

        let args = [Value::Int(5)];
        let stats = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &args)
            .unwrap()
            .trace
            .stats();
        let machine = CorrelatedMachine {
            paths: vec![
                (
                    vec![brepl_cfg::PathStep {
                        site: BranchId(0),
                        taken: true,
                    }],
                    true,
                ),
                (
                    vec![brepl_cfg::PathStep {
                        site: BranchId(0),
                        taken: false,
                    }],
                    false,
                ),
            ],
            catch_all: true,
        };
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(1), BranchMachine::Correlated(machine));
        let program = apply_plan(&m, &plan, &stats).unwrap();
        check_equivalence(&m, &program, "main", &args, &[]).unwrap();
        let diags = brepl_analysis::validate_replication(
            &m,
            &program.module,
            &program.replica_map,
            &program.predictions,
        );
        assert!(
            !brepl_analysis::has_errors(&diags),
            "static validation failed: {diags:?}"
        );
    }

    #[test]
    fn provenance_maps_copies_to_original() {
        let m = alternating_module();
        let trace = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(20)])
            .unwrap()
            .trace;
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
        let program = apply_plan(&m, &plan, &trace.stats()).unwrap();
        // Two copies of site 0 exist; every provenance entry is 0 or 1.
        let zeros = program
            .provenance
            .iter()
            .filter(|&&p| p == BranchId(0))
            .count();
        assert_eq!(zeros, 2);
        assert_eq!(program.provenance.len(), program.module.branch_count());
    }

    #[test]
    fn unknown_site_rejected() {
        let m = alternating_module();
        let trace = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(4)])
            .unwrap()
            .trace;
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(99), BranchMachine::Loop(flip_flop()));
        assert_eq!(
            apply_plan(&m, &plan, &trace.stats()).unwrap_err(),
            ReplicateError::UnknownBranch(BranchId(99))
        );
    }

    #[test]
    fn non_loop_branch_rejected_for_loop_machine() {
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let trace = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(1)])
            .unwrap()
            .trace;
        let mut plan = ReplicationPlan::new();
        plan.assign(BranchId(0), BranchMachine::Loop(flip_flop()));
        assert_eq!(
            apply_plan(&m, &plan, &trace.stats()).unwrap_err(),
            ReplicateError::NotInLoop(BranchId(0))
        );
    }
}
