//! Dynamic semantic-equivalence checking between an original module and
//! its replicated version: replication must change *where* branches live,
//! not what the program does.
//!
//! This is the *backstop* behind the static translation validator
//! ([`brepl_analysis::validate_replication`]), which proves the simulation
//! relation on every block without executing anything. One concrete run
//! here still catches whatever a wrong witness map could hide.

use std::fmt;

use brepl_ir::{Module, Value};
use brepl_sim::{Machine, Outcome, RunConfig, RunError};
use brepl_trace::Trace;

use super::ReplicatedProgram;

/// An observed difference between original and replicated program.
#[derive(Clone, Debug, PartialEq)]
pub enum EquivalenceError {
    /// One of the runs trapped.
    Trap(String),
    /// Return values differ.
    ResultMismatch {
        /// Original program's result.
        original: Option<Value>,
        /// Replicated program's result.
        replicated: Option<Value>,
    },
    /// Output tapes differ.
    OutputMismatch,
    /// The replicated program executed *more* instructions — replication
    /// only relocates instructions, and the post-replication jump
    /// threading can only remove executed jumps, never add work.
    StepMismatch {
        /// Original step count.
        original: u64,
        /// Replicated step count.
        replicated: u64,
    },
    /// The per-original-site branch outcome counts differ (checked through
    /// the provenance map).
    BranchHistogramMismatch,
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::Trap(e) => write!(f, "a run trapped: {e}"),
            EquivalenceError::ResultMismatch {
                original,
                replicated,
            } => write!(f, "results differ: {original:?} vs {replicated:?}"),
            EquivalenceError::OutputMismatch => write!(f, "output tapes differ"),
            EquivalenceError::StepMismatch {
                original,
                replicated,
            } => write!(f, "step counts differ: {original} vs {replicated}"),
            EquivalenceError::BranchHistogramMismatch => {
                write!(f, "per-site branch histograms differ")
            }
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// Runs both programs on the same input and verifies result, output tape
/// and the per-original-site branch histogram all match, and that the
/// replicated program executes no more instructions than the original.
///
/// # Errors
///
/// Returns the first [`EquivalenceError`] found.
pub fn check_equivalence(
    original: &Module,
    replicated: &ReplicatedProgram,
    entry: &str,
    args: &[Value],
    input: &[Value],
) -> Result<(), EquivalenceError> {
    let run = |module: &Module| -> Result<_, RunError> {
        let mut m = Machine::new(module, RunConfig::default())?;
        m.set_input(input.to_vec());
        let outcome = m.run(entry, args)?;
        Ok((outcome, m.output().to_vec()))
    };
    let (a, a_out) = run(original).map_err(|e| EquivalenceError::Trap(e.to_string()))?;
    let (b, b_out) = run(&replicated.module).map_err(|e| EquivalenceError::Trap(e.to_string()))?;
    check_equivalence_outcomes(replicated, &a, &a_out, &b, &b_out)
}

/// [`check_equivalence`] on already-measured runs.
///
/// Callers that have just executed both programs (the pipeline profiles
/// the original and re-measures every replicated candidate anyway) pass
/// the outcomes and output tapes here instead of paying two more
/// full-length simulations — execution is deterministic, so the verdict
/// is identical either way.
///
/// # Errors
///
/// Returns the first [`EquivalenceError`] found.
pub fn check_equivalence_outcomes(
    replicated: &ReplicatedProgram,
    original_outcome: &Outcome,
    original_output: &[Value],
    replicated_outcome: &Outcome,
    replicated_output: &[Value],
) -> Result<(), EquivalenceError> {
    let (a, b) = (original_outcome, replicated_outcome);
    if a.result != b.result {
        return Err(EquivalenceError::ResultMismatch {
            original: a.result,
            replicated: b.result,
        });
    }
    if original_output != replicated_output {
        return Err(EquivalenceError::OutputMismatch);
    }
    if b.steps > a.steps {
        return Err(EquivalenceError::StepMismatch {
            original: a.steps,
            replicated: b.steps,
        });
    }
    if !histograms_match(&a.trace, &b.trace, &replicated.provenance) {
        return Err(EquivalenceError::BranchHistogramMismatch);
    }
    Ok(())
}

/// Compares per-original-site `(taken, not-taken)` histograms, the
/// replicated side folded through `provenance`. One branch-free pass over
/// each packed trace into dense per-site arrays — no per-event hashing.
fn histograms_match(
    original: &Trace,
    replicated: &Trace,
    provenance: &[brepl_ir::BranchId],
) -> bool {
    let n_sites = original
        .max_site()
        .map_or(0, |s| s.index() + 1)
        .max(provenance.iter().map(|p| p.index() + 1).max().unwrap_or(0));
    let mut orig_hist = vec![[0u64; 2]; n_sites];
    for &p in original.packed() {
        orig_hist[(p >> 1) as usize][(p & 1) as usize] += 1;
    }
    let mut repl_hist = vec![[0u64; 2]; n_sites];
    for &p in replicated.packed() {
        let Some(orig) = provenance.get((p >> 1) as usize) else {
            // A replicated site outside the provenance map cannot have an
            // original counterpart; the histograms cannot match.
            return false;
        };
        repl_hist[orig.index()][(p & 1) as usize] += 1;
    }
    orig_hist == repl_hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::{apply_plan, ReplicationPlan};
    use brepl_ir::{FunctionBuilder, Operand};

    fn loop_module(step: i64) -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), n.into());
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(step));
        b.jmp(head);
        b.switch_to(exit);
        b.out(i.into());
        b.ret(Some(i.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn identical_modules_are_equivalent() {
        let m = loop_module(1);
        let trace = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(10)])
            .unwrap()
            .trace;
        let program = apply_plan(&m, &ReplicationPlan::new(), &trace.stats()).unwrap();
        check_equivalence(&m, &program, "main", &[Value::Int(10)], &[]).unwrap();
    }

    #[test]
    fn detects_result_mismatch() {
        let m = loop_module(1);
        let other = loop_module(3);
        let trace = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(10)])
            .unwrap()
            .trace;
        let mut program = apply_plan(&m, &ReplicationPlan::new(), &trace.stats()).unwrap();
        program.module = other;
        // step=3 overshoots to 12 instead of 10.
        let err = check_equivalence(&m, &program, "main", &[Value::Int(10)], &[]).unwrap_err();
        assert!(matches!(err, EquivalenceError::ResultMismatch { .. }));
    }

    #[test]
    fn detects_extra_work() {
        // A module doing strictly more steps with identical observables.
        let m = loop_module(1);
        let mut padded = loop_module(1);
        // Inject a harmless extra instruction into the loop body.
        let fid = padded.function_by_name("main").unwrap();
        let f = padded.function_mut(fid);
        let spare = brepl_ir::Reg(f.n_regs);
        f.n_regs += 1;
        f.blocks[2].insts.push(brepl_ir::Inst::Copy {
            dst: spare,
            src: brepl_ir::Operand::imm(0),
        });
        let trace = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(10)])
            .unwrap()
            .trace;
        let mut program = apply_plan(&m, &ReplicationPlan::new(), &trace.stats()).unwrap();
        program.module = padded;
        let err = check_equivalence(&m, &program, "main", &[Value::Int(10)], &[]).unwrap_err();
        assert!(matches!(err, EquivalenceError::StepMismatch { .. }));
    }
}
