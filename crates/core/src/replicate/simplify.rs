//! Post-replication cleanup in the spirit of Mueller & Whalley's jump
//! elimination: replication leaves chains of jump-only blocks behind
//! (pruned arms, split edges); threading them away shrinks the replicated
//! code without touching any branch site, so the size numbers reported by
//! the pipeline are the ones a real code generator would see.

use brepl_ir::{BlockId, Function, Term};

use super::cleanup::remove_unreachable;

/// Statistics from one simplification run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Edges redirected past empty jump-only blocks.
    pub threaded_edges: usize,
    /// Straight-line block pairs merged.
    pub merged_blocks: usize,
    /// Blocks removed (unreachable after threading).
    pub removed_blocks: usize,
}

/// What simplification did to the block structure, in enough detail to
/// replay it over any per-block side table (origin chains, predictions).
#[derive(Clone, Debug, Default)]
pub struct SimplifyTrace {
    /// Straight-line merges `(absorber, donor)` in the order they were
    /// performed: the donor's instruction stream was appended to the
    /// absorber. Replay front to back — an absorber may later donate.
    pub merges: Vec<(BlockId, BlockId)>,
    /// The final unreachable-block cleanup map, indexed by pre-cleanup
    /// block id (block count is unchanged by threading and merging).
    pub cleanup: Vec<Option<BlockId>>,
}

impl SimplifyTrace {
    /// Composes the merge log and cleanup into a single map: `map[old] =
    /// Some(new)` says old block's contents (in particular its terminator)
    /// live in `new`; `None` means the block became unreachable.
    pub fn block_map(&self) -> Vec<Option<BlockId>> {
        let mut home: Vec<usize> = (0..self.cleanup.len()).collect();
        for &(a, t) in &self.merges {
            for h in home.iter_mut() {
                if *h == t.index() {
                    *h = a.index();
                }
            }
        }
        home.into_iter()
            .map(|h| self.cleanup.get(h).copied().flatten())
            .collect()
    }
}

/// Threads edges through empty jump-only blocks and merges straight-line
/// block pairs, then removes unreachable blocks. Conditional branches and
/// their site ids are never touched, so predictions and provenance remain
/// valid.
pub fn simplify_function(func: &mut Function) -> SimplifyStats {
    simplify_function_tracked(func).0
}

/// Like [`simplify_function`], additionally returning where each original
/// block ended up: `map[old] = Some(new)` (merges map the donor block to
/// its absorbing block; unreachable blocks map to `None`). Callers that
/// track per-block annotations — the replication pipeline tracks branch
/// predictions — remap through this.
pub fn simplify_function_with_map(func: &mut Function) -> (SimplifyStats, Vec<Option<BlockId>>) {
    let (stats, trace) = simplify_function_tracked(func);
    let map = trace.block_map();
    (stats, map)
}

/// Like [`simplify_function`], additionally returning the full
/// [`SimplifyTrace`]. The replicator replays the merge log over its origin
/// chains (a merge concatenates the donor's chain onto the absorber's),
/// which the composed map of [`simplify_function_with_map`] cannot express.
pub fn simplify_function_tracked(func: &mut Function) -> (SimplifyStats, SimplifyTrace) {
    let mut stats = SimplifyStats::default();
    let mut trace = SimplifyTrace::default();

    // --- 1. Jump threading: resolve chains of empty `jmp` blocks. -------
    let n = func.blocks.len();
    let mut forward: Vec<BlockId> = (0..n).map(BlockId::from_index).collect();
    #[allow(clippy::needless_range_loop)]
    for b in 0..n {
        // Follow the chain from b with cycle protection.
        let mut cur = BlockId::from_index(b);
        let mut hops = 0;
        while hops < n {
            let block = func.block(cur);
            match block.term {
                Term::Jmp { target } if block.insts.is_empty() && target != cur => {
                    cur = target;
                    hops += 1;
                }
                _ => break,
            }
        }
        forward[b] = cur;
    }
    for b in 0..n {
        let mut changed = 0;
        func.blocks[b].term.map_successors(|t| {
            let f = forward[t.index()];
            if f != t {
                changed += 1;
            }
            f
        });
        stats.threaded_edges += changed;
    }
    // The entry may itself be an empty jump chain.
    let fwd_entry = forward[func.entry.index()];
    if fwd_entry != func.entry {
        func.entry = fwd_entry;
    }

    // --- 2. Merge straight-line pairs: `a: ...; jmp b` where b has a
    // single predecessor. -------------------------------------------------
    loop {
        // Count predecessors.
        let n = func.blocks.len();
        let mut pred_count = vec![0usize; n];
        for block in &func.blocks {
            for s in block.term.successors() {
                pred_count[s.index()] += 1;
            }
        }
        let mut merged_any = false;
        for a in 0..n {
            let Term::Jmp { target } = func.blocks[a].term else {
                continue;
            };
            let t = target.index();
            if t == a || pred_count[t] != 1 || target == func.entry {
                continue;
            }
            // Move b's instructions and terminator into a.
            let mut donor_insts = std::mem::take(&mut func.blocks[t].insts);
            let donor_term = func.blocks[t].term.clone();
            func.blocks[a].insts.append(&mut donor_insts);
            func.blocks[a].term = donor_term;
            // Leave b as an unreachable empty return; cleanup removes it.
            func.blocks[t].term = Term::Ret { value: None };
            trace
                .merges
                .push((BlockId::from_index(a), BlockId::from_index(t)));
            stats.merged_blocks += 1;
            merged_any = true;
            break; // recompute predecessor counts from scratch
        }
        if !merged_any {
            break;
        }
    }

    // --- 3. Drop whatever became unreachable. ----------------------------
    let before = func.blocks.len();
    trace.cleanup = remove_unreachable(func);
    stats.removed_blocks = before - func.blocks.len();
    (stats, trace)
}

/// Simplifies every function of a module. Run
/// [`brepl_ir::Module::renumber_branches`] afterwards if the module's
/// branch numbering must stay dense (simplification never clones or drops
/// a *reachable* conditional branch, but unreachable ones disappear).
pub fn simplify_module(module: &mut brepl_ir::Module) -> SimplifyStats {
    let mut total = SimplifyStats::default();
    let fids: Vec<_> = module.iter_functions().map(|(f, _)| f).collect();
    for fid in fids {
        let s = simplify_function(module.function_mut(fid));
        total.threaded_edges += s.threaded_edges;
        total.merged_blocks += s.merged_blocks;
        total.removed_blocks += s.removed_blocks;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Module, Operand, Value};
    use brepl_sim::{Machine, RunConfig};

    /// Builds a function full of jump-only glue blocks.
    fn gluey_module() -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let glue1 = b.new_block();
        let glue2 = b.new_block();
        let work = b.new_block();
        let t = b.new_block();
        let e = b.new_block();
        let tail1 = b.new_block();
        let tail2 = b.new_block();
        b.jmp(glue1);
        b.switch_to(glue1);
        b.jmp(glue2);
        b.switch_to(glue2);
        b.jmp(work);
        b.switch_to(work);
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(tail1);
        b.switch_to(e);
        b.jmp(tail1);
        b.switch_to(tail1);
        b.jmp(tail2);
        b.switch_to(tail2);
        b.out(x.into());
        b.ret(Some(x.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn threading_and_merging_shrink_glue() {
        let mut m = gluey_module();
        let before = m.size_units();
        let original = Machine::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(5)])
            .unwrap();
        let stats = simplify_module(&mut m);
        m.renumber_branches();
        m.verify().unwrap();
        assert!(stats.threaded_edges > 0);
        assert!(stats.removed_blocks > 0);
        assert!(m.size_units() < before);
        // Semantics preserved (branch events too).
        let after = Machine::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(5)])
            .unwrap();
        assert_eq!(original.result, after.result);
        assert_eq!(original.trace.len(), after.trace.len());
        // The whole function collapses to entry + branch arms' merged tail.
        assert!(m.function(brepl_ir::FuncId(0)).blocks.len() <= 4);
    }

    #[test]
    fn self_loops_survive() {
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let head = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(x.into(), Operand::imm(3));
        b.br(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let _ = simplify_module(&mut m);
        m.renumber_branches();
        m.verify().unwrap();
        assert!(Machine::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(10)])
            .is_ok());
    }

    #[test]
    fn branch_sites_are_preserved() {
        let mut m = gluey_module();
        let before = m.branch_count();
        simplify_module(&mut m);
        m.renumber_branches();
        assert_eq!(m.branch_count(), before);
    }
}
