//! Deterministic parallel execution engine for the analysis side of the
//! pipeline.
//!
//! The per-branch machine search, the suite profiling runs and the
//! table/figure sweeps are all embarrassingly parallel: every unit of work
//! is a pure function of read-only inputs. [`par_map`] fans such work out
//! over `std::thread::scope` and merges the results back **in input
//! order**, so the output is bit-identical to the serial path no matter
//! how the OS schedules the workers.
//!
//! Thread count resolution, in priority order:
//!
//! 1. `BREPL_THREADS=<n>` environment variable (`1` forces serial);
//! 2. [`std::thread::available_parallelism`];
//! 3. `1` when the `parallel` feature is disabled.
//!
//! Nested calls run serially: a `par_map` issued from inside a `par_map`
//! worker does not spawn further threads, so parallel bench drivers can
//! call parallel library entry points without oversubscribing the machine.

#[cfg(feature = "parallel")]
use std::cell::Cell;
#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(feature = "parallel")]
thread_local! {
    /// True inside a `par_map` worker; makes nested calls serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Upper bound on worker threads — beyond this the scoped-thread spawn
/// cost dominates any realistic analysis workload.
const MAX_THREADS: usize = 64;

/// The number of worker threads [`par_map`] will use.
///
/// Reads `BREPL_THREADS` (clamped to `1..=64`) and falls back to the
/// machine's available parallelism. Returns `1` when the `parallel`
/// feature is off or when called from inside a `par_map` worker.
pub fn thread_count() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if IN_WORKER.with(Cell::get) {
            return 1;
        }
        if let Ok(v) = std::env::var("BREPL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, MAX_THREADS);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(MAX_THREADS))
            .unwrap_or(1)
    }
}

/// Applies `f` to every element of `items` using up to `threads` workers
/// and returns the results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven per-item
/// costs — the per-branch search varies by ~5× — still balance. Each
/// worker records `(index, result)` pairs; the merge sorts by index, so
/// the output is **deterministic and identical to the serial path**
/// regardless of scheduling.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    run_parallel(threads, items, &f)
}

/// [`par_map_with`] at the engine's default [`thread_count`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

#[cfg(feature = "parallel")]
fn run_parallel<T, R, F>(threads: usize, items: &[T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // A panic payload with the index of the item whose closure raised it.
    type Panic = (usize, Box<dyn std::any::Any + Send + 'static>);

    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    let mut panics: Vec<Panic> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut out = Vec::new();
                    let mut caught: Option<Panic> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // Catch panics from `f` so every item is still
                        // claimed and all workers drain the cursor: no
                        // deadlock, no item processed twice, and — because
                        // every panicking item panics, not just whichever
                        // raced first — the payload re-raised below is the
                        // one the serial path would have raised.
                        // AssertUnwindSafe is sound here: on panic, all
                        // results are discarded and the payload re-raised.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || f(&items[i]),
                        )) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => match &caught {
                                Some((j, _)) if *j <= i => {}
                                _ => caught = Some((i, payload)),
                            },
                        }
                    }
                    (out, caught)
                })
            })
            .collect();
        for h in handles {
            // Workers catch panics from `f`; a join error would be a bug in
            // the loop above, so surface it with a sentinel index.
            let (out, caught) = h
                .join()
                .unwrap_or_else(|payload| (Vec::new(), Some((usize::MAX, payload))));
            parts.push(out);
            if let Some(p) = caught {
                panics.push(p);
            }
        }
    });
    // Deterministic panic propagation: after all workers finish, re-raise
    // the payload of the lowest item index — exactly what the serial path
    // surfaces first.
    if let Some((_, payload)) = panics.into_iter().min_by_key(|p| p.0) {
        std::panic::resume_unwind(payload);
    }
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for part in &mut parts {
        indexed.append(part);
    }
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(not(feature = "parallel"))]
fn run_parallel<T, R, F>(_threads: usize, items: &[T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_with(8, &items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_matches_serial_under_uneven_cost() {
        let items: Vec<u64> = (0..257).collect();
        let work = |&x: &u64| -> u64 {
            // Cost varies by item so workers interleave arbitrarily.
            let mut acc = x;
            for i in 0..(x % 17) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let serial = par_map_with(1, &items, work);
        let parallel = par_map_with(4, &items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn nested_calls_stay_serial() {
        let items: Vec<u32> = (0..16).collect();
        let out = par_map_with(4, &items, |&x| {
            // Inside a worker the engine reports a single thread, so the
            // nested map cannot oversubscribe.
            assert_eq!(thread_count(), 1);
            let inner: Vec<u32> = par_map(&[x, x + 1], |&y| y * 2);
            inner.iter().sum::<u32>()
        });
        let expect: Vec<u32> = items.iter().map(|&x| 4 * x + 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    /// S1 of the robustness work: a panicking closure must surface the
    /// *same* payload in serial and parallel modes — the lowest-index
    /// item's panic — with no hang and no lost workers.
    #[test]
    fn panics_surface_identically_serial_and_parallel() {
        let items: Vec<u64> = (0..64).collect();
        let boom = |&x: &u64| -> u64 {
            if x % 10 == 3 {
                panic!("boom at item {x}");
            }
            x * 2
        };
        let serial = std::panic::catch_unwind(|| par_map_with(1, &items, boom))
            .expect_err("serial path must panic");
        let parallel = std::panic::catch_unwind(|| par_map_with(4, &items, boom))
            .expect_err("parallel path must panic");
        let s = serial
            .downcast_ref::<String>()
            .expect("payload is the format string");
        let p = parallel
            .downcast_ref::<String>()
            .expect("payload is the format string");
        // Items 3, 13, 23, ... all panic; both modes must surface item 3.
        assert_eq!(s, "boom at item 3");
        assert_eq!(s, p);
    }

    /// After a propagated panic the engine is still usable: workers were
    /// joined, the cursor state was scoped, nothing is poisoned.
    #[test]
    fn engine_survives_a_propagated_panic() {
        let items: Vec<u32> = (0..32).collect();
        let _ = std::panic::catch_unwind(|| {
            par_map_with(4, &items, |&x: &u32| -> u32 {
                if x == 7 {
                    panic!("one-off");
                }
                x
            })
        });
        let out = par_map_with(4, &items, |&x| x + 1);
        let expect: Vec<u32> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(out, expect);
    }
}
