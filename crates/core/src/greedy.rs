//! Greedy state addition under a code-size cost model (§5 and the
//! misprediction-versus-code-size plots, Figures 6–13).
//!
//! "The states were added in such an order that the state that predicted
//! the largest number of branches and that increased the code size by the
//! smallest amount was chosen first." We follow the same rule at branch
//! granularity: each step enables the best machine of one more branch,
//! ordered by benefit per size unit, where the size cost follows the
//! paper's interaction law — machines in *different* loops add code,
//! machines in the *same* loop multiply it.

use std::collections::HashMap;

use brepl_cfg::{Cfg, ClassifiedBranches, DomTree, LoopForest};
use brepl_ir::{BlockId, FuncId, Module};
use brepl_trace::Trace;

use crate::select::{select_strategies, ChosenStrategy, Selection};

/// One point of a misprediction-versus-code-size curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Cumulative code-size growth factor (1.0 = original size).
    pub size_factor: f64,
    /// Cumulative misprediction rate in percent.
    pub misprediction_percent: f64,
    /// Number of branch machines enabled so far.
    pub machines_enabled: usize,
}

/// The greedy curve for one module/trace pair.
#[derive(Clone, Debug, Default)]
pub struct GreedyCurve {
    /// Points from "no machines" (profile prediction, factor 1.0) onward.
    pub points: Vec<CurvePoint>,
    /// The branch enabled at each step: `order[i]` produced
    /// `points[i + 1]`.
    pub order: Vec<brepl_ir::BranchId>,
}

impl GreedyCurve {
    /// The last point at or under a size budget, if any.
    pub fn at_size_budget(&self, max_factor: f64) -> Option<CurvePoint> {
        self.points
            .iter()
            .take_while(|p| p.size_factor <= max_factor)
            .last()
            .copied()
    }

    /// The best (final) misprediction percentage on the curve.
    pub fn best_misprediction(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.misprediction_percent)
    }
}

/// Computes the greedy misprediction/size curve for `module` with machines
/// of at most `max_states` states, reusing a precomputed [`Selection`].
pub fn greedy_curve_from_selection(
    module: &Module,
    selection: &Selection,
    trace_len: u64,
) -> GreedyCurve {
    // Loop identity and size for the cost model.
    #[derive(Clone, Copy)]
    struct LoopInfo {
        size_units: usize,
        product: u64,
    }
    let mut loop_of_site: HashMap<brepl_ir::BranchId, (FuncId, BlockId)> = HashMap::new();
    let mut loops: HashMap<(FuncId, BlockId), LoopInfo> = HashMap::new();
    let mut site_block_units: HashMap<brepl_ir::BranchId, usize> = HashMap::new();
    for (fid, func) in module.iter_functions() {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let classes = ClassifiedBranches::analyze(func, &forest);
        for info in classes.branches() {
            if let Some(l) = info.innermost_loop {
                let lp = forest.get(l);
                let key = (fid, lp.header);
                loop_of_site.insert(info.site, key);
                loops.entry(key).or_insert(LoopInfo {
                    size_units: lp.blocks.iter().map(|&b| func.block(b).size_units()).sum(),
                    product: 1,
                });
            }
            site_block_units.insert(info.site, func.block(info.block).size_units());
        }
    }
    let base_size = module.size_units() as f64;

    // Candidate steps: every branch whose chosen strategy beats profile.
    struct Step {
        site: brepl_ir::BranchId,
        benefit: u64,
        states: usize,
        correlated_block_units: usize,
    }
    let mut steps: Vec<Step> = selection
        .choices()
        .iter()
        .filter(|c| c.benefit() > 0)
        .map(|c| Step {
            site: c.site,
            benefit: c.benefit(),
            states: c.chosen.states(),
            correlated_block_units: match &c.chosen {
                ChosenStrategy::Correlated(m) => {
                    let per_path: usize = m.paths.iter().map(|(p, _)| p.len().max(1)).sum();
                    per_path
                }
                _ => 0,
            },
        })
        .collect();

    let cost_of = |step: &Step, loops: &HashMap<(FuncId, BlockId), LoopInfo>| -> f64 {
        match loop_of_site.get(&step.site) {
            Some(key) => {
                // Same-loop machines multiply: going from product P to
                // P * states adds (states - 1) * P copies of the loop.
                let info = loops[key];
                info.size_units as f64 * info.product as f64 * (step.states as f64 - 1.0)
            }
            None => {
                // Tail duplication: roughly one copy of the branch block
                // per path step.
                let bs = site_block_units.get(&step.site).copied().unwrap_or(4);
                (step.correlated_block_units.max(1) * bs) as f64
            }
        }
    };

    let mut curve = GreedyCurve::default();
    let mut misses = selection.profile_misses();
    let mut size = base_size;
    let total = trace_len.max(1) as f64;
    curve.points.push(CurvePoint {
        size_factor: 1.0,
        misprediction_percent: 100.0 * misses as f64 / total,
        machines_enabled: 0,
    });

    let mut enabled = 0usize;
    while !steps.is_empty() {
        // Pick the best benefit/cost step under current loop products.
        let (idx, _) = steps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let c = cost_of(s, &loops).max(1e-9);
                (i, s.benefit as f64 / c)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("steps not empty");
        let step = steps.swap_remove(idx);
        let cost = cost_of(&step, &loops);
        if let Some(key) = loop_of_site.get(&step.site) {
            let info = loops.get_mut(key).expect("loop recorded");
            info.product *= step.states as u64;
        }
        size += cost;
        misses -= step.benefit;
        enabled += 1;
        curve.order.push(step.site);
        curve.points.push(CurvePoint {
            size_factor: size / base_size,
            misprediction_percent: 100.0 * misses as f64 / total,
            machines_enabled: enabled,
        });
    }
    curve
}

impl GreedyCurve {
    /// The branches (in greedy order) whose cumulative estimated size stays
    /// within `max_factor` — the set a size-budgeted optimizer would
    /// replicate.
    pub fn sites_within_budget(&self, max_factor: f64) -> Vec<brepl_ir::BranchId> {
        self.points
            .iter()
            .skip(1)
            .zip(&self.order)
            .take_while(|(p, _)| p.size_factor <= max_factor)
            .map(|(_, &site)| site)
            .collect()
    }
}

/// Convenience wrapper: runs selection then builds the curve.
pub fn greedy_curve(module: &Module, trace: &Trace, max_states: usize) -> GreedyCurve {
    let selection = select_strategies(module, trace, max_states);
    greedy_curve_from_selection(module, &selection, trace.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand, Value};
    use brepl_sim::{Machine as Sim, RunConfig};

    fn alternating_module() -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd);
        b.switch_to(even);
        b.jmp(latch);
        b.switch_to(odd);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), n.into());
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn curve_starts_at_profile_and_descends() {
        let m = alternating_module();
        let t = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(200)])
            .unwrap()
            .trace;
        let curve = greedy_curve(&m, &t, 4);
        assert!(curve.points.len() >= 2, "at least one improvement step");
        assert_eq!(curve.points[0].size_factor, 1.0);
        // Monotone: misprediction never rises, size never falls.
        for w in curve.points.windows(2) {
            assert!(w[1].misprediction_percent <= w[0].misprediction_percent);
            assert!(w[1].size_factor >= w[0].size_factor);
        }
        // The alternating branch dominates: final rate near zero.
        assert!(curve.best_misprediction() < 1.0);
        assert!(curve.points[0].misprediction_percent > 20.0);
    }

    #[test]
    fn sites_within_budget_tracks_order() {
        let m = alternating_module();
        let t = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(200)])
            .unwrap()
            .trace;
        let curve = greedy_curve(&m, &t, 4);
        assert_eq!(curve.order.len() + 1, curve.points.len());
        // An infinite budget enables everything; a 1.0 budget nothing.
        assert_eq!(
            curve.sites_within_budget(f64::INFINITY).len(),
            curve.order.len()
        );
        assert!(curve.sites_within_budget(1.0).is_empty());
        // Budgets are monotone.
        let a = curve.sites_within_budget(1.5).len();
        let b = curve.sites_within_budget(2.5).len();
        assert!(a <= b);
    }

    #[test]
    fn size_budget_lookup() {
        let m = alternating_module();
        let t = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(100)])
            .unwrap()
            .trace;
        let curve = greedy_curve(&m, &t, 4);
        let p = curve.at_size_budget(1.0).unwrap();
        assert_eq!(p.machines_enabled, 0);
        let all = curve.at_size_budget(f64::INFINITY).unwrap();
        assert_eq!(
            all.machines_enabled,
            curve.points.last().unwrap().machines_enabled
        );
    }

    #[test]
    fn same_loop_machines_multiply_cost() {
        let m = alternating_module();
        let t = Sim::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[Value::Int(200)])
            .unwrap()
            .trace;
        let sel = select_strategies(&m, &t, 4);
        let curve = greedy_curve_from_selection(&m, &sel, t.len() as u64);
        // If both loop branches get machines, the second one costs more
        // than the first (the loop already multiplied).
        if curve.points.len() >= 3 {
            let d1 = curve.points[1].size_factor - curve.points[0].size_factor;
            let d2 = curve.points[2].size_factor - curve.points[1].size_factor;
            assert!(d2 >= d1 * 0.99, "second same-loop step at least as costly");
        }
    }
}
