//! Exhaustive search for intra-loop branch prediction state machines
//! (§4.1 of the paper).
//!
//! States of an intra-loop machine are history patterns; a machine is valid
//! when (a) every transition is *uniquely determined* by the bits the state
//! knows (otherwise code replication could not wire a static edge), and
//! (b) the state graph is strongly connected ("each state can be reached
//! from another state and via other states from the initial state").
//!
//! The searched space is the family of *complete suffix antichains*: the
//! leaf sets of binary tries over history strings keyed newest-bit-first.
//! Every history is covered by exactly one leaf, so the paper's
//! "patterns counted not more than once" bookkeeping is automatic. The
//! enumeration is exhaustive within this family — there are only
//! `Catalan(n-1)` tree shapes per state count `n`, a few thousand for the
//! paper's maximum of ten states.

use brepl_predict::PatternTable;

use crate::machine::StateMachine;
use crate::pattern::HistPattern;

/// The outcome of a machine search at one state count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchResult {
    /// The best machine found.
    pub machine: StateMachine,
    /// Correct predictions under partition scoring.
    pub correct: u64,
    /// Total profiled executions.
    pub total: u64,
}

impl SearchResult {
    /// Mispredictions under partition scoring.
    pub fn mispredictions(&self) -> u64 {
        self.total - self.correct
    }
}

/// A reusable enumeration of candidate state sets, grouped by state count.
#[derive(Clone, Debug)]
pub struct IntraLoopSearch {
    max_states: usize,
    max_depth: u32,
    /// Antichains indexed by their size (index 0 and 1 unused).
    by_size: Vec<Vec<Vec<HistPattern>>>,
}

impl IntraLoopSearch {
    /// Prepares the search space for machines of up to `max_states` states
    /// and history patterns up to `max_depth` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= max_states <= 12` and `1 <= max_depth <= 16`.
    pub fn new(max_states: usize, max_depth: u32) -> Self {
        assert!(
            (2..=12).contains(&max_states),
            "max_states must be in 2..=12"
        );
        assert!((1..=16).contains(&max_depth), "max_depth must be in 1..=16");
        let mut by_size: Vec<Vec<Vec<HistPattern>>> = vec![Vec::new(); max_states + 1];
        // Enumerate leaf sets of binary tries: start from {0, 1} and
        // repeatedly split a leaf into its two older-bit refinements. To
        // enumerate each antichain exactly once, only split leaves at or
        // after the last-split position (canonical order).
        let initial = vec![
            HistPattern::parse("0").unwrap(),
            HistPattern::parse("1").unwrap(),
        ];
        let mut stack: Vec<(Vec<HistPattern>, usize)> = vec![(initial, 0)];
        while let Some((set, from)) = stack.pop() {
            by_size[set.len()].push(set.clone());
            if set.len() >= max_states {
                continue;
            }
            for i in from..set.len() {
                if set[i].len() >= max_depth {
                    continue;
                }
                let mut refined = set.clone();
                let leaf = refined.remove(i);
                refined.push(leaf.prepend_older(false));
                refined.push(leaf.prepend_older(true));
                stack.push((refined, i));
            }
        }
        IntraLoopSearch {
            max_states,
            max_depth,
            by_size,
        }
    }

    /// The number of candidate state sets with exactly `n` states.
    pub fn candidates(&self, n: usize) -> usize {
        self.by_size.get(n).map_or(0, Vec::len)
    }

    /// Finds, for every state count `2..=max_states`, the valid machine
    /// maximizing correctly predicted branches under partition scoring.
    /// Index `n` of the result holds the best `n`-state machine (indices 0
    /// and 1 are `None`).
    pub fn search(&self, table: &PatternTable) -> Vec<Option<SearchResult>> {
        let mut best: Vec<Option<SearchResult>> = vec![None; self.max_states + 1];
        // One suffix scan of the table serves every candidate machine's
        // prediction queries.
        let agg = table.suffix_aggregate(self.max_depth);
        // The state count doubles as the semantic index of `best`.
        #[allow(clippy::needless_range_loop)]
        for n in 2..=self.max_states {
            for patterns in &self.by_size[n] {
                let Some(machine) = StateMachine::from_patterns_with(patterns, &agg) else {
                    continue;
                };
                if !machine.is_strongly_connected() {
                    continue;
                }
                let (correct, total) = machine.score_by_partition(table);
                let cand = SearchResult {
                    machine,
                    correct,
                    total,
                };
                match &best[n] {
                    Some(b) if b.correct >= correct => {}
                    _ => best[n] = Some(cand),
                }
            }
        }
        best
    }

    /// Convenience: the best machine with *at most* `max_states` states.
    pub fn search_best(&self, table: &PatternTable) -> Option<SearchResult> {
        self.search(table)
            .into_iter()
            .flatten()
            .max_by_key(|r| r.correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::BranchId;
    use brepl_predict::{HistoryKind, PatternTableSet};
    use brepl_trace::{Trace, TraceEvent};

    fn table_for(dirs: &[bool]) -> PatternTableSet {
        let t: Trace = dirs
            .iter()
            .map(|&taken| TraceEvent {
                site: BranchId(0),
                taken,
            })
            .collect();
        PatternTableSet::build(&t, HistoryKind::Local, 9)
    }

    #[test]
    fn enumeration_counts_are_catalan() {
        let s = IntraLoopSearch::new(6, 9);
        // Complete binary tries with n leaves: Catalan(n-1).
        assert_eq!(s.candidates(2), 1);
        assert_eq!(s.candidates(3), 2);
        assert_eq!(s.candidates(4), 5);
        assert_eq!(s.candidates(5), 14);
        assert_eq!(s.candidates(6), 42);
    }

    #[test]
    fn depth_limit_caps_enumeration() {
        let s = IntraLoopSearch::new(4, 1);
        // With depth 1 only {0, 1} exists.
        assert_eq!(s.candidates(2), 1);
        assert_eq!(s.candidates(3), 0);
        assert_eq!(s.candidates(4), 0);
    }

    #[test]
    fn alternating_branch_solved_with_two_states() {
        let dirs: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let search = IntraLoopSearch::new(4, 9);
        let results = search.search(table);
        let two = results[2].as_ref().unwrap();
        assert_eq!(two.mispredictions(), 0);
        // More states cannot do better than perfect.
        let four = results[4].as_ref().unwrap();
        assert!(four.correct <= two.total);
    }

    #[test]
    fn period_three_needs_three_states() {
        // T T N repeating: profile gets 1/3 wrong, 2 states get ~1/3 wrong
        // (state "1" is ambiguous), 3 states are perfect.
        let dirs: Vec<bool> = (0..3000).map(|i| i % 3 != 2).collect();
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let search = IntraLoopSearch::new(4, 9);
        let results = search.search(table);
        let two = results[2].as_ref().unwrap();
        let three = results[3].as_ref().unwrap();
        assert!(two.mispredictions() > three.mispredictions());
        // Perfect modulo the handful of warmup patterns.
        assert!(three.mispredictions() <= 9);
    }

    #[test]
    fn monotone_in_state_count() {
        // More states never hurt the best achievable score.
        let dirs: Vec<bool> = (0..5000).map(|i| matches!(i % 7, 0 | 2 | 3 | 6)).collect();
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let search = IntraLoopSearch::new(8, 9);
        let results = search.search(table);
        let mut prev = 0u64;
        #[allow(clippy::needless_range_loop)]
        for n in 2..=8 {
            let r = results[n].as_ref().unwrap();
            assert!(
                r.correct >= prev,
                "n={n}: correct {} < previous {prev}",
                r.correct
            );
            prev = r.correct;
        }
    }

    #[test]
    fn search_best_picks_global_optimum() {
        let dirs: Vec<bool> = (0..3000).map(|i| i % 3 != 2).collect();
        let pts = table_for(&dirs);
        let table = pts.site(BranchId(0)).unwrap();
        let search = IntraLoopSearch::new(5, 9);
        let best = search.search_best(table).unwrap();
        assert!(best.mispredictions() <= 9);
    }

    #[test]
    #[should_panic(expected = "max_states")]
    fn tiny_max_states_rejected() {
        let _ = IntraLoopSearch::new(1, 9);
    }
}
