//! Branch prediction state machines (§4 of the paper).
//!
//! A state machine compacts a branch's history pattern table into a handful
//! of states. Each state carries a fixed prediction; the transition on the
//! actual outcome moves to the next state. Code replication later turns
//! each state into one copy of the surrounding code, so the "current state"
//! is encoded in the program counter and the per-state prediction becomes a
//! static, per-site prediction.

use brepl_predict::{PatternTable, SuffixAggregate};
use brepl_trace::{PackedStream, SiteCounts};

use crate::pattern::HistPattern;

/// One state of a [`StateMachine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineState {
    /// The history pattern this state represents (a label; transitions are
    /// stored explicitly).
    pub pattern: HistPattern,
    /// The direction predicted while in this state.
    pub predict: bool,
    /// Next state index when the branch is taken.
    pub on_taken: usize,
    /// Next state index when the branch is not taken.
    pub on_not_taken: usize,
}

/// A branch prediction state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateMachine {
    states: Vec<MachineState>,
    initial: usize,
}

impl StateMachine {
    /// Builds a machine from explicit states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty, `initial` or any transition index is
    /// out of range.
    pub fn from_states(states: Vec<MachineState>, initial: usize) -> Self {
        assert!(!states.is_empty(), "state machine needs at least one state");
        assert!(initial < states.len(), "initial state out of range");
        for s in &states {
            assert!(
                s.on_taken < states.len() && s.on_not_taken < states.len(),
                "transition out of range"
            );
        }
        StateMachine { states, initial }
    }

    /// Derives a machine from a set of history patterns with
    /// longest-suffix-match semantics, taking predictions from `table`.
    ///
    /// The transition from state `p` on outcome `b` appends `b` as the
    /// newest outcome and selects the longest pattern in the set that is a
    /// suffix of the result. Returns `None` when some transition is not
    /// uniquely determined — i.e. a pattern *longer* than the known history
    /// could match, which would make the replicated control flow ambiguous
    /// — or when no pattern matches at all.
    ///
    /// The initial state is the pattern matching the all-zeros history
    /// (the machine starts with empty history, which reads as "not taken"
    /// everywhere), falling back to state 0.
    ///
    /// Predictions come from [`PatternTable::suffix_counts`]: each state
    /// predicts the majority direction among histories ending with its
    /// pattern. States with no profile data predict taken.
    pub fn from_patterns(patterns: &[HistPattern], table: &PatternTable) -> Option<Self> {
        Self::from_patterns_counted(patterns, |p| table.suffix_counts(p.bits(), p.len()))
    }

    /// [`StateMachine::from_patterns`] with the suffix counts served by a
    /// precomputed [`SuffixAggregate`] — identical result, one table scan
    /// amortized over every query (searches build hundreds of machines
    /// from the same table).
    pub fn from_patterns_with(patterns: &[HistPattern], agg: &SuffixAggregate<'_>) -> Option<Self> {
        Self::from_patterns_counted(patterns, |p| agg.counts(p.bits(), p.len()))
    }

    fn from_patterns_counted(
        patterns: &[HistPattern],
        counts_of: impl Fn(HistPattern) -> SiteCounts,
    ) -> Option<Self> {
        if patterns.is_empty() {
            return None;
        }
        let mut states = Vec::with_capacity(patterns.len());
        for &p in patterns {
            let next = |taken: bool| -> Option<usize> {
                let appended = p.append(taken, 16);
                // Candidates that are suffixes of the known new history.
                let mut best: Option<usize> = None;
                for (j, &q) in patterns.iter().enumerate() {
                    if q.len() <= appended.len() {
                        if q.is_suffix_of(appended) {
                            match best {
                                Some(b) if patterns[b].len() >= q.len() => {}
                                _ => best = Some(j),
                            }
                        }
                    } else {
                        // A longer pattern could match depending on bits the
                        // machine does not know: ambiguous unless it
                        // disagrees with the known suffix.
                        if appended.is_suffix_of(q) {
                            return None;
                        }
                    }
                }
                best
            };
            let on_taken = next(true)?;
            let on_not_taken = next(false)?;
            let counts = counts_of(p);
            let predict = if counts.total() == 0 {
                true
            } else {
                counts.majority()
            };
            states.push(MachineState {
                pattern: p,
                predict,
                on_taken,
                on_not_taken,
            });
        }
        let zeros = HistPattern::new(0, 16);
        let initial = patterns
            .iter()
            .position(|p| p.is_suffix_of(zeros))
            .unwrap_or(0);
        Some(StateMachine { states, initial })
    }

    /// The states.
    pub fn states(&self) -> &[MachineState] {
        &self.states
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the machine has no states (never constructible).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The initial state index.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The transition function.
    pub fn next(&self, state: usize, taken: bool) -> usize {
        let s = &self.states[state];
        if taken {
            s.on_taken
        } else {
            s.on_not_taken
        }
    }

    /// The machine reduced to its bare transition table — the
    /// witness-independent form `brepl_analysis::check_history` consumes
    /// (predictions and transitions only, no pattern labels).
    pub fn to_table(&self) -> brepl_analysis::MachineTable {
        brepl_analysis::MachineTable {
            states: self
                .states
                .iter()
                .map(|s| brepl_analysis::TableState {
                    predict: s.predict,
                    on_taken: s.on_taken,
                    on_not_taken: s.on_not_taken,
                })
                .collect(),
            initial: self.initial,
        }
    }

    /// True if every state can reach every other state — the paper's
    /// requirement that "each state can be reached from another state and
    /// via other states from the initial state".
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.states.len();
        // Reachability from each state via BFS; n is tiny (<= ~10).
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(s) = stack.pop() {
                for t in [self.states[s].on_taken, self.states[s].on_not_taken] {
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            if seen.iter().any(|&v| !v) {
                return false;
            }
        }
        true
    }

    /// Runs the machine over a site's outcome sequence, counting correct
    /// predictions. This is the *true* accuracy of the replicated code.
    pub fn simulate<I: IntoIterator<Item = bool>>(&self, outcomes: I) -> (u64, u64) {
        let mut state = self.initial;
        let mut correct = 0u64;
        let mut total = 0u64;
        for taken in outcomes {
            total += 1;
            if self.states[state].predict == taken {
                correct += 1;
            }
            state = self.next(state, taken);
        }
        (correct, total)
    }

    /// Word-at-a-time [`StateMachine::simulate`] over a packed stream.
    ///
    /// Returns exactly `self.simulate(outcomes.iter())` — bit-identical
    /// counts — but steps the machine eight outcomes at a time through a
    /// precomputed (state × outcome-byte) table when the stream is long
    /// enough to amortize building it.
    pub fn simulate_packed(&self, outcomes: &PackedStream) -> (u64, u64) {
        simulate_packed_many(std::slice::from_ref(self), outcomes)[0]
    }

    /// Precomputed chunk-transition table: entry `(state << 8) | byte`
    /// holds the state after consuming the byte's eight outcomes (LSB
    /// first) and how many of the eight the machine predicted correctly.
    fn chunk_tables(&self) -> (Vec<u8>, Vec<u8>) {
        let n = self.states.len();
        debug_assert!(n <= CHUNK_MAX_STATES);
        // First a (state × nibble) table by direct 4-step walks, then the
        // byte table as a composition of two nibble steps.
        let mut nib_next = vec![0u8; n << 4];
        let mut nib_correct = vec![0u8; n << 4];
        for s in 0..n {
            for nib in 0..16usize {
                let mut st = s;
                let mut c = 0u8;
                for i in 0..4 {
                    let taken = nib >> i & 1 == 1;
                    c += u8::from(self.states[st].predict == taken);
                    st = self.next(st, taken);
                }
                nib_next[s << 4 | nib] = st as u8;
                nib_correct[s << 4 | nib] = c;
            }
        }
        let mut next = vec![0u8; n << 8];
        let mut correct = vec![0u8; n << 8];
        for s in 0..n {
            for byte in 0..256usize {
                let lo = byte & 0xf;
                let hi = byte >> 4;
                let mid = nib_next[s << 4 | lo] as usize;
                next[s << 8 | byte] = nib_next[mid << 4 | hi];
                correct[s << 8 | byte] = nib_correct[s << 4 | lo] + nib_correct[mid << 4 | hi];
            }
        }
        (next, correct)
    }

    /// Scores the machine against a full-length pattern table by
    /// *partitioning*: every observed table pattern is assigned to the
    /// longest state pattern that is a suffix of it (unmatched patterns go
    /// to the initial state), and each state contributes the majority count
    /// of its share. This is exactly the paper's counting scheme ("taking
    /// care that patterns are counted not more than once").
    ///
    /// Returns `(correct, total)`.
    pub fn score_by_partition(&self, table: &PatternTable) -> (u64, u64) {
        let mut per_state: Vec<SiteCounts> = vec![SiteCounts::default(); self.states.len()];
        for (bits, counts) in table.iter_patterns() {
            let full = HistPattern::new(bits, 16);
            let mut best: Option<usize> = None;
            for (j, s) in self.states.iter().enumerate() {
                if s.pattern.is_suffix_of(full) {
                    match best {
                        Some(b) if self.states[b].pattern.len() >= s.pattern.len() => {}
                        _ => best = Some(j),
                    }
                }
            }
            let j = best.unwrap_or(self.initial);
            per_state[j].taken += counts.taken;
            per_state[j].not_taken += counts.not_taken;
        }
        let total: u64 = per_state.iter().map(SiteCounts::total).sum();
        let correct: u64 = per_state.iter().map(|c| c.taken.max(c.not_taken)).sum();
        (correct, total)
    }

    /// The machine reduced to at most `max_states` states — the pipeline's
    /// code-growth backoff shrinks oversized machines with this before
    /// giving a site up entirely.
    ///
    /// Keeps the initial state plus the lowest-index survivors; any
    /// transition into a removed state is redirected to the initial state,
    /// so the result is always a well-formed machine. Prediction *quality*
    /// after shrinking is deliberately not preserved — the pipeline's
    /// refinement loop re-measures and drops machines that stop paying for
    /// themselves.
    pub fn shrunk(&self, max_states: usize) -> StateMachine {
        let k = max_states.clamp(1, self.states.len());
        if k == self.states.len() {
            return self.clone();
        }
        // Survivors: the initial state and then the lowest indices.
        let mut keep: Vec<usize> = Vec::with_capacity(k);
        keep.push(self.initial);
        for i in 0..self.states.len() {
            if keep.len() == k {
                break;
            }
            if i != self.initial {
                keep.push(i);
            }
        }
        keep.sort_unstable();
        let mut remap = vec![usize::MAX; self.states.len()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let initial = remap[self.initial];
        let redirect = |t: usize| {
            if remap[t] == usize::MAX {
                initial
            } else {
                remap[t]
            }
        };
        let states = keep
            .iter()
            .map(|&old| {
                let s = &self.states[old];
                MachineState {
                    pattern: s.pattern,
                    predict: s.predict,
                    on_taken: redirect(s.on_taken),
                    on_not_taken: redirect(s.on_not_taken),
                }
            })
            .collect();
        StateMachine { states, initial }
    }

    /// The machine that treats every outcome as its complement: transitions
    /// swapped, predictions negated, pattern labels bit-complemented.
    /// `m.complemented().simulate(xs)` equals `m.simulate(!xs)` — used to
    /// run exit-chain machines on loops whose *taken* direction leaves the
    /// loop.
    pub fn complemented(&self) -> StateMachine {
        let states = self
            .states
            .iter()
            .map(|s| MachineState {
                pattern: HistPattern::new(!s.pattern.bits(), s.pattern.len()),
                predict: !s.predict,
                on_taken: s.on_not_taken,
                on_not_taken: s.on_taken,
            })
            .collect();
        StateMachine {
            states,
            initial: self.initial,
        }
    }

    /// Human-readable description like `"{0, 01, 011, 111}"`.
    pub fn describe(&self) -> String {
        let mut s = String::from("{");
        for (i, st) in self.states.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{}=>{}",
                st.pattern,
                if st.predict { 'T' } else { 'N' }
            ));
        }
        s.push('}');
        s
    }
}

/// Chunked evaluation needs state indices to fit a byte.
const CHUNK_MAX_STATES: usize = 256;

/// A machine below this many outcomes-per-state runs scalar: building the
/// 256-entry chunk table costs more than it saves. Both paths return
/// identical counts, so the threshold never affects results.
const CHUNK_MIN_OUTCOMES_PER_STATE: usize = 1024;

/// Simulates every machine over the same packed outcome stream in one
/// structure-of-arrays pass, returning `(correct, total)` per machine —
/// bit-identical to calling [`StateMachine::simulate`] on each.
///
/// Long streams step chunk-transition tables eight outcomes per lookup
/// (eight lookups per 64-outcome word); the partial tail word and short
/// streams fall back to scalar stepping.
pub fn simulate_packed_many(machines: &[StateMachine], outcomes: &PackedStream) -> Vec<(u64, u64)> {
    let len = outcomes.len();
    let total = len as u64;
    let words = outcomes.words();
    let full_words = len / 64;
    let tail = len % 64;
    let mut results = vec![(0u64, total); machines.len()];
    let mut chunked: Vec<usize> = Vec::with_capacity(machines.len());
    for (i, m) in machines.iter().enumerate() {
        if len >= CHUNK_MIN_OUTCOMES_PER_STATE * m.len() && m.len() <= CHUNK_MAX_STATES {
            chunked.push(i);
        } else {
            results[i] = m.simulate(outcomes.iter());
        }
    }
    if chunked.is_empty() {
        return results;
    }
    let tables: Vec<(Vec<u8>, Vec<u8>)> = chunked
        .iter()
        .map(|&i| machines[i].chunk_tables())
        .collect();
    let mut state: Vec<usize> = chunked.iter().map(|&i| machines[i].initial()).collect();
    let mut correct: Vec<u64> = vec![0; chunked.len()];
    for &w in &words[..full_words] {
        for (k, (next, per_byte)) in tables.iter().enumerate() {
            let mut st = state[k];
            let mut c = 0u32;
            let mut x = w;
            for _ in 0..8 {
                let idx = st << 8 | (x & 0xff) as usize;
                c += u32::from(per_byte[idx]);
                st = next[idx] as usize;
                x >>= 8;
            }
            state[k] = st;
            correct[k] += u64::from(c);
        }
    }
    if tail > 0 {
        let w = words[full_words];
        for (k, &mi) in chunked.iter().enumerate() {
            let m = &machines[mi];
            let mut st = state[k];
            for i in 0..tail {
                let taken = w >> i & 1 == 1;
                correct[k] += u64::from(m.states[st].predict == taken);
                st = m.next(st, taken);
            }
            state[k] = st;
        }
    }
    for (k, &mi) in chunked.iter().enumerate() {
        results[mi] = (correct[k], total);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::BranchId;
    use brepl_predict::{HistoryKind, PatternTableSet};
    use brepl_trace::{Trace, TraceEvent};

    fn table_for(dirs: &[bool], bits: u32) -> brepl_predict::PatternTableSet {
        let t: Trace = dirs
            .iter()
            .map(|&taken| TraceEvent {
                site: BranchId(0),
                taken,
            })
            .collect();
        PatternTableSet::build(&t, HistoryKind::Local, bits)
    }

    fn alternating(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn bools(&mut self, n: usize) -> Vec<bool> {
            (0..n).map(|_| self.next() >> 63 == 1).collect()
        }

        /// A random well-formed machine with `n` states.
        fn machine(&mut self, n: usize) -> StateMachine {
            let states = (0..n)
                .map(|_| {
                    let r = self.next();
                    MachineState {
                        pattern: HistPattern::new((r >> 32) as u32 & 0xff, 8),
                        predict: r & 1 == 1,
                        on_taken: (r >> 8) as usize % n,
                        on_not_taken: (r >> 20) as usize % n,
                    }
                })
                .collect();
            let initial = self.next() as usize % n;
            StateMachine::from_states(states, initial)
        }
    }

    /// Word-at-a-time packed evaluation must count exactly like scalar
    /// stepping — random machines, random streams, lengths straddling
    /// word and chunk-threshold boundaries.
    #[test]
    fn packed_simulation_matches_scalar_stepping() {
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        for &n_states in &[1usize, 2, 3, 5, 8, 12] {
            for &len in &[0usize, 1, 63, 64, 65, 1000, 4096, 5000, 20_001] {
                let machines: Vec<StateMachine> = (0..4).map(|_| rng.machine(n_states)).collect();
                let dirs = rng.bools(len);
                let packed: PackedStream = dirs.iter().copied().collect();
                let got = simulate_packed_many(&machines, &packed);
                for (m, &r) in machines.iter().zip(&got) {
                    assert_eq!(
                        r,
                        m.simulate(dirs.iter().copied()),
                        "states = {n_states}, len = {len}"
                    );
                    assert_eq!(r, m.simulate_packed(&packed));
                }
            }
        }
    }

    /// The paper's Figure 1: 2-state machine {0, 1} on an alternating
    /// branch predicts perfectly.
    #[test]
    fn two_state_machine_nails_alternation() {
        let dirs = alternating(1000);
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        let patterns = [
            HistPattern::parse("0").unwrap(),
            HistPattern::parse("1").unwrap(),
        ];
        let m = StateMachine::from_patterns(&patterns, table).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.is_strongly_connected());
        // State "0": last time not taken -> predict taken. State "1": the
        // reverse.
        let s0 = m.states().iter().find(|s| s.pattern.bits() == 0).unwrap();
        assert!(s0.predict);
        let (correct, total) = m.simulate(dirs.iter().copied());
        // Initial state may mispredict once.
        assert!(total - correct <= 1);
        let (pc, pt) = m.score_by_partition(table);
        assert_eq!(pc, pt, "partition scoring is exact here");
    }

    #[test]
    fn transitions_follow_longest_suffix() {
        let dirs = alternating(100);
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        // {0, 01, 11}: from "0" on taken, history ends "01" -> state 01;
        // from "01" on taken -> ends "11" -> state 11; on not-taken -> "0".
        let patterns = [
            HistPattern::parse("0").unwrap(),
            HistPattern::parse("01").unwrap(),
            HistPattern::parse("11").unwrap(),
        ];
        let m = StateMachine::from_patterns(&patterns, table).unwrap();
        let idx = |s: &str| {
            m.states()
                .iter()
                .position(|st| st.pattern == HistPattern::parse(s).unwrap())
                .unwrap()
        };
        assert_eq!(m.next(idx("0"), true), idx("01"));
        assert_eq!(m.next(idx("0"), false), idx("0"));
        assert_eq!(m.next(idx("01"), true), idx("11"));
        assert_eq!(m.next(idx("01"), false), idx("0"));
        assert_eq!(m.next(idx("11"), true), idx("11"));
        assert_eq!(m.next(idx("11"), false), idx("0"));
        assert!(m.is_strongly_connected());
    }

    #[test]
    fn ambiguous_pattern_sets_rejected() {
        let dirs = alternating(100);
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        // {0, 01}: from "0" on taken the history ends "...1": "01" could
        // match or not depending on an unknown older bit -> ambiguous.
        let patterns = [
            HistPattern::parse("0").unwrap(),
            HistPattern::parse("01").unwrap(),
        ];
        assert!(StateMachine::from_patterns(&patterns, table).is_none());
    }

    #[test]
    fn empty_pattern_set_rejected() {
        let dirs = alternating(10);
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        assert!(StateMachine::from_patterns(&[], table).is_none());
    }

    #[test]
    fn partition_score_matches_simulation_on_periodic_input() {
        // Period 3: 110 repeating.
        let dirs: Vec<bool> = (0..3000).map(|i| i % 3 != 2).collect();
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        let patterns = [
            HistPattern::parse("0").unwrap(),
            HistPattern::parse("01").unwrap(),
            HistPattern::parse("11").unwrap(),
        ];
        let m = StateMachine::from_patterns(&patterns, table).unwrap();
        let (sc, st) = m.simulate(dirs.iter().copied());
        let (pc, pt) = m.score_by_partition(table);
        assert_eq!(st, pt);
        // Simulation and partition agree within warmup slack.
        assert!((sc as i64 - pc as i64).unsigned_abs() <= 9);
        // Period-3 pattern is perfectly predictable with these 3 states.
        assert!(st - sc <= 9);
    }

    #[test]
    fn not_strongly_connected_detected() {
        let states = vec![
            MachineState {
                pattern: HistPattern::parse("0").unwrap(),
                predict: true,
                on_taken: 1,
                on_not_taken: 1,
            },
            MachineState {
                pattern: HistPattern::parse("1").unwrap(),
                predict: true,
                on_taken: 1,
                on_not_taken: 1,
            },
        ];
        let m = StateMachine::from_states(states, 0);
        assert!(!m.is_strongly_connected());
    }

    #[test]
    fn shrunk_keeps_initial_and_stays_valid() {
        let dirs: Vec<bool> = (0..600).map(|i| i % 3 != 2).collect();
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        let m = StateMachine::from_patterns(
            &[
                HistPattern::parse("0").unwrap(),
                HistPattern::parse("01").unwrap(),
                HistPattern::parse("11").unwrap(),
            ],
            table,
        )
        .unwrap();
        for k in 1..=4 {
            let s = m.shrunk(k);
            assert_eq!(s.len(), k.min(m.len()));
            assert!(s.initial() < s.len());
            for st in s.states() {
                assert!(st.on_taken < s.len() && st.on_not_taken < s.len());
            }
            // The surviving initial state keeps its prediction.
            assert_eq!(
                s.states()[s.initial()].predict,
                m.states()[m.initial()].predict
            );
        }
        // Shrinking to the current size is the identity.
        assert_eq!(m.shrunk(m.len()), m);
        assert_eq!(m.shrunk(99), m);
        // A 1-state machine still simulates (it degenerates to a static
        // prediction).
        let (_, total) = m.shrunk(1).simulate(dirs.iter().copied());
        assert_eq!(total, dirs.len() as u64);
    }

    #[test]
    fn describe_is_informative() {
        let dirs = alternating(10);
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        let m = StateMachine::from_patterns(
            &[
                HistPattern::parse("0").unwrap(),
                HistPattern::parse("1").unwrap(),
            ],
            table,
        )
        .unwrap();
        let d = m.describe();
        assert!(d.contains('0') && d.contains('1'));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn from_states_rejects_empty() {
        let _ = StateMachine::from_states(vec![], 0);
    }

    #[test]
    fn complemented_is_involution_and_flips_streams() {
        let dirs: Vec<bool> = (0..500).map(|i| i % 3 != 2).collect();
        let pts = table_for(&dirs, 9);
        let table = pts.site(BranchId(0)).unwrap();
        let m = StateMachine::from_patterns(
            &[
                HistPattern::parse("0").unwrap(),
                HistPattern::parse("01").unwrap(),
                HistPattern::parse("11").unwrap(),
            ],
            table,
        )
        .unwrap();
        assert_eq!(m.complemented().complemented(), m);
        // Running the complemented machine on the complemented stream gives
        // the same number of correct predictions.
        let flipped: Vec<bool> = dirs.iter().map(|&d| !d).collect();
        let (c1, t1) = m.simulate(dirs.iter().copied());
        let (c2, t2) = m.complemented().simulate(flipped.iter().copied());
        assert_eq!((c1, t1), (c2, t2));
    }
}
