//! `scheduler` — a list instruction scheduler, like the paper's own
//! instruction-scheduler benchmark. Reads dependence DAGs, computes
//! critical-path priorities and schedules greedily; the candidate-scan
//! loop is full of data-dependent comparison branches, the dependence
//! updates are biased ones.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

/// Maximum successors per instruction (fixed-width successor table).
const MAX_SUCC: i64 = 4;

/// Builds the scheduler workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the scheduler workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let mut module = Module::new();
    module.push_function(build_schedule_one());
    module.push_function(build_main());
    module.verify().expect("scheduler module must verify");
    Workload {
        name: "scheduler",
        description: "critical-path list scheduler over dependence DAGs",
        module,
        args: vec![],
        input: generate_dags(scale, seed),
    }
}

/// `main`: read DAG count, then for each DAG read it into fresh arrays and
/// call `schedule_one`, accumulating a checksum of makespans.
fn build_main() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let dags = b.reg();
    let k = b.reg();
    let n = b.reg();
    let lat = b.reg();
    let succ = b.reg();
    let indeg = b.reg();
    let i = b.reg();
    let j = b.reg();
    let tmp = b.reg();
    let addr = b.reg();
    let acc = b.reg();

    let dag_loop = b.new_block();
    let dag_body = b.new_block();
    let read_loop = b.new_block();
    let read_body = b.new_block();
    let succ_loop = b.new_block();
    let succ_body = b.new_block();
    let succ_pad = b.new_block();
    let succ_fill = b.new_block();
    let read_next = b.new_block();
    let run = b.new_block();
    let done = b.new_block();

    let first = b.input();
    b.copy(dags, first.into());
    b.const_int(k, 0);
    b.const_int(acc, 17);
    b.jmp(dag_loop);

    b.switch_to(dag_loop);
    let more = b.lt(k.into(), dags.into());
    b.br(more, dag_body, done);

    b.switch_to(dag_body);
    let nn = b.input();
    b.copy(n, nn.into());
    // Arrays: latency[n], succ[n*(MAX_SUCC+1)] (count + ids), indeg[n].
    b.alloc(lat, n.into());
    b.mul(tmp, n.into(), Operand::imm(MAX_SUCC + 1));
    b.alloc(succ, tmp.into());
    b.alloc(indeg, n.into());
    b.const_int(i, 0);
    b.jmp(read_loop);

    b.switch_to(read_loop);
    let more_i = b.lt(i.into(), n.into());
    b.br(more_i, read_body, run);

    b.switch_to(read_body);
    // latency
    let l = b.input();
    b.add(addr, lat.into(), i.into());
    b.store(addr.into(), l.into());
    // successor count
    let ns = b.input();
    b.mul(tmp, i.into(), Operand::imm(MAX_SUCC + 1));
    b.add(tmp, tmp.into(), succ.into());
    b.store(tmp.into(), ns.into());
    b.const_int(j, 0);
    b.jmp(succ_loop);

    b.switch_to(succ_loop);
    let more_j = b.lt(j.into(), ns.into());
    b.br(more_j, succ_body, succ_pad);

    b.switch_to(succ_body);
    let sid = b.input();
    b.add(addr, tmp.into(), Operand::imm(1));
    b.add(addr, addr.into(), j.into());
    b.store(addr.into(), sid.into());
    // indeg[sid] += 1
    b.add(addr, indeg.into(), sid.into());
    let cur = b.reg();
    b.load(cur, addr.into());
    b.add(cur, cur.into(), Operand::imm(1));
    b.store(addr.into(), cur.into());
    b.add(j, j.into(), Operand::imm(1));
    b.jmp(succ_loop);

    // Pad remaining slots with -1 so stale data from previous DAGs can
    // never leak (allocations are fresh, but be explicit).
    b.switch_to(succ_pad);
    let padding = b.lt(j.into(), Operand::imm(MAX_SUCC));
    b.br(padding, succ_fill, read_next);

    b.switch_to(succ_fill);
    b.add(addr, tmp.into(), Operand::imm(1));
    b.add(addr, addr.into(), j.into());
    b.store(addr.into(), Operand::imm(-1));
    b.add(j, j.into(), Operand::imm(1));
    b.jmp(succ_pad);

    b.switch_to(read_next);
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(read_loop);

    b.switch_to(run);
    let span = b.reg();
    b.call(
        Some(span),
        "schedule_one",
        vec![n.into(), lat.into(), succ.into(), indeg.into()],
    );
    b.mul(acc, acc.into(), Operand::imm(37));
    b.add(acc, acc.into(), span.into());
    b.bin(
        brepl_ir::BinOp::And,
        acc,
        acc.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(k, k.into(), Operand::imm(1));
    b.jmp(dag_loop);

    b.switch_to(done);
    b.out(acc.into());
    b.out(k.into());
    b.ret(Some(acc.into()));

    b.finish()
}

/// `schedule_one(n, lat, succ, indeg) -> makespan`.
///
/// Computes critical-path priorities (successors always have higher ids,
/// so one reverse pass suffices), then repeatedly issues the
/// highest-priority ready instruction, one per cycle.
fn build_schedule_one() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("schedule_one", 4);
    let n = b.param(0);
    let lat = b.param(1);
    let succ = b.param(2);
    let indeg = b.param(3);

    let prio = b.reg();
    let ready_at = b.reg();
    let sched = b.reg();
    let i = b.reg();
    let j = b.reg();
    let tmp = b.reg();
    let addr = b.reg();
    let best = b.reg();
    let best_p = b.reg();
    let cycle = b.reg();
    let left = b.reg();
    let row = b.reg();
    let ns = b.reg();
    let sid = b.reg();
    let p = b.reg();
    let makespan = b.reg();

    let prio_loop = b.new_block();
    let prio_body = b.new_block();
    let psucc_loop = b.new_block();
    let psucc_body = b.new_block();
    let psucc_upd = b.new_block();
    let psucc_next = b.new_block();
    let prio_store = b.new_block();
    let main_loop = b.new_block();
    let scan_init = b.new_block();
    let scan_loop = b.new_block();
    let scan_body = b.new_block();
    let scan_blocked = b.new_block();
    let scan_candidate = b.new_block();
    let scan_take = b.new_block();
    let scan_next = b.new_block();
    let issue_or_wait = b.new_block();
    let wait = b.new_block();
    let issue = b.new_block();
    let rel_loop = b.new_block();
    let rel_body = b.new_block();
    let rel_next = b.new_block();
    let fin = b.new_block();

    // prio[i] = lat[i] + max over successors' prio; reverse order pass.
    b.alloc(prio, n.into());
    b.alloc(ready_at, n.into());
    b.alloc(sched, n.into());
    b.sub(i, n.into(), Operand::imm(1));
    b.jmp(prio_loop);

    b.switch_to(prio_loop);
    let nonneg = b.ge(i.into(), Operand::imm(0));
    b.br(nonneg, prio_body, main_loop);

    b.switch_to(prio_body);
    b.add(addr, lat.into(), i.into());
    b.load(p, addr.into());
    b.mul(row, i.into(), Operand::imm(MAX_SUCC + 1));
    b.add(row, row.into(), succ.into());
    b.load(ns, row.into());
    b.const_int(j, 0);
    let maxp = b.reg();
    b.const_int(maxp, 0);
    b.jmp(psucc_loop);

    b.switch_to(psucc_loop);
    let more_j = b.lt(j.into(), ns.into());
    b.br(more_j, psucc_body, prio_store);

    b.switch_to(psucc_body);
    b.add(addr, row.into(), Operand::imm(1));
    b.add(addr, addr.into(), j.into());
    b.load(sid, addr.into());
    b.add(addr, prio.into(), sid.into());
    b.load(tmp, addr.into());
    let bigger = b.gt(tmp.into(), maxp.into());
    b.br(bigger, psucc_upd, psucc_next);

    b.switch_to(psucc_upd);
    b.copy(maxp, tmp.into());
    b.jmp(psucc_next);

    b.switch_to(psucc_next);
    b.add(j, j.into(), Operand::imm(1));
    b.jmp(psucc_loop);

    b.switch_to(prio_store);
    b.add(p, p.into(), maxp.into());
    b.add(addr, prio.into(), i.into());
    b.store(addr.into(), p.into());
    b.sub(i, i.into(), Operand::imm(1));
    b.jmp(prio_loop);

    // Main scheduling loop.
    b.switch_to(main_loop);
    b.const_int(cycle, 0);
    b.copy(left, n.into());
    b.const_int(makespan, 0);
    b.jmp(scan_init);

    b.switch_to(scan_init);
    let any_left = b.gt(left.into(), Operand::imm(0));
    b.br(any_left, scan_loop, fin);

    b.switch_to(scan_loop);
    b.const_int(best, -1);
    b.const_int(best_p, -1);
    b.const_int(i, 0);
    b.jmp(scan_body);

    b.switch_to(scan_body);
    let more_scan = b.lt(i.into(), n.into());
    b.br(more_scan, scan_blocked, issue_or_wait);

    b.switch_to(scan_blocked);
    // Skip already-scheduled or dependent instructions.
    b.add(addr, sched.into(), i.into());
    b.load(tmp, addr.into());
    let is_sched = b.ne(tmp.into(), Operand::imm(0));
    let skip1 = b.reg();
    b.add(addr, indeg.into(), i.into());
    b.load(skip1, addr.into());
    let blocked = b.gt(skip1.into(), Operand::imm(0));
    let either = b.reg();
    b.bin(brepl_ir::BinOp::Or, either, is_sched.into(), blocked.into());
    b.br(either, scan_next, scan_candidate);

    b.switch_to(scan_candidate);
    // Not yet ready this cycle?
    b.add(addr, ready_at.into(), i.into());
    b.load(tmp, addr.into());
    let not_ready = b.gt(tmp.into(), cycle.into());
    b.br(not_ready, scan_next, scan_take);

    b.switch_to(scan_take);
    b.add(addr, prio.into(), i.into());
    b.load(p, addr.into());
    let better = b.gt(p.into(), best_p.into());
    let upd = b.new_block();
    b.br(better, upd, scan_next);

    b.switch_to(upd);
    b.copy(best, i.into());
    b.copy(best_p, p.into());
    b.jmp(scan_next);

    b.switch_to(scan_next);
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(scan_body);

    b.switch_to(issue_or_wait);
    let none = b.lt(best.into(), Operand::imm(0));
    b.br(none, wait, issue);

    b.switch_to(wait);
    b.add(cycle, cycle.into(), Operand::imm(1));
    b.jmp(scan_init);

    b.switch_to(issue);
    b.add(addr, sched.into(), best.into());
    b.store(addr.into(), Operand::imm(1));
    b.sub(left, left.into(), Operand::imm(1));
    // finish time = cycle + lat[best]
    b.add(addr, lat.into(), best.into());
    b.load(tmp, addr.into());
    b.add(tmp, tmp.into(), cycle.into());
    let is_later = b.gt(tmp.into(), makespan.into());
    let upd_span = b.new_block();
    let rel_start = b.new_block();
    b.br(is_later, upd_span, rel_start);

    b.switch_to(upd_span);
    b.copy(makespan, tmp.into());
    b.jmp(rel_start);

    // Release successors: indeg -= 1, ready_at = max(ready_at, finish).
    b.switch_to(rel_start);
    b.mul(row, best.into(), Operand::imm(MAX_SUCC + 1));
    b.add(row, row.into(), succ.into());
    b.load(ns, row.into());
    b.const_int(j, 0);
    b.jmp(rel_loop);

    b.switch_to(rel_loop);
    let more_rel = b.lt(j.into(), ns.into());
    b.br(more_rel, rel_body, rel_next);

    b.switch_to(rel_body);
    b.add(addr, row.into(), Operand::imm(1));
    b.add(addr, addr.into(), j.into());
    b.load(sid, addr.into());
    b.add(addr, indeg.into(), sid.into());
    let dv = b.reg();
    b.load(dv, addr.into());
    b.sub(dv, dv.into(), Operand::imm(1));
    b.store(addr.into(), dv.into());
    b.add(addr, ready_at.into(), sid.into());
    b.load(dv, addr.into());
    let later = b.gt(tmp.into(), dv.into());
    let bump = b.new_block();
    let no_bump = b.new_block();
    b.br(later, bump, no_bump);

    b.switch_to(bump);
    b.store(addr.into(), tmp.into());
    b.jmp(no_bump);

    b.switch_to(no_bump);
    b.add(j, j.into(), Operand::imm(1));
    b.jmp(rel_loop);

    b.switch_to(rel_next);
    b.add(cycle, cycle.into(), Operand::imm(1));
    b.jmp(scan_init);

    b.switch_to(fin);
    b.ret(Some(makespan.into()));

    b.finish()
}

/// Generates a stream of random dependence DAGs. Successor ids are always
/// larger than the instruction's own id, so the reverse-order priority
/// pass is valid.
fn generate_dags(scale: Scale, seed: u64) -> Vec<Value> {
    let (dags, size) = match scale {
        Scale::Small => (12, 60),
        Scale::Full => (120, 160),
    };
    let mut rng = XorShift::new(0x5EED ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut out = vec![Value::Int(dags)];
    for _ in 0..dags {
        let n = size + rng.range(0, size / 2);
        out.push(Value::Int(n));
        for i in 0..n {
            out.push(Value::Int(rng.range(1, 5))); // latency
            let room = (n - 1 - i).min(MAX_SUCC);
            let ns = if room > 0 { rng.range(0, room + 1) } else { 0 };
            out.push(Value::Int(ns));
            let mut picked = Vec::new();
            while (picked.len() as i64) < ns {
                let cand = i + 1 + rng.range(0, (n - i - 1).clamp(1, 12));
                if cand < n && !picked.contains(&cand) {
                    picked.push(cand);
                } else if picked.len() as i64 + (n - i - 1) <= ns {
                    break;
                }
            }
            let ns_slot = out.len() - 1;
            out[ns_slot] = Value::Int(picked.len() as i64);
            for s in picked {
                out.push(Value::Int(s));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_all_dags() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        assert_eq!(output[1].as_int(), Some(12));
        assert!(outcome.trace.len() > 20_000);
    }

    #[test]
    fn makespan_is_at_least_critical_path() {
        // The checksum mixes makespans; sanity: the run terminates without
        // the wait state spinning forever (fuel default would trap).
        let w = build(Scale::Small);
        assert!(w.run().is_ok());
    }
}
