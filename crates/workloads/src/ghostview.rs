//! `ghostview` — a vector-drawing interpreter rasterizing into a
//! framebuffer, standing in for the PostScript previewer. The opcode
//! dispatch chain gives correlated equality branches, Bresenham's line
//! error term gives a data-dependent intra-loop branch, and the pixel
//! bounds checks give strongly biased branches.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

const WIDTH: i64 = 128;
const HEIGHT: i64 = 96;

/// Builds the ghostview workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the ghostview workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let mut module = Module::new();
    module.push_function(build_set_pixel());
    module.push_function(build_draw_line());
    module.push_function(build_fill_rect());
    module.push_function(build_main());
    module.verify().expect("ghostview module must verify");
    Workload {
        name: "ghostview",
        description: "vector-drawing interpreter with Bresenham rasterization",
        module,
        args: vec![],
        input: generate_scene(scale, seed),
    }
}

/// `set_pixel(fb, x, y, color)` — bounds-checked pixel write.
fn build_set_pixel() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("set_pixel", 4);
    let fb = b.param(0);
    let x = b.param(1);
    let y = b.param(2);
    let color = b.param(3);
    let ok1 = b.new_block();
    let ok2 = b.new_block();
    let ok3 = b.new_block();
    let write = b.new_block();
    let skip = b.new_block();

    let c1 = b.ge(x.into(), Operand::imm(0));
    b.br(c1, ok1, skip);
    b.switch_to(ok1);
    let c2 = b.lt(x.into(), Operand::imm(WIDTH));
    b.br(c2, ok2, skip);
    b.switch_to(ok2);
    let c3 = b.ge(y.into(), Operand::imm(0));
    b.br(c3, ok3, skip);
    b.switch_to(ok3);
    let c4 = b.lt(y.into(), Operand::imm(HEIGHT));
    b.br(c4, write, skip);
    b.switch_to(write);
    let addr = b.reg();
    b.mul(addr, y.into(), Operand::imm(WIDTH));
    b.add(addr, addr.into(), x.into());
    b.add(addr, addr.into(), fb.into());
    let old = b.reg();
    b.load(old, addr.into());
    let mixed = b.reg();
    b.add(mixed, old.into(), color.into());
    b.bin(brepl_ir::BinOp::And, mixed, mixed.into(), Operand::imm(255));
    b.store(addr.into(), mixed.into());
    b.ret(Some(Operand::imm(1)));
    b.switch_to(skip);
    b.ret(Some(Operand::imm(0)));
    b.finish()
}

/// `draw_line(fb, x0, y0, x1, y1)` — integer Bresenham, all octants.
fn build_draw_line() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("draw_line", 5);
    let fb = b.param(0);
    let x0 = b.param(1);
    let y0 = b.param(2);
    let x1 = b.param(3);
    let y1 = b.param(4);

    let dx = b.reg();
    let dy = b.reg();
    let sx = b.reg();
    let sy = b.reg();
    let err = b.reg();
    let e2 = b.reg();
    let x = b.reg();
    let y = b.reg();
    let tmp = b.reg();

    let sx_neg = b.new_block();
    let sx_done = b.new_block();
    let sy_neg = b.new_block();
    let sy_done = b.new_block();
    let dy_fix = b.new_block();
    let dy_done = b.new_block();
    let dx_fix = b.new_block();
    let dx_done = b.new_block();
    let loop_head = b.new_block();
    let at_end = b.new_block();
    let step = b.new_block();
    let do_x = b.new_block();
    let no_x = b.new_block();
    let do_y = b.new_block();
    let no_y = b.new_block();
    let fin = b.new_block();

    b.copy(x, x0.into());
    b.copy(y, y0.into());
    b.sub(dx, x1.into(), x0.into());
    b.sub(dy, y1.into(), y0.into());
    b.const_int(sx, 1);
    b.const_int(sy, 1);
    let xneg = b.lt(dx.into(), Operand::imm(0));
    b.br(xneg, sx_neg, sx_done);

    b.switch_to(sx_neg);
    b.const_int(sx, -1);
    b.jmp(sx_done);

    b.switch_to(sx_done);
    let yneg = b.lt(dy.into(), Operand::imm(0));
    b.br(yneg, sy_neg, sy_done);

    b.switch_to(sy_neg);
    b.const_int(sy, -1);
    b.jmp(sy_done);

    b.switch_to(sy_done);
    // dx = |dx|, dy = -|dy| (standard all-octant formulation).
    let dxn = b.lt(dx.into(), Operand::imm(0));
    b.br(dxn, dx_fix, dx_done);
    b.switch_to(dx_fix);
    b.sub(dx, Operand::imm(0), dx.into());
    b.jmp(dx_done);
    b.switch_to(dx_done);
    let dyp = b.gt(dy.into(), Operand::imm(0));
    b.br(dyp, dy_fix, dy_done);
    b.switch_to(dy_fix);
    b.sub(dy, Operand::imm(0), dy.into());
    b.jmp(dy_done);
    b.switch_to(dy_done);
    b.add(err, dx.into(), dy.into());
    b.jmp(loop_head);

    b.switch_to(loop_head);
    b.call(
        None,
        "set_pixel",
        vec![fb.into(), x.into(), y.into(), Operand::imm(7)],
    );
    let ex = b.eq(x.into(), x1.into());
    let ey = b.eq(y.into(), y1.into());
    b.bin(brepl_ir::BinOp::And, tmp, ex.into(), ey.into());
    b.br(tmp, at_end, step);

    b.switch_to(at_end);
    b.jmp(fin);

    b.switch_to(step);
    b.mul(e2, err.into(), Operand::imm(2));
    let ge_dy = b.ge(e2.into(), dy.into());
    b.br(ge_dy, do_x, no_x);

    b.switch_to(do_x);
    b.add(err, err.into(), dy.into());
    b.add(x, x.into(), sx.into());
    b.jmp(no_x);

    b.switch_to(no_x);
    let le_dx = b.le(e2.into(), dx.into());
    b.br(le_dx, do_y, no_y);

    b.switch_to(do_y);
    b.add(err, err.into(), dx.into());
    b.add(y, y.into(), sy.into());
    b.jmp(no_y);

    b.switch_to(no_y);
    b.jmp(loop_head);

    b.switch_to(fin);
    b.ret(None);
    b.finish()
}

/// `fill_rect(fb, x, y, w, h)` — nested row/column loops.
fn build_fill_rect() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("fill_rect", 5);
    let fb = b.param(0);
    let x = b.param(1);
    let y = b.param(2);
    let w = b.param(3);
    let h = b.param(4);
    let i = b.reg();
    let j = b.reg();
    let px = b.reg();
    let py = b.reg();

    let row_loop = b.new_block();
    let row_body = b.new_block();
    let col_loop = b.new_block();
    let col_body = b.new_block();
    let col_done = b.new_block();
    let fin = b.new_block();

    b.const_int(i, 0);
    b.jmp(row_loop);

    b.switch_to(row_loop);
    let more_rows = b.lt(i.into(), h.into());
    b.br(more_rows, row_body, fin);

    b.switch_to(row_body);
    b.const_int(j, 0);
    b.add(py, y.into(), i.into());
    b.jmp(col_loop);

    b.switch_to(col_loop);
    let more_cols = b.lt(j.into(), w.into());
    b.br(more_cols, col_body, col_done);

    b.switch_to(col_body);
    b.add(px, x.into(), j.into());
    b.call(
        None,
        "set_pixel",
        vec![fb.into(), px.into(), py.into(), Operand::imm(3)],
    );
    b.add(j, j.into(), Operand::imm(1));
    b.jmp(col_loop);

    b.switch_to(col_done);
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(row_loop);

    b.switch_to(fin);
    b.ret(None);
    b.finish()
}

/// `main`: allocate the framebuffer, dispatch drawing ops, checksum.
fn build_main() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let fb = b.reg();
    let op = b.reg();
    let a1 = b.reg();
    let a2 = b.reg();
    let a3 = b.reg();
    let a4 = b.reg();
    let i = b.reg();
    let acc = b.reg();
    let tmp = b.reg();
    let addr = b.reg();

    let dispatch = b.new_block();
    let read_args = b.new_block();
    let is_line = b.new_block();
    let not_line = b.new_block();
    let is_rect = b.new_block();
    let is_hline = b.new_block();
    let op_done = b.new_block();
    let checksum = b.new_block();
    let sum_body = b.new_block();
    let fin = b.new_block();

    b.alloc(fb, Operand::imm(WIDTH * HEIGHT));
    b.jmp(dispatch);

    b.switch_to(dispatch);
    let o = b.input();
    b.copy(op, o.into());
    let end = b.le(op.into(), Operand::imm(0));
    b.br(end, checksum, read_args);

    b.switch_to(read_args);
    let v1 = b.input();
    b.copy(a1, v1.into());
    let v2 = b.input();
    b.copy(a2, v2.into());
    let v3 = b.input();
    b.copy(a3, v3.into());
    let v4 = b.input();
    b.copy(a4, v4.into());
    let line = b.eq(op.into(), Operand::imm(1));
    b.br(line, is_line, not_line);

    b.switch_to(is_line);
    b.call(
        None,
        "draw_line",
        vec![fb.into(), a1.into(), a2.into(), a3.into(), a4.into()],
    );
    b.jmp(op_done);

    b.switch_to(not_line);
    let rect = b.eq(op.into(), Operand::imm(2));
    b.br(rect, is_rect, is_hline);

    b.switch_to(is_rect);
    b.call(
        None,
        "fill_rect",
        vec![fb.into(), a1.into(), a2.into(), a3.into(), a4.into()],
    );
    b.jmp(op_done);

    // Horizontal line: a degenerate rect of height 1 (a4 unused).
    b.switch_to(is_hline);
    b.call(
        None,
        "fill_rect",
        vec![fb.into(), a1.into(), a2.into(), a3.into(), Operand::imm(1)],
    );
    b.jmp(op_done);

    b.switch_to(op_done);
    b.jmp(dispatch);

    // Checksum the framebuffer.
    b.switch_to(checksum);
    b.const_int(i, 0);
    b.const_int(acc, 5);
    b.jmp(sum_body);

    b.switch_to(sum_body);
    let more = b.lt(i.into(), Operand::imm(WIDTH * HEIGHT));
    let body = b.new_block();
    b.br(more, body, fin);

    b.switch_to(body);
    b.add(addr, fb.into(), i.into());
    b.load(tmp, addr.into());
    b.mul(acc, acc.into(), Operand::imm(33));
    b.add(acc, acc.into(), tmp.into());
    b.bin(
        brepl_ir::BinOp::And,
        acc,
        acc.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(sum_body);

    b.switch_to(fin);
    b.out(acc.into());
    b.ret(Some(acc.into()));
    b.finish()
}

/// Generates a drawing scene: lines, rectangles and horizontal strokes,
/// some deliberately clipping the framebuffer edge so the bounds-check
/// branches occasionally go the cold way.
fn generate_scene(scale: Scale, seed: u64) -> Vec<Value> {
    let ops = match scale {
        Scale::Small => 300,
        Scale::Full => 9_000,
    };
    let mut rng = XorShift::new(0x9057 ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut out = Vec::with_capacity(ops * 5 + 1);
    for _ in 0..ops {
        let kind = match rng.below(10) {
            0..=4 => 1, // line
            5..=7 => 2, // rect
            _ => 3,     // hline
        };
        out.push(Value::Int(kind));
        match kind {
            1 => {
                // Some endpoints off-screen to exercise clipping.
                out.push(Value::Int(rng.range(-10, WIDTH + 10)));
                out.push(Value::Int(rng.range(-10, HEIGHT + 10)));
                out.push(Value::Int(rng.range(-10, WIDTH + 10)));
                out.push(Value::Int(rng.range(-10, HEIGHT + 10)));
            }
            2 => {
                out.push(Value::Int(rng.range(0, WIDTH - 1)));
                out.push(Value::Int(rng.range(0, HEIGHT - 1)));
                out.push(Value::Int(rng.range(1, 24)));
                out.push(Value::Int(rng.range(1, 16)));
            }
            _ => {
                out.push(Value::Int(rng.range(0, WIDTH - 1)));
                out.push(Value::Int(rng.range(0, HEIGHT - 1)));
                out.push(Value::Int(rng.range(4, 60)));
                out.push(Value::Int(0));
            }
        }
    }
    out.push(Value::Int(0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scene() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        assert_eq!(output.len(), 1);
        assert!(output[0].as_int().unwrap() > 0);
        assert!(outcome.trace.len() > 30_000);
    }

    #[test]
    fn bounds_checks_are_biased() {
        let w = build(Scale::Small);
        let outcome = w.run().unwrap();
        let stats = outcome.trace.stats();
        let biased = stats
            .iter_executed()
            .filter(|(_, c)| {
                c.total() > 1000 && (c.minority_count() as f64) < 0.12 * c.total() as f64
            })
            .count();
        assert!(biased >= 3, "bounds checks should be strongly biased");
    }
}
