//! `compress` — LZW compression with a hash-table dictionary, standing in
//! for the SPEC `compress` benchmark. The probe loop, the hit/miss branch
//! and the dictionary-full check give the mix of biased and data-dependent
//! branches typical of compressors.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

/// log2 of the hash-table size.
const TABLE_BITS: i64 = 14;
const TABLE_SIZE: i64 = 1 << TABLE_BITS;
/// Maximum dictionary code before we stop inserting. Must stay well below
/// the table capacity or the open-addressing probe loop would degenerate
/// (a full table has no empty slot to terminate a miss).
const MAX_CODE: i64 = 256 + (TABLE_SIZE * 3) / 4;

/// Builds the compress workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the compress workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let mut module = Module::new();
    module.push_function(build_main());
    module.verify().expect("compress module must verify");
    Workload {
        name: "compress",
        description: "LZW compression over synthetic text (hash-table dictionary)",
        module,
        args: vec![],
        input: generate_text(scale, seed),
    }
}

fn build_main() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    // Registers.
    let tbl = b.reg(); // table base: pairs (key+1, code)
    let next_code = b.reg();
    let prefix = b.reg();
    let c = b.reg();
    let key = b.reg();
    let h = b.reg();
    let k = b.reg();
    let checksum = b.reg();
    let count = b.reg();
    let tmp = b.reg();
    let addr = b.reg();

    let read_loop = b.new_block();
    let have_char = b.new_block();
    let probe = b.new_block();
    let probe_empty = b.new_block();
    let probe_hit_check = b.new_block();
    let probe_hit = b.new_block();
    let probe_next = b.new_block();
    let emit = b.new_block();
    let insert = b.new_block();
    let after_insert = b.new_block();
    let finish = b.new_block();
    let done = b.new_block();

    // Entry: allocate table, read first symbol.
    b.alloc(tbl, Operand::imm(TABLE_SIZE * 2));
    b.const_int(next_code, 256);
    b.const_int(checksum, 7);
    b.const_int(count, 0);
    let first = b.input();
    b.copy(prefix, first.into());
    let c0 = b.lt(prefix.into(), Operand::imm(0));
    b.br(c0, done, read_loop);

    // read_loop: next symbol.
    b.switch_to(read_loop);
    let nxt = b.input();
    b.copy(c, nxt.into());
    let eof = b.lt(c.into(), Operand::imm(0));
    b.br(eof, finish, have_char);

    // have_char: key = prefix * 512 + c ; h = hash(key).
    b.switch_to(have_char);
    b.mul(key, prefix.into(), Operand::imm(512));
    b.add(key, key.into(), c.into());
    b.mul(h, key.into(), Operand::imm(40503));
    b.bin(
        brepl_ir::BinOp::And,
        h,
        h.into(),
        Operand::imm(TABLE_SIZE - 1),
    );
    b.jmp(probe);

    // probe: k = tbl[2h]; empty / hit / collision.
    b.switch_to(probe);
    b.mul(addr, h.into(), Operand::imm(2));
    b.add(addr, addr.into(), tbl.into());
    b.load(k, addr.into());
    let is_empty = b.eq(k.into(), Operand::imm(0));
    b.br(is_empty, probe_empty, probe_hit_check);

    b.switch_to(probe_hit_check);
    b.add(tmp, key.into(), Operand::imm(1));
    let is_hit = b.eq(k.into(), tmp.into());
    b.br(is_hit, probe_hit, probe_next);

    // probe_next: linear probing.
    b.switch_to(probe_next);
    b.add(h, h.into(), Operand::imm(1));
    b.bin(
        brepl_ir::BinOp::And,
        h,
        h.into(),
        Operand::imm(TABLE_SIZE - 1),
    );
    b.jmp(probe);

    // probe_hit: extend the phrase.
    b.switch_to(probe_hit);
    b.add(tmp, addr.into(), Operand::imm(1));
    b.load(prefix, tmp.into());
    b.jmp(read_loop);

    // probe_empty: emit prefix code, maybe insert the new phrase.
    b.switch_to(probe_empty);
    b.jmp(emit);

    b.switch_to(emit);
    // checksum = checksum * 31 + prefix (mod 2^40 to stay bounded).
    b.mul(checksum, checksum.into(), Operand::imm(31));
    b.add(checksum, checksum.into(), prefix.into());
    b.bin(
        brepl_ir::BinOp::And,
        checksum,
        checksum.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(count, count.into(), Operand::imm(1));
    let full = b.ge(next_code.into(), Operand::imm(MAX_CODE));
    b.br(full, after_insert, insert);

    b.switch_to(insert);
    b.add(tmp, key.into(), Operand::imm(1));
    b.store(addr.into(), tmp.into());
    b.add(tmp, addr.into(), Operand::imm(1));
    b.store(tmp.into(), next_code.into());
    b.add(next_code, next_code.into(), Operand::imm(1));
    b.jmp(after_insert);

    b.switch_to(after_insert);
    b.copy(prefix, c.into());
    b.jmp(read_loop);

    // finish: flush last code.
    b.switch_to(finish);
    b.mul(checksum, checksum.into(), Operand::imm(31));
    b.add(checksum, checksum.into(), prefix.into());
    b.add(count, count.into(), Operand::imm(1));
    b.jmp(done);

    b.switch_to(done);
    b.out(checksum.into());
    b.out(count.into());
    b.out(next_code.into());
    b.ret(Some(checksum.into()));

    b.finish()
}

/// Synthetic "text": words drawn from a Zipf-ish vocabulary with spaces,
/// so phrases repeat and the dictionary actually compresses.
fn generate_text(scale: Scale, seed: u64) -> Vec<Value> {
    let symbols = match scale {
        Scale::Small => 20_000,
        Scale::Full => 600_000,
    };
    let mut rng = XorShift::new(0xC0FFEE ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    // Vocabulary of 64 words, lengths 2..=9, over 26 letters.
    let vocab: Vec<Vec<i64>> = (0..64)
        .map(|_| {
            let len = rng.range(2, 10);
            (0..len).map(|_| rng.range(97, 123)).collect()
        })
        .collect();
    let mut out = Vec::with_capacity(symbols + 16);
    while out.len() < symbols {
        // Zipf-ish: prefer early vocabulary entries.
        let r = rng.below(64 * 65 / 2) as usize;
        let mut idx = 0;
        let mut acc = 64;
        while r >= acc && idx < 63 {
            idx += 1;
            acc += 64 - idx;
        }
        for &ch in &vocab[idx] {
            out.push(Value::Int(ch));
        }
        out.push(Value::Int(32));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compresses_and_terminates() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        assert_eq!(output.len(), 3);
        let count = output[1].as_int().unwrap();
        let codes = output[2].as_int().unwrap();
        // Compression: emitted codes are far fewer than input symbols.
        assert!(count > 0);
        assert!((count as usize) < w.input.len() / 2, "count={count}");
        assert!(codes > 256, "dictionary grew");
        assert!(outcome.trace.len() > 10_000);
    }

    #[test]
    fn probe_loop_branches_are_biased() {
        let w = build(Scale::Small);
        let outcome = w.run().unwrap();
        let stats = outcome.trace.stats();
        // Profile prediction should do reasonably well on a compressor
        // (most branches are biased), but clearly not perfectly.
        let pct = stats.profile_misprediction_percent();
        assert!(pct > 0.5 && pct < 30.0, "misprediction {pct}");
    }
}
