//! `c-compiler` — a compiler front end standing in for lcc: a character
//! lexer and recursive-descent expression/statement parser with on-the-fly
//! constant evaluation. Token-kind dispatch produces chains of equality
//! branches (prime targets for correlation), and the precedence-climbing
//! loops produce intra-loop branches keyed to the input grammar.
//!
//! The accepted language:
//!
//! ```text
//! program := stmt*
//! stmt    := VAR '=' expr ';'   (assignment)
//!          | '!' VAR ';'        (print variable)
//! expr    := term  (('+'|'-') term)*
//! term    := factor (('*'|'/') factor)*
//! factor  := DIGIT | VAR | '(' expr ')' | '-' factor
//! ```

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

// Global word layout.
const G_KIND: i64 = 0; // current token kind
const G_VALUE: i64 = 1; // current token value (digit or var index)
const G_VARS: i64 = 2; // 26 variable slots
const GLOBALS: usize = 32;

// Token kinds.
const T_EOF: i64 = 0;
const T_NUM: i64 = 1;
const T_VAR: i64 = 2;
const T_PLUS: i64 = 3;
const T_MINUS: i64 = 4;
const T_STAR: i64 = 5;
const T_SLASH: i64 = 6;
const T_LPAREN: i64 = 7;
const T_RPAREN: i64 = 8;
const T_ASSIGN: i64 = 9;
const T_SEMI: i64 = 10;
const T_PRINT: i64 = 11;

/// Builds the c-compiler workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the c-compiler workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let mut module = Module::new();
    module.reserve_globals(GLOBALS);
    module.push_function(build_next_token());
    module.push_function(build_parse_factor());
    module.push_function(build_parse_term());
    module.push_function(build_parse_expr());
    module.push_function(build_main());
    module.verify().expect("c-compiler module must verify");
    Workload {
        name: "c-compiler",
        description: "lexer + recursive-descent parser with constant evaluation",
        module,
        args: vec![],
        input: generate_source(scale, seed),
    }
}

/// `next_token()` — reads characters, classifies them, stores kind/value
/// in globals. Whitespace is skipped in a loop.
fn build_next_token() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("next_token", 0);
    let ch = b.reg();

    let read = b.new_block();
    let not_eof = b.new_block();
    let not_space = b.new_block();
    let digit = b.new_block();
    let not_digit = b.new_block();
    let var = b.new_block();
    let not_var = b.new_block();
    let eof = b.new_block();
    let fin = b.new_block();

    b.jmp(read);

    b.switch_to(read);
    let c = b.input();
    b.copy(ch, c.into());
    let is_eof = b.lt(ch.into(), Operand::imm(0));
    b.br(is_eof, eof, not_eof);

    b.switch_to(not_eof);
    let is_space = b.eq(ch.into(), Operand::imm(32));
    b.br(is_space, read, not_space);

    b.switch_to(not_space);
    // Digit: '0'..='9' (48..=57).
    let ge0 = b.ge(ch.into(), Operand::imm(48));
    let le9 = b.le(ch.into(), Operand::imm(57));
    let is_digit = b.reg();
    b.bin(brepl_ir::BinOp::And, is_digit, ge0.into(), le9.into());
    b.br(is_digit, digit, not_digit);

    b.switch_to(digit);
    b.store(Operand::imm(G_KIND), Operand::imm(T_NUM));
    let v = b.reg();
    b.sub(v, ch.into(), Operand::imm(48));
    b.store(Operand::imm(G_VALUE), v.into());
    b.jmp(fin);

    b.switch_to(not_digit);
    // Variable: 'a'..='z' (97..=122).
    let gea = b.ge(ch.into(), Operand::imm(97));
    let lez = b.le(ch.into(), Operand::imm(122));
    let is_var = b.reg();
    b.bin(brepl_ir::BinOp::And, is_var, gea.into(), lez.into());
    b.br(is_var, var, not_var);

    b.switch_to(var);
    b.store(Operand::imm(G_KIND), Operand::imm(T_VAR));
    let vv = b.reg();
    b.sub(vv, ch.into(), Operand::imm(97));
    b.store(Operand::imm(G_VALUE), vv.into());
    b.jmp(fin);

    // Operator chain: one equality test per operator character — the
    // correlated dispatch pattern.
    b.switch_to(not_var);
    let table: [(i64, i64); 9] = [
        (43, T_PLUS),
        (45, T_MINUS),
        (42, T_STAR),
        (47, T_SLASH),
        (40, T_LPAREN),
        (41, T_RPAREN),
        (61, T_ASSIGN),
        (59, T_SEMI),
        (33, T_PRINT),
    ];
    for (code, kind) in table {
        let hit = b.new_block();
        let miss = b.new_block();
        let is = b.eq(ch.into(), Operand::imm(code));
        b.br(is, hit, miss);
        b.switch_to(hit);
        b.store(Operand::imm(G_KIND), Operand::imm(kind));
        b.jmp(fin);
        b.switch_to(miss);
    }
    // Unknown characters read as EOF (robustness; generator never emits
    // them).
    b.jmp(eof);

    b.switch_to(eof);
    b.store(Operand::imm(G_KIND), Operand::imm(T_EOF));
    b.jmp(fin);

    b.switch_to(fin);
    b.ret(None);
    b.finish()
}

/// `parse_factor() -> value`.
fn build_parse_factor() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("parse_factor", 0);
    let kind = b.reg();
    let value = b.reg();
    let result = b.reg();

    let num = b.new_block();
    let not_num = b.new_block();
    let var = b.new_block();
    let not_var = b.new_block();
    let paren = b.new_block();
    let not_paren = b.new_block();
    let neg = b.new_block();
    let bad = b.new_block();
    let fin = b.new_block();

    b.load(kind, Operand::imm(G_KIND));
    b.load(value, Operand::imm(G_VALUE));
    let is_num = b.eq(kind.into(), Operand::imm(T_NUM));
    b.br(is_num, num, not_num);

    b.switch_to(num);
    b.copy(result, value.into());
    b.call(None, "next_token", vec![]);
    b.jmp(fin);

    b.switch_to(not_num);
    let is_var = b.eq(kind.into(), Operand::imm(T_VAR));
    b.br(is_var, var, not_var);

    b.switch_to(var);
    let addr = b.reg();
    b.add(addr, Operand::imm(G_VARS), value.into());
    b.load(result, addr.into());
    b.call(None, "next_token", vec![]);
    b.jmp(fin);

    b.switch_to(not_var);
    let is_paren = b.eq(kind.into(), Operand::imm(T_LPAREN));
    b.br(is_paren, paren, not_paren);

    b.switch_to(paren);
    b.call(None, "next_token", vec![]);
    b.call(Some(result), "parse_expr", vec![]);
    // Expect ')' — consume it unconditionally (error recovery: ignore).
    b.call(None, "next_token", vec![]);
    b.jmp(fin);

    b.switch_to(not_paren);
    let is_neg = b.eq(kind.into(), Operand::imm(T_MINUS));
    b.br(is_neg, neg, bad);

    b.switch_to(neg);
    b.call(None, "next_token", vec![]);
    let inner = b.reg();
    b.call(Some(inner), "parse_factor", vec![]);
    b.sub(result, Operand::imm(0), inner.into());
    b.jmp(fin);

    b.switch_to(bad);
    b.const_int(result, 0);
    b.call(None, "next_token", vec![]);
    b.jmp(fin);

    b.switch_to(fin);
    b.ret(Some(result.into()));
    b.finish()
}

/// `parse_term() -> value` — factors joined by `*` and `/`.
fn build_parse_term() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("parse_term", 0);
    let acc = b.reg();
    let rhs = b.reg();
    let kind = b.reg();

    let loop_head = b.new_block();
    let star = b.new_block();
    let not_star = b.new_block();
    let slash = b.new_block();
    let safe_div = b.new_block();
    let div_zero = b.new_block();
    let fin = b.new_block();

    b.call(Some(acc), "parse_factor", vec![]);
    b.jmp(loop_head);

    b.switch_to(loop_head);
    b.load(kind, Operand::imm(G_KIND));
    let is_star = b.eq(kind.into(), Operand::imm(T_STAR));
    b.br(is_star, star, not_star);

    b.switch_to(star);
    b.call(None, "next_token", vec![]);
    b.call(Some(rhs), "parse_factor", vec![]);
    b.mul(acc, acc.into(), rhs.into());
    b.jmp(loop_head);

    b.switch_to(not_star);
    let is_slash = b.eq(kind.into(), Operand::imm(T_SLASH));
    b.br(is_slash, slash, fin);

    b.switch_to(slash);
    b.call(None, "next_token", vec![]);
    b.call(Some(rhs), "parse_factor", vec![]);
    let nz = b.ne(rhs.into(), Operand::imm(0));
    b.br(nz, safe_div, div_zero);

    b.switch_to(safe_div);
    b.div(acc, acc.into(), rhs.into());
    b.jmp(loop_head);

    b.switch_to(div_zero);
    b.const_int(acc, 0);
    b.jmp(loop_head);

    b.switch_to(fin);
    b.ret(Some(acc.into()));
    b.finish()
}

/// `parse_expr() -> value` — terms joined by `+` and `-`.
fn build_parse_expr() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("parse_expr", 0);
    let acc = b.reg();
    let rhs = b.reg();
    let kind = b.reg();

    let loop_head = b.new_block();
    let plus = b.new_block();
    let not_plus = b.new_block();
    let minus = b.new_block();
    let fin = b.new_block();

    b.call(Some(acc), "parse_term", vec![]);
    b.jmp(loop_head);

    b.switch_to(loop_head);
    b.load(kind, Operand::imm(G_KIND));
    let is_plus = b.eq(kind.into(), Operand::imm(T_PLUS));
    b.br(is_plus, plus, not_plus);

    b.switch_to(plus);
    b.call(None, "next_token", vec![]);
    b.call(Some(rhs), "parse_term", vec![]);
    b.add(acc, acc.into(), rhs.into());
    b.jmp(loop_head);

    b.switch_to(not_plus);
    let is_minus = b.eq(kind.into(), Operand::imm(T_MINUS));
    b.br(is_minus, minus, fin);

    b.switch_to(minus);
    b.call(None, "next_token", vec![]);
    b.call(Some(rhs), "parse_term", vec![]);
    b.sub(acc, acc.into(), rhs.into());
    b.jmp(loop_head);

    b.switch_to(fin);
    b.ret(Some(acc.into()));
    b.finish()
}

/// `main` — statement loop.
fn build_main() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let kind = b.reg();
    let target = b.reg();
    let value = b.reg();
    let stmts = b.reg();
    let checksum = b.reg();
    let addr = b.reg();

    let stmt_loop = b.new_block();
    let assign = b.new_block();
    let not_assign = b.new_block();
    let print = b.new_block();
    let skip = b.new_block();
    let semi = b.new_block();
    let fin = b.new_block();

    b.const_int(stmts, 0);
    b.const_int(checksum, 11);
    b.call(None, "next_token", vec![]);
    b.jmp(stmt_loop);

    b.switch_to(stmt_loop);
    b.load(kind, Operand::imm(G_KIND));
    let is_var = b.eq(kind.into(), Operand::imm(T_VAR));
    b.br(is_var, assign, not_assign);

    // VAR '=' expr ';'
    b.switch_to(assign);
    b.load(target, Operand::imm(G_VALUE));
    b.call(None, "next_token", vec![]); // consume var, expect '='
    b.call(None, "next_token", vec![]); // consume '='
    b.call(Some(value), "parse_expr", vec![]);
    b.add(addr, Operand::imm(G_VARS), target.into());
    b.store(addr.into(), value.into());
    b.jmp(semi);

    b.switch_to(not_assign);
    let is_print = b.eq(kind.into(), Operand::imm(T_PRINT));
    b.br(is_print, print, fin);

    // '!' VAR ';'
    b.switch_to(print);
    b.call(None, "next_token", vec![]);
    b.load(target, Operand::imm(G_VALUE));
    b.add(addr, Operand::imm(G_VARS), target.into());
    b.load(value, addr.into());
    b.mul(checksum, checksum.into(), Operand::imm(31));
    b.add(checksum, checksum.into(), value.into());
    b.bin(
        brepl_ir::BinOp::And,
        checksum,
        checksum.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.call(None, "next_token", vec![]); // consume var
    b.jmp(semi);

    b.switch_to(semi);
    // Current token should be ';'; consume tokens until it is (simple
    // error recovery that also handles well-formed input in one step).
    b.load(kind, Operand::imm(G_KIND));
    let is_semi = b.eq(kind.into(), Operand::imm(T_SEMI));
    let eat = b.new_block();
    b.br(is_semi, eat, skip);

    b.switch_to(skip);
    b.load(kind, Operand::imm(G_KIND));
    let at_eof = b.eq(kind.into(), Operand::imm(T_EOF));
    let eat2 = b.new_block();
    b.br(at_eof, fin, eat2);
    b.switch_to(eat2);
    b.call(None, "next_token", vec![]);
    b.jmp(semi);

    b.switch_to(eat);
    b.call(None, "next_token", vec![]);
    b.add(stmts, stmts.into(), Operand::imm(1));
    b.jmp(stmt_loop);

    b.switch_to(fin);
    b.out(checksum.into());
    b.out(stmts.into());
    b.ret(Some(checksum.into()));
    b.finish()
}

/// Generates a program as a character stream. Real source code is highly
/// repetitive — the same statement shapes recur in runs (initializer
/// blocks, accumulation chains, generated code) — so the generator
/// alternates between *template runs* (many statements of one repeated
/// shape) and free-form statements. The repetition is what gives a parser
/// the predictable branch patterns the paper measures on lcc.
fn generate_source(scale: Scale, seed: u64) -> Vec<Value> {
    let statements = match scale {
        Scale::Small => 700,
        Scale::Full => 25_000,
    };
    let mut rng = XorShift::new(0xCC0 ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut src = String::new();
    let mut initialized: Vec<u8> = Vec::new();

    let mut s = 0usize;
    while s < statements {
        if rng.chance(3, 4) && !initialized.is_empty() {
            // A template run: one statement shape repeated.
            let run = (4 + rng.below(20)) as usize;
            let shape = rng.below(3);
            let base = initialized[rng.below(initialized.len() as u64) as usize];
            for k in 0..run.min(statements - s) {
                let target = b'a' + ((base - b'a') as u64 + k as u64) as u8 % 26;
                match shape {
                    0 => {
                        // accumulate: t=t+D;
                        src.push(target as char);
                        src.push('=');
                        src.push(target as char);
                        src.push('+');
                        src.push((b'0' + rng.below(10) as u8) as char);
                        src.push(';');
                    }
                    1 => {
                        // scale: t=b*D;
                        src.push(target as char);
                        src.push('=');
                        src.push(base as char);
                        src.push('*');
                        src.push((b'1' + rng.below(9) as u8) as char);
                        src.push(';');
                    }
                    _ => {
                        // print run: !t;
                        src.push('!');
                        src.push(target as char);
                        src.push(';');
                    }
                }
                if !initialized.contains(&target) {
                    initialized.push(target);
                }
                s += 1;
            }
            continue;
        }
        // Free-form statement.
        let target = b'a' + rng.below(26) as u8;
        src.push(target as char);
        src.push('=');
        gen_expr(&mut rng, &initialized, 0, &mut src);
        src.push(';');
        if !initialized.contains(&target) {
            initialized.push(target);
        }
        if rng.chance(1, 6) {
            src.push(' ');
        }
        s += 1;
    }
    src.chars().map(|c| Value::Int(c as i64)).collect()
}

fn gen_expr(rng: &mut XorShift, vars: &[u8], depth: u32, out: &mut String) {
    let terms = rng.range(1, 4);
    for t in 0..terms {
        if t > 0 {
            out.push(if rng.chance(1, 2) { '+' } else { '-' });
        }
        gen_term(rng, vars, depth, out);
    }
}

fn gen_term(rng: &mut XorShift, vars: &[u8], depth: u32, out: &mut String) {
    let factors = rng.range(1, 3);
    for f in 0..factors {
        if f > 0 {
            // Division only by literal nonzero digits, so evaluation never
            // hits the div-by-zero recovery path by construction.
            if rng.chance(1, 4) {
                out.push('/');
                out.push((b'1' + rng.below(9) as u8) as char);
                continue;
            }
            out.push('*');
        }
        gen_factor(rng, vars, depth, out);
    }
}

fn gen_factor(rng: &mut XorShift, vars: &[u8], depth: u32, out: &mut String) {
    if depth < 3 && rng.chance(1, 5) {
        out.push('(');
        gen_expr(rng, vars, depth + 1, out);
        out.push(')');
        return;
    }
    if rng.chance(1, 8) {
        out.push('-');
    }
    if !vars.is_empty() && rng.chance(1, 2) {
        out.push(vars[rng.below(vars.len() as u64) as usize] as char);
    } else {
        out.push((b'0' + rng.below(10) as u8) as char);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_whole_program() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        let stmts = output[1].as_int().unwrap();
        assert_eq!(stmts, 700, "every statement parsed");
        assert!(outcome.trace.len() > 20_000);
    }

    #[test]
    fn hand_written_program_evaluates_correctly() {
        let mut w = build(Scale::Small);
        // a=3; b=a*4; !b;   => checksum = (11*31 + 12) & mask
        w.input = "a=3;b=a*4;!b;"
            .chars()
            .map(|c| Value::Int(c as i64))
            .collect();
        let (_, output) = w.run_with_output().unwrap();
        assert_eq!(output[0].as_int(), Some(11 * 31 + 12));
        assert_eq!(output[1].as_int(), Some(3));
    }

    #[test]
    fn precedence_and_parens() {
        let mut w = build(Scale::Small);
        // a=2+3*4; !a;  => 14
        w.input = "a=2+3*4;!a;z=(2+3)*4;!z;"
            .chars()
            .map(|c| Value::Int(c as i64))
            .collect();
        let (_, output) = w.run_with_output().unwrap();
        let expected = ((11i64 * 31 + 14) * 31 + 20) & ((1 << 40) - 1);
        assert_eq!(output[0].as_int(), Some(expected));
    }
}
