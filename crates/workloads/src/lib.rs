//! # brepl-workloads — the benchmark suite, written in the brepl IR
//!
//! The paper evaluates eight programs (abalone, a C compiler front end,
//! compress, ghostview, its own predict tool, a Prolog interpreter, an
//! instruction scheduler, and the SPEC floating-point code doduc). Those
//! binaries and datasets are unavailable, so — per the substitution rule in
//! DESIGN.md — this crate implements behaviorally analogous programs *in
//! the IR itself*: real algorithms of the same genre, whose branch
//! behavior exhibits the same phenomena the paper exploits (biased
//! branches, periodic intra-loop branches, iteration-count-regular exit
//! branches, and branches correlated with earlier branches).
//!
//! | name | genre | core algorithm |
//! |------|-------|----------------|
//! | `abalone` | game tree search | negamax with alpha-beta over a pile game |
//! | `c-compiler` | compiler front end | lexer + recursive-descent parser + constant folding |
//! | `compress` | data compression | LZW with a hash-table dictionary |
//! | `ghostview` | rendering | vector-drawing interpreter rasterizing into a framebuffer |
//! | `predict` | profiling tool | branch-trace analyzer simulating 2-bit counters |
//! | `prolog` | logic programming | unification + depth-first resolution with backtracking |
//! | `scheduler` | compiler back end | list scheduler over dependence DAGs |
//! | `doduc` | numeric (FP) | Jacobi relaxation + particle stepping kernels |
//!
//! Beyond the paper's eight, [`workload_by_name`] also serves `kmp` — a
//! Morris–Pratt matcher over random binary text whose branch rates have
//! closed forms, used to validate the static profile estimator against
//! real math. It is deliberately excluded from [`all_workloads`] so the
//! Table 1 reproduction stays exactly the paper's suite.
//!
//! ```
//! use brepl_workloads::{all_workloads, Scale};
//! let suite = all_workloads(Scale::Small);
//! assert_eq!(suite.len(), 8);
//! let compress = suite.iter().find(|w| w.name == "compress").unwrap();
//! let outcome = compress.run().unwrap();
//! assert!(outcome.trace.len() > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abalone;
mod c_compiler;
mod compress;
mod doduc;
mod ghostview;
pub mod kmp;
mod predict_tool;
mod prolog;
mod scheduler;
pub mod synth;
pub(crate) mod util;

use brepl_ir::{Module, Value};
use brepl_sim::{Machine, Outcome, RunConfig, RunError};

/// How much work a workload performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tens of thousands of branches — fast enough for debug-mode tests.
    Small,
    /// Millions of branches — the scale used by the benchmark harness.
    Full,
}

/// A ready-to-run benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The benchmark name, matching the paper's Table 1 column.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Entry-function arguments.
    pub args: Vec<Value>,
    /// Input tape consumed by the `in()` intrinsic.
    pub input: Vec<Value>,
}

impl Workload {
    /// Runs the workload and returns the outcome (result, trace, steps).
    ///
    /// # Errors
    ///
    /// Propagates any [`RunError`] — the suite is expected to run clean, so
    /// tests treat an error as failure.
    pub fn run(&self) -> Result<Outcome, RunError> {
        self.run_with_config(RunConfig::default())
    }

    /// Runs with a custom interpreter configuration.
    ///
    /// # Errors
    ///
    /// Propagates any [`RunError`].
    pub fn run_with_config(&self, config: RunConfig) -> Result<Outcome, RunError> {
        let mut machine = Machine::new(&self.module, config)?;
        machine.set_input(self.input.clone());
        machine.run("main", &self.args)
    }

    /// Runs and returns the output tape alongside the outcome.
    ///
    /// # Errors
    ///
    /// Propagates any [`RunError`].
    pub fn run_with_output(&self) -> Result<(Outcome, Vec<Value>), RunError> {
        let mut machine = Machine::new(&self.module, RunConfig::default())?;
        machine.set_input(self.input.clone());
        let outcome = machine.run("main", &self.args)?;
        Ok((outcome, machine.output().to_vec()))
    }
}

/// Builds the full eight-program suite at the given scale.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    vec![
        abalone::build(scale),
        c_compiler::build(scale),
        compress::build(scale),
        ghostview::build(scale),
        predict_tool::build(scale),
        prolog::build(scale),
        scheduler::build(scale),
        doduc::build(scale),
    ]
}

/// Builds one workload by name.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    workload_with_seed(name, scale, 0)
}

/// Builds one workload with an alternate input dataset — seed 0 is the
/// reference dataset used everywhere else; other seeds generate inputs of
/// the same shape but different content, for Fisher–Freudenberger style
/// cross-dataset studies (the paper's "further work").
pub fn workload_with_seed(name: &str, scale: Scale, seed: u64) -> Option<Workload> {
    let w = match name {
        "abalone" => abalone::build_seeded(scale, seed),
        "c-compiler" => c_compiler::build_seeded(scale, seed),
        "compress" => compress::build_seeded(scale, seed),
        "ghostview" => ghostview::build_seeded(scale, seed),
        "kmp" => kmp::build_seeded(scale, seed),
        "predict" => predict_tool::build_seeded(scale, seed),
        "prolog" => prolog::build_seeded(scale, seed),
        "scheduler" => scheduler::build_seeded(scale, seed),
        "doduc" => doduc::build_seeded(scale, seed),
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_verifies_and_runs() {
        for w in all_workloads(Scale::Small) {
            let verified = w.module.verify().map_err(|e| format!("{}: {e}", w.name));
            verified.expect("workload module verifies");
            let outcome = w
                .run()
                .map_err(|e| format!("{} failed to run: {e}", w.name));
            let outcome = outcome.expect("workload runs");
            assert!(
                outcome.trace.len() > 1_000,
                "{} produced only {} branches",
                w.name,
                outcome.trace.len()
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in all_workloads(Scale::Small) {
            let a = w.run().unwrap();
            let b = w.run().unwrap();
            assert_eq!(a.result, b.result, "{}", w.name);
            assert_eq!(a.trace.len(), b.trace.len(), "{}", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("compress", Scale::Small).is_some());
        assert!(workload_by_name("nope", Scale::Small).is_none());
    }

    #[test]
    fn full_scale_is_larger() {
        let small = workload_by_name("compress", Scale::Small).unwrap();
        let full = workload_by_name("compress", Scale::Full).unwrap();
        assert!(full.input.len() > small.input.len());
    }
}
