//! Shared helpers for workload construction: a deterministic PRNG for
//! input generation (inputs must be reproducible without pulling `rand`
//! into the library), and builder conveniences.

/// A tiny xorshift64* generator for deterministic input synthesis.
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeds the generator (zero seeds are fixed up).
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: seed | 0x9E37_79B9,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `i64` in `lo..hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = XorShift::new(1);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
