//! `abalone` — a board game played by alpha-beta search, like the paper's
//! first benchmark. The game is a take-away pile game (each move removes
//! one to three stones from one pile; taking the last stone wins), played
//! by a depth-limited negamax searcher with alpha-beta pruning. The
//! pruning branch is the classic correlated branch of game-tree search:
//! whether it fires depends heavily on the branches taken at shallower
//! plies.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

const MAX_TAKE: i64 = 3;

/// Builds the abalone workload.
pub fn build(scale: Scale) -> Workload {
    let (games, piles, depth) = match scale {
        Scale::Small => (3i64, 4i64, 4i64),
        Scale::Full => (6, 5, 4),
    };
    build_seeded_inner(scale, 0, games, piles, depth)
}

/// Builds the abalone workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let (games, piles, depth) = match scale {
        Scale::Small => (3i64, 4i64, 4i64),
        Scale::Full => (6, 5, 4),
    };
    build_seeded_inner(scale, seed, games, piles, depth)
}

fn build_seeded_inner(_scale: Scale, seed: u64, games: i64, piles: i64, depth: i64) -> Workload {
    let mut module = Module::new();
    module.push_function(build_eval());
    module.push_function(build_negamax());
    module.push_function(build_main(piles, depth));
    module.verify().expect("abalone module must verify");
    Workload {
        name: "abalone",
        description: "pile game played by negamax with alpha-beta pruning",
        module,
        args: vec![],
        input: generate_games(seed, games, piles),
    }
}

/// `eval(piles, n) -> score` — a nim-sum flavored heuristic with a
/// material term, from the side to move.
fn build_eval() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("eval", 2);
    let piles = b.param(0);
    let n = b.param(1);
    let i = b.reg();
    let x = b.reg();
    let sum = b.reg();
    let addr = b.reg();
    let v = b.reg();
    let score = b.reg();

    let loop_head = b.new_block();
    let body = b.new_block();
    let xor_zero = b.new_block();
    let xor_nonzero = b.new_block();
    let fin = b.new_block();

    b.const_int(i, 0);
    b.const_int(x, 0);
    b.const_int(sum, 0);
    b.jmp(loop_head);

    b.switch_to(loop_head);
    let more = b.lt(i.into(), n.into());
    b.br(more, body, xor_zero);

    b.switch_to(body);
    b.add(addr, piles.into(), i.into());
    b.load(v, addr.into());
    b.bin(brepl_ir::BinOp::Xor, x, x.into(), v.into());
    b.add(sum, sum.into(), v.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(loop_head);

    // Nim theory: nonzero xor is a winning position for the mover.
    b.switch_to(xor_zero);
    let winning = b.ne(x.into(), Operand::imm(0));
    b.br(winning, xor_nonzero, fin);

    b.switch_to(xor_nonzero);
    b.const_int(score, 40);
    b.rem(v, sum.into(), Operand::imm(7));
    b.add(score, score.into(), v.into());
    b.ret(Some(score.into()));

    b.switch_to(fin);
    b.const_int(score, -40);
    b.rem(v, sum.into(), Operand::imm(7));
    b.sub(score, score.into(), v.into());
    b.ret(Some(score.into()));

    b.finish()
}

/// `negamax(piles, n, depth, alpha, beta) -> score`.
fn build_negamax() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("negamax", 5);
    let piles = b.param(0);
    let n = b.param(1);
    let depth = b.param(2);
    let alpha_in = b.param(3);
    let beta = b.param(4);

    let alpha = b.reg();
    let best = b.reg();
    let i = b.reg();
    let t = b.reg();
    let addr = b.reg();
    let stones = b.reg();
    let total = b.reg();
    let score = b.reg();
    let tmp = b.reg();

    let count_loop = b.new_block();
    let count_body = b.new_block();
    let terminal_check = b.new_block();
    let lost = b.new_block();
    let leaf_check = b.new_block();
    let leaf = b.new_block();
    let search = b.new_block();
    let pile_loop = b.new_block();
    let pile_body = b.new_block();
    let take_loop = b.new_block();
    let take_body = b.new_block();
    let recurse = b.new_block();
    let better = b.new_block();
    let no_better = b.new_block();
    let raise = b.new_block();
    let no_raise = b.new_block();
    let prune = b.new_block();
    let take_next = b.new_block();
    let pile_next = b.new_block();
    let fin = b.new_block();

    b.copy(alpha, alpha_in.into());
    // total stones: terminal when zero (previous player took the last
    // stone, so the side to move has LOST).
    b.const_int(i, 0);
    b.const_int(total, 0);
    b.jmp(count_loop);

    b.switch_to(count_loop);
    let more = b.lt(i.into(), n.into());
    b.br(more, count_body, terminal_check);

    b.switch_to(count_body);
    b.add(addr, piles.into(), i.into());
    b.load(stones, addr.into());
    b.add(total, total.into(), stones.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(count_loop);

    b.switch_to(terminal_check);
    let empty = b.eq(total.into(), Operand::imm(0));
    b.br(empty, lost, leaf_check);

    b.switch_to(lost);
    b.ret(Some(Operand::imm(-1000)));

    b.switch_to(leaf_check);
    let at_leaf = b.le(depth.into(), Operand::imm(0));
    b.br(at_leaf, leaf, search);

    b.switch_to(leaf);
    b.call(Some(score), "eval", vec![piles.into(), n.into()]);
    b.ret(Some(score.into()));

    b.switch_to(search);
    b.const_int(best, -100000);
    b.const_int(i, 0);
    b.jmp(pile_loop);

    b.switch_to(pile_loop);
    let more_piles = b.lt(i.into(), n.into());
    b.br(more_piles, pile_body, fin);

    b.switch_to(pile_body);
    b.add(addr, piles.into(), i.into());
    b.load(stones, addr.into());
    b.const_int(t, 1);
    b.jmp(take_loop);

    b.switch_to(take_loop);
    // t <= min(MAX_TAKE, stones)
    let within_cap = b.le(t.into(), Operand::imm(MAX_TAKE));
    let within_pile = b.le(t.into(), stones.into());
    let ok = b.reg();
    b.bin(
        brepl_ir::BinOp::And,
        ok,
        within_cap.into(),
        within_pile.into(),
    );
    b.br(ok, take_body, pile_next);

    b.switch_to(take_body);
    // Apply the move.
    b.sub(tmp, stones.into(), t.into());
    b.store(addr.into(), tmp.into());
    b.jmp(recurse);

    b.switch_to(recurse);
    let d1 = b.reg();
    b.sub(d1, depth.into(), Operand::imm(1));
    let na = b.reg();
    b.sub(na, Operand::imm(0), beta.into());
    let nb = b.reg();
    b.sub(nb, Operand::imm(0), alpha.into());
    let child = b.reg();
    b.call(
        Some(child),
        "negamax",
        vec![piles.into(), n.into(), d1.into(), na.into(), nb.into()],
    );
    b.sub(score, Operand::imm(0), child.into());
    // Undo the move.
    b.store(addr.into(), stones.into());
    let improves = b.gt(score.into(), best.into());
    b.br(improves, better, no_better);

    b.switch_to(better);
    b.copy(best, score.into());
    b.jmp(no_better);

    b.switch_to(no_better);
    let raises = b.gt(best.into(), alpha.into());
    b.br(raises, raise, no_raise);

    b.switch_to(raise);
    b.copy(alpha, best.into());
    b.jmp(no_raise);

    b.switch_to(no_raise);
    // The alpha-beta cutoff — the star correlated branch.
    let cut = b.ge(alpha.into(), beta.into());
    b.br(cut, prune, take_next);

    b.switch_to(prune);
    b.ret(Some(best.into()));

    b.switch_to(take_next);
    b.add(t, t.into(), Operand::imm(1));
    b.jmp(take_loop);

    b.switch_to(pile_next);
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(pile_loop);

    b.switch_to(fin);
    b.ret(Some(best.into()));

    b.finish()
}

/// `main` — play each game from the input to completion: both sides pick
/// the move negamax scores best.
fn build_main(piles_n: i64, depth: i64) -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let piles = b.reg();
    let games = b.reg();
    let g = b.reg();
    let i = b.reg();
    let addr = b.reg();
    let stones = b.reg();
    let t = b.reg();
    let best_score = b.reg();
    let best_pile = b.reg();
    let best_take = b.reg();
    let score = b.reg();
    let tmp = b.reg();
    let checksum = b.reg();
    let moves = b.reg();
    let total = b.reg();

    let game_loop = b.new_block();
    let game_body = b.new_block();
    let read_loop = b.new_block();
    let read_body = b.new_block();
    let turn = b.new_block();
    let count_loop = b.new_block();
    let count_body = b.new_block();
    let game_over_check = b.new_block();
    let pick = b.new_block();
    let pile_loop = b.new_block();
    let pile_body = b.new_block();
    let take_loop = b.new_block();
    let take_body = b.new_block();
    let improves = b.new_block();
    let no_improve = b.new_block();
    let take_next = b.new_block();
    let pile_next = b.new_block();
    let apply = b.new_block();
    let game_done = b.new_block();
    let fin = b.new_block();

    let gcount = b.input();
    b.copy(games, gcount.into());
    b.alloc(piles, Operand::imm(piles_n));
    b.const_int(g, 0);
    b.const_int(checksum, 13);
    b.const_int(moves, 0);
    b.jmp(game_loop);

    b.switch_to(game_loop);
    let more_games = b.lt(g.into(), games.into());
    b.br(more_games, game_body, fin);

    b.switch_to(game_body);
    b.const_int(i, 0);
    b.jmp(read_loop);

    b.switch_to(read_loop);
    let more_read = b.lt(i.into(), Operand::imm(piles_n));
    b.br(more_read, read_body, turn);

    b.switch_to(read_body);
    let v = b.input();
    b.add(addr, piles.into(), i.into());
    b.store(addr.into(), v.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(read_loop);

    // One turn: count stones; if none, game over.
    b.switch_to(turn);
    b.const_int(i, 0);
    b.const_int(total, 0);
    b.jmp(count_loop);

    b.switch_to(count_loop);
    let more_count = b.lt(i.into(), Operand::imm(piles_n));
    b.br(more_count, count_body, game_over_check);

    b.switch_to(count_body);
    b.add(addr, piles.into(), i.into());
    b.load(tmp, addr.into());
    b.add(total, total.into(), tmp.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(count_loop);

    b.switch_to(game_over_check);
    let over = b.eq(total.into(), Operand::imm(0));
    b.br(over, game_done, pick);

    // Root move selection.
    b.switch_to(pick);
    b.const_int(best_score, -100000);
    b.const_int(best_pile, 0);
    b.const_int(best_take, 1);
    b.const_int(i, 0);
    b.jmp(pile_loop);

    b.switch_to(pile_loop);
    let more_piles = b.lt(i.into(), Operand::imm(piles_n));
    b.br(more_piles, pile_body, apply);

    b.switch_to(pile_body);
    b.add(addr, piles.into(), i.into());
    b.load(stones, addr.into());
    b.const_int(t, 1);
    b.jmp(take_loop);

    b.switch_to(take_loop);
    let cap_ok = b.le(t.into(), Operand::imm(MAX_TAKE));
    let pile_ok = b.le(t.into(), stones.into());
    let ok = b.reg();
    b.bin(brepl_ir::BinOp::And, ok, cap_ok.into(), pile_ok.into());
    b.br(ok, take_body, pile_next);

    b.switch_to(take_body);
    b.sub(tmp, stones.into(), t.into());
    b.store(addr.into(), tmp.into());
    let child = b.reg();
    b.call(
        Some(child),
        "negamax",
        vec![
            piles.into(),
            Operand::imm(piles_n),
            Operand::imm(depth),
            Operand::imm(-100000),
            Operand::imm(100000),
        ],
    );
    b.sub(score, Operand::imm(0), child.into());
    b.store(addr.into(), stones.into());
    let is_better = b.gt(score.into(), best_score.into());
    b.br(is_better, improves, no_improve);

    b.switch_to(improves);
    b.copy(best_score, score.into());
    b.copy(best_pile, i.into());
    b.copy(best_take, t.into());
    b.jmp(no_improve);

    b.switch_to(no_improve);
    b.jmp(take_next);

    b.switch_to(take_next);
    b.add(t, t.into(), Operand::imm(1));
    b.jmp(take_loop);

    b.switch_to(pile_next);
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(pile_loop);

    // Apply the chosen move and take the next turn.
    b.switch_to(apply);
    b.add(addr, piles.into(), best_pile.into());
    b.load(stones, addr.into());
    b.sub(stones, stones.into(), best_take.into());
    b.store(addr.into(), stones.into());
    b.mul(checksum, checksum.into(), Operand::imm(23));
    b.mul(tmp, best_pile.into(), Operand::imm(4));
    b.add(tmp, tmp.into(), best_take.into());
    b.add(checksum, checksum.into(), tmp.into());
    b.bin(
        brepl_ir::BinOp::And,
        checksum,
        checksum.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(moves, moves.into(), Operand::imm(1));
    b.jmp(turn);

    b.switch_to(game_done);
    b.add(g, g.into(), Operand::imm(1));
    b.jmp(game_loop);

    b.switch_to(fin);
    b.out(checksum.into());
    b.out(moves.into());
    b.ret(Some(checksum.into()));

    b.finish()
}

/// Random starting positions.
fn generate_games(seed: u64, games: i64, piles: i64) -> Vec<Value> {
    let mut rng = XorShift::new(0xABA1 ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut out = vec![Value::Int(games)];
    for _ in 0..games {
        for _ in 0..piles {
            out.push(Value::Int(rng.range(2, 8)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plays_all_games_to_completion() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        let moves = output[1].as_int().unwrap();
        assert!(moves >= 6, "games take several moves, got {moves}");
        assert!(outcome.trace.len() > 50_000);
    }

    #[test]
    fn pruning_branch_exists_and_is_mixed() {
        let w = build(Scale::Small);
        let outcome = w.run().unwrap();
        let stats = outcome.trace.stats();
        // The cutoff branch executes a lot and is neither always taken nor
        // never taken.
        let mixed = stats
            .iter_executed()
            .filter(|(_, c)| c.total() > 1000 && c.minority_count() * 10 > c.total())
            .count();
        assert!(mixed >= 1, "expected a mixed pruning-style branch");
    }
}
