//! `predict` — the paper profiles its own profiling tool. Our analogue: a
//! branch-trace analyzer written in the IR that reads `(site, direction)`
//! records, keeps per-site statistics and simulates a 2-bit counter
//! predictor — the self-hosting flavor of the original.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

const SITES: i64 = 64;

/// Builds the predict workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the predict workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let mut module = Module::new();
    module.push_function(build_main());
    module.verify().expect("predict module must verify");
    Workload {
        name: "predict",
        description: "branch-trace analyzer simulating a 2-bit counter predictor",
        module,
        args: vec![],
        input: generate_trace(scale, seed),
    }
}

fn build_main() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let taken_tbl = b.reg();
    let not_tbl = b.reg();
    let ctr_tbl = b.reg();
    let site = b.reg();
    let dir = b.reg();
    let addr = b.reg();
    let ctr = b.reg();
    let misses = b.reg();
    let events = b.reg();
    let tmp = b.reg();

    let read = b.new_block();
    let have = b.new_block();
    let predicted_taken = b.new_block();
    let predicted_not = b.new_block();
    let miss = b.new_block();
    let after_predict = b.new_block();
    let ctr_up = b.new_block();
    let ctr_down = b.new_block();
    let ctr_up_sat = b.new_block();
    let ctr_down_sat = b.new_block();
    let next = b.new_block();
    let summarize = b.new_block();
    let sum_loop = b.new_block();
    let sum_body = b.new_block();
    let done = b.new_block();

    b.alloc(taken_tbl, Operand::imm(SITES));
    b.alloc(not_tbl, Operand::imm(SITES));
    b.alloc(ctr_tbl, Operand::imm(SITES));
    b.const_int(misses, 0);
    b.const_int(events, 0);
    b.jmp(read);

    // read: site, then direction.
    b.switch_to(read);
    let s = b.input();
    b.copy(site, s.into());
    let eof = b.lt(site.into(), Operand::imm(0));
    b.br(eof, summarize, have);

    b.switch_to(have);
    let d = b.input();
    b.copy(dir, d.into());
    b.add(events, events.into(), Operand::imm(1));
    // Update statistics.
    let is_taken = b.ne(dir.into(), Operand::imm(0));
    b.add(addr, taken_tbl.into(), site.into());
    let naddr = b.reg();
    b.add(naddr, not_tbl.into(), site.into());
    // counter fetch
    let caddr = b.reg();
    b.add(caddr, ctr_tbl.into(), site.into());
    b.load(ctr, caddr.into());
    // predicted taken when ctr >= 2
    let pt = b.ge(ctr.into(), Operand::imm(2));
    b.br(pt, predicted_taken, predicted_not);

    b.switch_to(predicted_taken);
    // miss when not taken
    let miss_t = b.eq(dir.into(), Operand::imm(0));
    b.br(miss_t, miss, after_predict);

    b.switch_to(predicted_not);
    let miss_n = b.ne(dir.into(), Operand::imm(0));
    b.br(miss_n, miss, after_predict);

    b.switch_to(miss);
    b.add(misses, misses.into(), Operand::imm(1));
    b.jmp(after_predict);

    // after_predict: bump stats and the counter.
    b.switch_to(after_predict);
    b.br(is_taken, ctr_up, ctr_down);

    b.switch_to(ctr_up);
    b.load(tmp, addr.into());
    b.add(tmp, tmp.into(), Operand::imm(1));
    b.store(addr.into(), tmp.into());
    let sat_hi = b.ge(ctr.into(), Operand::imm(3));
    b.br(sat_hi, next, ctr_up_sat);

    b.switch_to(ctr_up_sat);
    b.add(ctr, ctr.into(), Operand::imm(1));
    b.store(caddr.into(), ctr.into());
    b.jmp(next);

    b.switch_to(ctr_down);
    b.load(tmp, naddr.into());
    b.add(tmp, tmp.into(), Operand::imm(1));
    b.store(naddr.into(), tmp.into());
    let sat_lo = b.le(ctr.into(), Operand::imm(0));
    b.br(sat_lo, next, ctr_down_sat);

    b.switch_to(ctr_down_sat);
    b.sub(ctr, ctr.into(), Operand::imm(1));
    b.store(caddr.into(), ctr.into());
    b.jmp(next);

    b.switch_to(next);
    b.jmp(read);

    // summarize: checksum the per-site tables.
    b.switch_to(summarize);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 0);
    b.jmp(sum_loop);

    b.switch_to(sum_loop);
    let more = b.lt(i.into(), Operand::imm(SITES));
    b.br(more, sum_body, done);

    b.switch_to(sum_body);
    b.add(tmp, taken_tbl.into(), i.into());
    let tv = b.reg();
    b.load(tv, tmp.into());
    b.mul(acc, acc.into(), Operand::imm(131));
    b.add(acc, acc.into(), tv.into());
    b.add(tmp, not_tbl.into(), i.into());
    b.load(tv, tmp.into());
    b.add(acc, acc.into(), tv.into());
    b.bin(
        brepl_ir::BinOp::And,
        acc,
        acc.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(sum_loop);

    b.switch_to(done);
    b.out(acc.into());
    b.out(misses.into());
    b.out(events.into());
    b.ret(Some(misses.into()));

    b.finish()
}

/// A synthetic trace: 64 sites with mixed behaviors — strongly biased,
/// alternating, periodic and a little noise — visited in *bursts*, the way
/// real program phases revisit the same loops. Burstiness is what makes
/// the analyzer's own branches history-predictable, mirroring how the
/// paper's `predict` tool predicted itself well.
fn generate_trace(scale: Scale, seed: u64) -> Vec<Value> {
    let events = match scale {
        Scale::Small => 12_000,
        Scale::Full => 400_000,
    };
    let mut rng = XorShift::new(0xBEEF ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut phase = [0u64; SITES as usize];
    let mut out = Vec::with_capacity(events * 2 + 2);
    let mut site = 0i64;
    let mut burst = 0u64;
    for _ in 0..events {
        if burst == 0 {
            site = rng.below(SITES as u64) as i64;
            burst = 4 + rng.below(40);
        }
        burst -= 1;
        let p = &mut phase[site as usize];
        *p += 1;
        let dir = match site % 8 {
            0 | 4 => *p % 13 != 12, // long loop, regular exit
            1 | 5 => *p % 2 == 0,   // alternating
            2 | 6 => *p % 5 != 4,   // periodic loop-like
            3 => true,              // monomorphic
            _ => rng.chance(9, 10), // biased with noise
        };
        out.push(Value::Int(site));
        out.push(Value::Int(i64::from(dir)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzer_counts_match_input() {
        let w = build(Scale::Small);
        let (_, output) = w.run_with_output().unwrap();
        let misses = output[1].as_int().unwrap();
        let events = output[2].as_int().unwrap();
        assert_eq!(events as usize, w.input.len() / 2);
        // The 2-bit counter should be decent but imperfect on this mix.
        let rate = misses as f64 / events as f64;
        assert!(rate > 0.05 && rate < 0.6, "rate {rate}");
    }
}
