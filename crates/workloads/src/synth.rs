//! Deterministic random-program synthesis for fuzzing and property tests.
//!
//! [`random_loop_module`] builds terminating, branch-rich modules from a
//! seed: a counted loop whose body stacks conditional diamonds with
//! periodic, threshold, pseudo-random and bit-test conditions — the branch
//! shapes the paper's technique targets. Every module `out`s its
//! accumulator each iteration, so semantic equivalence between the
//! original and a replicated form is observable from the output tape.
//!
//! The same `(seed, diamonds, trip)` triple always produces the same
//! module, which is what makes fuzz failures replayable and shrinkable.

use brepl_ir::{BinOp, BlockId, FunctionBuilder, Module, Operand, Reg, Value};

use crate::Workload;

/// Simple xorshift for deterministic generation from a caller-chosen seed.
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeds the generator; the OR keeps the state non-zero.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed | 0x1234_5678,
        }
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value below `bound` (`bound == 0` yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Emits a random arithmetic update of `acc` using `i`.
fn random_update(g: &mut Gen, b: &mut FunctionBuilder, acc: Reg, i: Reg) {
    match g.below(4) {
        0 => b.add(acc, acc.into(), Operand::imm(g.below(9) as i64 + 1)),
        1 => b.add(acc, acc.into(), i.into()),
        2 => {
            let t = b.reg();
            b.mul(t, i.into(), Operand::imm(g.below(5) as i64 + 1));
            b.add(acc, acc.into(), t.into());
        }
        _ => {
            b.bin(
                BinOp::Xor,
                acc,
                acc.into(),
                Operand::imm(g.below(64) as i64),
            );
        }
    }
}

/// Emits a random branch condition over `i` (periodic, threshold or
/// pseudo-random), returning the condition register.
fn random_condition(g: &mut Gen, b: &mut FunctionBuilder, i: Reg, trip: i64) -> Reg {
    match g.below(4) {
        0 => {
            // Periodic: i % k == c.
            let k = g.below(5) as i64 + 2;
            let c = g.below(k as u64) as i64;
            let r = b.reg();
            b.rem(r, i.into(), Operand::imm(k));
            b.eq(r.into(), Operand::imm(c))
        }
        1 => {
            // Threshold: i < trip * x / 4.
            let x = g.below(4) as i64 + 1;
            b.lt(i.into(), Operand::imm(trip * x / 4))
        }
        2 => {
            // Pseudo-random via the deterministic rand intrinsic.
            let r = b.rand(Operand::imm(g.below(3) as i64 + 2));
            b.eq(r.into(), Operand::imm(0))
        }
        _ => {
            // Bit test: (i >> s) & 1.
            let s = g.below(4) as i64;
            let r = b.reg();
            b.bin(BinOp::Shr, r, i.into(), Operand::imm(s));
            let r2 = b.reg();
            b.bin(BinOp::And, r2, r.into(), Operand::imm(1));
            b.ne(r2.into(), Operand::imm(0))
        }
    }
}

/// Builds a terminating module: a counted loop of `trip` iterations whose
/// body contains `diamonds` conditional diamonds with varied conditions,
/// ending with an `out(acc)` so semantic equivalence is observable.
pub fn random_loop_module(seed: u64, diamonds: usize, trip: i64) -> Module {
    let mut g = Gen::new(seed);
    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let acc = b.reg();
    b.const_int(i, 0);
    b.const_int(acc, 1);

    let head = b.new_block();
    let exit = b.new_block();
    b.jmp(head);

    // head holds the loop test.
    b.switch_to(head);
    let body_entry = b.new_block();
    let c = b.lt(i.into(), Operand::imm(trip));
    b.br(c, body_entry, exit);

    let mut cur: BlockId = body_entry;
    for _ in 0..diamonds {
        b.switch_to(cur);
        let cond = random_condition(&mut g, &mut b, i, trip);
        let then_b = b.new_block();
        let else_b = b.new_block();
        let join = b.new_block();
        b.br(cond, then_b, else_b);
        b.switch_to(then_b);
        random_update(&mut g, &mut b, acc, i);
        b.jmp(join);
        b.switch_to(else_b);
        random_update(&mut g, &mut b, acc, i);
        random_update(&mut g, &mut b, acc, i);
        b.jmp(join);
        cur = join;
    }
    // Latch.
    b.switch_to(cur);
    b.out(acc.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(head);

    b.switch_to(exit);
    b.out(acc.into());
    b.ret(Some(acc.into()));

    let mut m = Module::new();
    m.push_function(b.finish());
    m.verify().expect("generated module verifies");
    m
}

/// Builds the drift-gate module in *drain* form: the loop reads one
/// input symbol per iteration until the tape is exhausted (`in()`
/// returns the `-1` sentinel), then branches on the symbol (site 1,
/// taken ⇔ symbol `== 1`). The branch's behaviour is *entirely*
/// input-driven, so splicing input tapes with different symbol patterns
/// at a segment boundary shifts exactly one site's distribution — the
/// minimal re-specialization scenario — and because the trip count
/// follows the tape, the *same* module serves a one-segment planning
/// run and a many-segment adaptive run. An alternating tape makes
/// site 1 a perfect 2-state flip-flop (a machine-controlled site after
/// planning); a constant tape makes it monostatic (where a demotion
/// patch wins).
pub fn input_gate_module() -> Module {
    let mut b = FunctionBuilder::new("main", 0);
    let acc = b.reg();
    let v = b.reg();
    let head = b.new_block();
    let body = b.new_block();
    let yes = b.new_block();
    let no = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();

    b.const_int(acc, 7);
    b.jmp(head);

    // Site 0: the drain loop — read a symbol, exit on the sentinel.
    // Heavily not-taken and stable across segments: never patched.
    b.switch_to(head);
    let nxt = b.input();
    b.copy(v, nxt.into());
    let done = b.eq(v.into(), Operand::imm(-1));
    b.br(done, exit, body);

    // Site 1: the gate — taken iff this iteration's input symbol is 1.
    b.switch_to(body);
    let one = b.eq(v.into(), Operand::imm(1));
    b.br(one, yes, no);

    b.switch_to(yes);
    b.mul(acc, acc.into(), Operand::imm(3));
    b.add(acc, acc.into(), Operand::imm(1));
    b.jmp(latch);

    b.switch_to(no);
    b.mul(acc, acc.into(), Operand::imm(5));
    b.add(acc, acc.into(), Operand::imm(2));
    b.jmp(latch);

    b.switch_to(latch);
    b.bin(BinOp::And, acc, acc.into(), Operand::imm((1 << 40) - 1));
    b.out(acc.into());
    b.jmp(head);

    b.switch_to(exit);
    b.ret(Some(acc.into()));

    let mut m = Module::new();
    m.push_function(b.finish());
    m.renumber_branches();
    m.verify().expect("input-gate module verifies");
    m
}

/// An input tape for [`input_gate_module`]: `n` symbols, either
/// alternating `0,1,0,1,…` (`pattern = GatePattern::Alternating`) or all
/// one constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatePattern {
    /// `0,1,0,1,…` — a perfect period-2 site, won by a 2-state machine.
    Alternating,
    /// Every symbol equal to the given value — a monostatic site.
    Constant(i64),
}

/// Generates a tape of `n` symbols in the given pattern.
pub fn gate_tape(n: usize, pattern: GatePattern) -> Vec<Value> {
    (0..n)
        .map(|k| match pattern {
            GatePattern::Alternating => Value::Int((k % 2) as i64),
            GatePattern::Constant(v) => Value::Int(v),
        })
        .collect()
}

/// Wraps [`input_gate_module`] as a [`Workload`] whose input is the
/// concatenation of the given per-segment tapes (the drain loop
/// consumes every symbol regardless of how many segments there are).
pub fn input_gate_workload(segments: &[Vec<Value>]) -> Workload {
    Workload {
        name: "drift-gate",
        description: "drain loop around one input-driven branch (drift scenario)",
        module: input_gate_module(),
        args: vec![],
        input: segments.concat(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_loop_module(17, 3, 50);
        let b = random_loop_module(17, 3, 50);
        assert_eq!(a, b);
        let c = random_loop_module(18, 3, 50);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_modules_verify_across_shapes() {
        for seed in 0..8 {
            for diamonds in [0, 1, 4] {
                let m = random_loop_module(seed, diamonds, 20);
                assert!(m.branch_count() > diamonds);
            }
        }
    }

    #[test]
    fn input_gate_tracks_its_tape() {
        let alt = gate_tape(100, GatePattern::Alternating);
        let w = input_gate_workload(std::slice::from_ref(&alt));
        let outcome = w.run().unwrap();
        let stats = outcome.trace.stats();
        // Site 0: drain loop, 100 symbol iterations (not taken) + 1
        // sentinel exit (taken). Site 1: exactly the tape — 50 taken
        // (symbol 1) / 50 not taken.
        let s0 = stats.site(brepl_ir::BranchId(0));
        assert_eq!((s0.taken, s0.not_taken), (1, 100));
        let s1 = stats.site(brepl_ir::BranchId(1));
        assert_eq!((s1.taken, s1.not_taken), (50, 50));

        let con = gate_tape(60, GatePattern::Constant(1));
        let w = input_gate_workload(&[alt, con]);
        assert_eq!(w.input.len(), 160);
        let stats = w.run().unwrap().trace.stats();
        let s1 = stats.site(brepl_ir::BranchId(1));
        assert_eq!((s1.taken, s1.not_taken), (110, 50));
    }
}
