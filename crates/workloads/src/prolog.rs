//! `prolog` — SLD resolution with backtracking, standing in for the
//! minivip interpreter. The database holds binary `parent/2` facts; the
//! solver answers `ancestor/2` queries by depth-first resolution through
//! the recursive clause
//!
//! ```text
//! ancestor(X, Y) :- parent(X, Y).
//! ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//! ```
//!
//! using an explicit choice-point stack. Clause selection is a linear scan
//! over the fact table (first-argument match), exactly the branch profile
//! of a non-indexing Prolog: a long biased scan loop punctuated by
//! correlated match branches, plus success/failure branches driven by the
//! query mix.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

/// Builds the prolog workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the prolog workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let mut module = Module::new();
    module.push_function(build_solve());
    module.push_function(build_main());
    module.verify().expect("prolog module must verify");
    Workload {
        name: "prolog",
        description: "SLD resolution over parent/2 facts with backtracking",
        module,
        args: vec![],
        input: generate_database(scale, seed),
    }
}

/// `solve(facts, nfacts, visited, stack, natoms, x, y) -> result`
///
/// Depth-first resolution: returns 1 when `ancestor(x, y)` holds, plus
/// `2 * reached` in the high bits so callers can also use the derivation
/// count (the "all solutions" flavor of the query).
fn build_solve() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("solve", 7);
    let facts = b.param(0);
    let nfacts = b.param(1);
    let visited = b.param(2);
    let stack = b.param(3);
    let natoms = b.param(4);
    let x = b.param(5);
    let y = b.param(6);

    let sp = b.reg();
    let node = b.reg();
    let i = b.reg();
    let fx = b.reg();
    let fy = b.reg();
    let addr = b.reg();
    let found = b.reg();
    let reached = b.reg();
    let tmp = b.reg();

    let clear_loop = b.new_block();
    let clear_body = b.new_block();
    let start = b.new_block();
    let pop = b.new_block();
    let have_node = b.new_block();
    let scan = b.new_block();
    let scan_body = b.new_block();
    let match_head = b.new_block();
    let no_match = b.new_block();
    let goal_check = b.new_block();
    let goal_hit = b.new_block();
    let push_sub = b.new_block();
    let already = b.new_block();
    let scan_next = b.new_block();
    let fin = b.new_block();

    // Reset the visited table (one word per atom).
    b.const_int(i, 0);
    b.jmp(clear_loop);

    b.switch_to(clear_loop);
    let more_clear = b.lt(i.into(), natoms.into());
    b.br(more_clear, clear_body, start);

    b.switch_to(clear_body);
    b.add(addr, visited.into(), i.into());
    b.store(addr.into(), Operand::imm(0));
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(clear_loop);

    // Push the initial goal.
    b.switch_to(start);
    b.const_int(found, 0);
    b.const_int(reached, 0);
    b.store(stack.into(), x.into());
    b.const_int(sp, 1);
    b.add(addr, visited.into(), x.into());
    b.store(addr.into(), Operand::imm(1));
    b.jmp(pop);

    // pop: take the next choice point; empty stack = exhausted search.
    b.switch_to(pop);
    let empty = b.le(sp.into(), Operand::imm(0));
    b.br(empty, fin, have_node);

    b.switch_to(have_node);
    b.sub(sp, sp.into(), Operand::imm(1));
    b.add(addr, stack.into(), sp.into());
    b.load(node, addr.into());
    b.const_int(i, 0);
    b.jmp(scan);

    // scan: try every clause whose head's first argument matches `node`.
    b.switch_to(scan);
    let more = b.lt(i.into(), nfacts.into());
    b.br(more, scan_body, pop);

    b.switch_to(scan_body);
    b.mul(addr, i.into(), Operand::imm(2));
    b.add(addr, addr.into(), facts.into());
    b.load(fx, addr.into());
    let head_match = b.eq(fx.into(), node.into());
    b.br(head_match, match_head, no_match);

    b.switch_to(no_match);
    b.jmp(scan_next);

    b.switch_to(match_head);
    b.add(tmp, addr.into(), Operand::imm(1));
    b.load(fy, tmp.into());
    b.add(reached, reached.into(), Operand::imm(1));
    b.jmp(goal_check);

    b.switch_to(goal_check);
    let is_goal = b.eq(fy.into(), y.into());
    b.br(is_goal, goal_hit, push_sub);

    b.switch_to(goal_hit);
    b.const_int(found, 1);
    b.jmp(push_sub);

    // push the subgoal ancestor(fy, y) unless this binding was already
    // explored (the visited table is the loop check a real Prolog would
    // need `tabling` for).
    b.switch_to(push_sub);
    b.add(addr, visited.into(), fy.into());
    b.load(tmp, addr.into());
    let seen = b.ne(tmp.into(), Operand::imm(0));
    b.br(seen, already, scan_next);

    b.switch_to(already);
    b.jmp(scan_next);

    b.switch_to(scan_next);
    // (push happens here when not seen; reuse flags computed above)
    // NOTE: the not-seen push is emitted below via a dedicated block
    // sequence — see `push_block` wiring.
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(scan);

    b.switch_to(fin);
    b.mul(tmp, reached.into(), Operand::imm(2));
    b.add(tmp, tmp.into(), found.into());
    b.ret(Some(tmp.into()));

    // Rewire: the `push_sub` not-seen edge must actually push. Builder
    // blocks are cheap; patch by re-deriving the function below instead of
    // mutating, so the not-seen path goes through a push block.
    let mut f = b.finish();
    patch_push(&mut f);
    f
}

/// The builder above routes `push_sub`'s not-seen edge straight to
/// `scan_next`; insert the real push block (mark visited, stack the
/// subgoal) on that edge. Doing it as a patch keeps the builder code
/// linear and mirrors how a compiler would edge-split.
fn patch_push(f: &mut brepl_ir::Function) {
    use brepl_ir::{Block, Inst, Reg, Term};
    // Locate the push_sub block: the block whose terminator branches with
    // a `seen` condition and whose else-target is scan_next. We identify
    // it structurally: it is the unique block that loads from the visited
    // table into `tmp` right after an `add addr, visited, fy`.
    // For robustness the builder recorded fixed register numbers:
    // params: facts=0 nfacts=1 visited=2 stack=3 natoms=4 x=5 y=6;
    // regs: sp=7 node=8 i=9 fx=10 fy=11 addr=12 found=13 reached=14 tmp=15.
    let visited = Reg(2);
    let stack = Reg(3);
    let sp = Reg(7);
    let fy = Reg(11);
    let addr = Reg(12);

    let mut push_sub_block = None;
    for (bid, block) in f.iter_blocks() {
        let loads_visited = block.insts.iter().any(|inst| {
            matches!(inst, Inst::Bin { op: brepl_ir::BinOp::Add, dst, lhs, rhs }
                if *dst == addr
                    && *lhs == brepl_ir::Operand::Reg(visited)
                    && *rhs == brepl_ir::Operand::Reg(fy))
        });
        if loads_visited && matches!(block.term, Term::Br { .. }) {
            push_sub_block = Some(bid);
        }
    }
    let push_sub = push_sub_block.expect("push_sub block exists");
    let Term::Br { else_, .. } = &f.block(push_sub).term else {
        unreachable!("push_sub ends in a branch")
    };
    let scan_next = *else_;

    // Build the push block: visited[fy]=1; stack[sp]=fy; sp+=1; jmp next.
    let insts = vec![
        Inst::Bin {
            op: brepl_ir::BinOp::Add,
            dst: addr,
            lhs: brepl_ir::Operand::Reg(visited),
            rhs: brepl_ir::Operand::Reg(fy),
        },
        Inst::Store {
            addr: brepl_ir::Operand::Reg(addr),
            value: brepl_ir::Operand::imm(1),
        },
        Inst::Bin {
            op: brepl_ir::BinOp::Add,
            dst: addr,
            lhs: brepl_ir::Operand::Reg(stack),
            rhs: brepl_ir::Operand::Reg(sp),
        },
        Inst::Store {
            addr: brepl_ir::Operand::Reg(addr),
            value: brepl_ir::Operand::Reg(fy),
        },
        Inst::Bin {
            op: brepl_ir::BinOp::Add,
            dst: sp,
            lhs: brepl_ir::Operand::Reg(sp),
            rhs: brepl_ir::Operand::imm(1),
        },
    ];
    let push_id = brepl_ir::BlockId::from_index(f.blocks.len());
    f.blocks.push(Block {
        insts,
        term: Term::Jmp { target: scan_next },
    });
    let Term::Br { else_, .. } = &mut f.block_mut(push_sub).term else {
        unreachable!("push_sub ends in a branch")
    };
    *else_ = push_id;
}

/// `main`: read the database and the queries; answer each query.
fn build_main() -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let natoms = b.reg();
    let nfacts = b.reg();
    let facts = b.reg();
    let visited = b.reg();
    let stack = b.reg();
    let i = b.reg();
    let addr = b.reg();
    let qx = b.reg();
    let qy = b.reg();
    let res = b.reg();
    let checksum = b.reg();
    let queries = b.reg();
    let hits = b.reg();

    let fact_loop = b.new_block();
    let fact_body = b.new_block();
    let query_loop = b.new_block();
    let query_body = b.new_block();
    let hit = b.new_block();
    let after_hit = b.new_block();
    let fin = b.new_block();

    let na = b.input();
    b.copy(natoms, na.into());
    let nf = b.input();
    b.copy(nfacts, nf.into());
    let words = b.reg();
    b.mul(words, nfacts.into(), Operand::imm(2));
    b.alloc(facts, words.into());
    b.alloc(visited, natoms.into());
    // Stack can hold every atom once (visited-guarded).
    b.alloc(stack, natoms.into());
    b.const_int(i, 0);
    b.jmp(fact_loop);

    b.switch_to(fact_loop);
    let more = b.lt(i.into(), words.into());
    b.br(more, fact_body, query_loop);

    b.switch_to(fact_body);
    let v = b.input();
    b.add(addr, facts.into(), i.into());
    b.store(addr.into(), v.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(fact_loop);

    b.switch_to(query_loop);
    b.const_int(checksum, 3);
    b.const_int(queries, 0);
    b.const_int(hits, 0);
    b.jmp(query_body);

    b.switch_to(query_body);
    let x = b.input();
    b.copy(qx, x.into());
    let eof = b.lt(qx.into(), Operand::imm(0));
    let go = b.new_block();
    b.br(eof, fin, go);

    b.switch_to(go);
    let y = b.input();
    b.copy(qy, y.into());
    b.call(
        Some(res),
        "solve",
        vec![
            facts.into(),
            nfacts.into(),
            visited.into(),
            stack.into(),
            natoms.into(),
            qx.into(),
            qy.into(),
        ],
    );
    b.mul(checksum, checksum.into(), Operand::imm(41));
    b.add(checksum, checksum.into(), res.into());
    b.bin(
        brepl_ir::BinOp::And,
        checksum,
        checksum.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(queries, queries.into(), Operand::imm(1));
    let succeeded = b.reg();
    b.bin(brepl_ir::BinOp::And, succeeded, res.into(), Operand::imm(1));
    b.br(succeeded, hit, after_hit);

    b.switch_to(hit);
    b.add(hits, hits.into(), Operand::imm(1));
    b.jmp(after_hit);

    b.switch_to(after_hit);
    b.jmp(query_body);

    b.switch_to(fin);
    b.out(checksum.into());
    b.out(queries.into());
    b.out(hits.into());
    b.ret(Some(checksum.into()));
    b.finish()
}

/// A layered family "tree" (a DAG with some remarriage edges) plus a
/// query mix of positive and negative ancestor questions.
fn generate_database(scale: Scale, seed: u64) -> Vec<Value> {
    let (atoms, queries) = match scale {
        Scale::Small => (160i64, 250),
        Scale::Full => (200, 500),
    };
    let mut rng = XorShift::new(0x9106 ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut facts: Vec<(i64, i64)> = Vec::new();
    // Layered: atom a is a parent of atoms in the next layer.
    let layer = 20i64;
    for a in 0..atoms {
        let children = rng.range(0, 4);
        for _ in 0..children {
            let lo = a + 1;
            let hi = (a + layer).min(atoms);
            if lo < hi {
                facts.push((a, rng.range(lo, hi)));
            }
        }
    }
    let mut out = vec![Value::Int(atoms), Value::Int(facts.len() as i64)];
    for (x, y) in &facts {
        out.push(Value::Int(*x));
        out.push(Value::Int(*y));
    }
    for _ in 0..queries {
        let x = rng.range(0, atoms);
        // Mix near (likely positive) and far (likely negative) queries.
        let y = if rng.chance(1, 2) {
            rng.range(x.min(atoms - 1), atoms)
        } else {
            rng.range(0, atoms)
        };
        out.push(Value::Int(x));
        out.push(Value::Int(y));
    }
    out.push(Value::Int(-1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_queries() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        assert_eq!(output[1].as_int(), Some(250));
        let hits = output[2].as_int().unwrap();
        assert!(hits > 10, "some queries succeed, got {hits}");
        assert!(hits < 250, "some queries fail");
        assert!(outcome.trace.len() > 50_000);
    }

    #[test]
    fn hand_query_is_correct() {
        // atoms 0..4, facts 0->1, 1->2, 3->4. ancestor(0,2) yes,
        // ancestor(0,4) no, ancestor(3,4) yes, ancestor(2,0) no.
        let mut w = build(Scale::Small);
        let mut input = vec![
            Value::Int(5),
            Value::Int(3),
            Value::Int(0),
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Int(4),
        ];
        for q in [(0, 2), (0, 4), (3, 4), (2, 0)] {
            input.push(Value::Int(q.0));
            input.push(Value::Int(q.1));
        }
        input.push(Value::Int(-1));
        w.input = input;
        let (_, output) = w.run_with_output().unwrap();
        assert_eq!(output[2].as_int(), Some(2), "two positive queries");
    }
}
