//! `kmp` — Morris–Pratt string matching over a seeded random binary
//! text, with **closed-form** expected branch rates.
//!
//! The matcher scans for the pattern `ab` over the alphabet `{a, b}`
//! (encoded 0/1) with the Morris–Pratt automaton. For this pattern the
//! automaton state is exactly "the previous symbol was `a`", so under
//! an i.i.d. uniform text every data branch has an analytically exact
//! rate — the workload validates the simulator and the static estimator
//! against real math instead of self-referential differential tests
//! (Nicaud et al.'s KMP misprediction analysis is the model; this is
//! its smallest rigorous instance):
//!
//! | site | branch                      | expected taken rate |
//! |------|-----------------------------|---------------------|
//! | 0    | scan loop `i < n`           | exactly `n/(n+1)`   |
//! | 1    | `state == 1`                | `(n-1)/(2n)` → ½    |
//! | 2    | at state 1: `c == b`        | ½                   |
//! | 3    | at state 0: `c == a`        | ½                   |
//!
//! Expected matches: `(n-1)/4`. Expected per-site-majority (profile)
//! misprediction rate: `(n+1)/(3n+1)` → **1/3** — the i.i.d. floor no
//! replication can beat, which is precisely the hard-branch end of the
//! taxonomy the estimate drift gate (`BR019`) is built to chart.
//!
//! [`build_biased`] generalizes the text to `P('a') = p = num/den`.
//! With the automaton state still "the previous symbol was `a`", the
//! closed forms become: site 1 taken rate → `p`, site 2 → `1 − p`,
//! site 3 → `p`, expected matches → `(n−1)·p(1−p)`, and the
//! per-site-majority misprediction rate → `2·min(p, 1−p)·n/(3n+1)` ≈
//! `⅔·min(p, 1−p)`. Because every rate is a closed form of `p`, drift
//! scenarios that shift `p` mid-run know *exactly* what misprediction
//! looks like before the shift, after it unpatched, and after a
//! re-specialization patch — the drift suite asserts all three.
//!
//! Site 0 is a constant-trip counted loop, so the classify layer proves
//! its bias exactly and the static profile estimator must reproduce
//! `n/(n+1)` as an exact rational; sites 1–3 are input-dependent and
//! get heuristic estimates only. `tests/pipeline_workloads.rs` asserts
//! both halves against the closed forms.

use brepl_ir::{FunctionBuilder, Module, Operand, Value};

use crate::util::XorShift;
use crate::{Scale, Workload};

/// Text length per scale.
pub fn symbols(scale: Scale) -> i64 {
    match scale {
        Scale::Small => 20_000,
        Scale::Full => 400_000,
    }
}

/// Builds the kmp workload with an alternate input dataset.
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let n = symbols(scale);
    let mut module = Module::new();
    module.push_function(build_main(n));
    module.renumber_branches();
    module.verify().expect("kmp module must verify");
    Workload {
        name: "kmp",
        description: "Morris-Pratt search for \"ab\" over random binary text (closed-form rates)",
        module,
        args: vec![],
        input: generate_text(n as usize, seed),
    }
}

fn build_main(n: i64) -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let i = b.reg();
    let state = b.reg();
    let matches = b.reg();
    let checksum = b.reg();
    let c = b.reg();

    let head = b.new_block();
    let body = b.new_block();
    let at1 = b.new_block();
    let at1_match = b.new_block();
    let at1_stay = b.new_block();
    let at0 = b.new_block();
    let at0_adv = b.new_block();
    let at0_stay = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();

    b.const_int(i, 0);
    b.const_int(state, 0);
    b.const_int(matches, 0);
    b.const_int(checksum, 7);
    b.jmp(head);

    // Site 0: the scan loop — constant trip count, provable exactly.
    b.switch_to(head);
    let more = b.lt(i.into(), Operand::imm(n));
    b.br(more, body, exit);

    // Site 1: automaton state dispatch (state == 1 ⇔ previous symbol
    // was 'a').
    b.switch_to(body);
    let nxt = b.input();
    b.copy(c, nxt.into());
    let in1 = b.eq(state.into(), Operand::imm(1));
    b.br(in1, at1, at0);

    // Site 2: at state 1 the automaton expects pattern[1] = 'b' (1).
    b.switch_to(at1);
    let hit = b.eq(c.into(), Operand::imm(1));
    b.br(hit, at1_match, at1_stay);

    b.switch_to(at1_match);
    b.add(matches, matches.into(), Operand::imm(1));
    b.const_int(state, 0);
    b.jmp(latch);

    // Mismatch at state 1 means c = 'a' — the Morris–Pratt failure
    // link falls to state 0 and immediately re-advances on 'a'.
    b.switch_to(at1_stay);
    b.const_int(state, 1);
    b.jmp(latch);

    // Site 3: at state 0 the automaton expects pattern[0] = 'a' (0).
    b.switch_to(at0);
    let adv = b.eq(c.into(), Operand::imm(0));
    b.br(adv, at0_adv, at0_stay);

    b.switch_to(at0_adv);
    b.const_int(state, 1);
    b.jmp(latch);

    b.switch_to(at0_stay);
    b.const_int(state, 0);
    b.jmp(latch);

    b.switch_to(latch);
    b.mul(checksum, checksum.into(), Operand::imm(31));
    b.add(checksum, checksum.into(), c.into());
    b.bin(
        brepl_ir::BinOp::And,
        checksum,
        checksum.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(head);

    b.switch_to(exit);
    b.out(matches.into());
    b.out(checksum.into());
    b.ret(Some(matches.into()));

    b.finish()
}

/// Builds the kmp workload over biased i.i.d. text with
/// `P('a') = num/den`. The module is identical to [`build_seeded`]'s
/// (same fingerprint); only the input tape changes. `num/den = 1/2`
/// reproduces [`build_seeded`]'s tape bit for bit.
///
/// # Panics
///
/// Panics if `den == 0` or `num > den`.
pub fn build_biased(scale: Scale, seed: u64, num: u64, den: u64) -> Workload {
    let n = symbols(scale);
    let mut w = build_seeded(scale, seed);
    w.description = "Morris-Pratt search for \"ab\" over biased binary text (closed-form rates)";
    w.input = biased_text(n as usize, seed, num, den);
    w
}

/// The kmp automaton in *drain* form: the scan loop reads symbols until
/// the tape is exhausted (`in()` returns the `-1` sentinel) instead of
/// counting to a baked trip count, so one module serves tapes of any
/// length — a drift scenario plans on one segment and keeps the same
/// shipped program running across many. Sites 1–3 keep the closed-form
/// rates of the table above; site 0 becomes the sentinel test (one
/// taken exit against `n` not-taken continues) and is no longer
/// provable by the classifier — which is fine, because it is also the
/// one site whose distribution never drifts.
pub fn drift_module() -> Module {
    let mut b = FunctionBuilder::new("main", 0);
    let state = b.reg();
    let matches = b.reg();
    let checksum = b.reg();
    let c = b.reg();

    let head = b.new_block();
    let body = b.new_block();
    let at1 = b.new_block();
    let at1_match = b.new_block();
    let at1_stay = b.new_block();
    let at0 = b.new_block();
    let at0_adv = b.new_block();
    let at0_stay = b.new_block();
    let latch = b.new_block();
    let exit = b.new_block();

    b.const_int(state, 0);
    b.const_int(matches, 0);
    b.const_int(checksum, 7);
    b.jmp(head);

    // Site 0: the drain loop — read a symbol, exit on the sentinel.
    b.switch_to(head);
    let nxt = b.input();
    b.copy(c, nxt.into());
    let done = b.eq(c.into(), Operand::imm(-1));
    b.br(done, exit, body);

    // Site 1: automaton state dispatch (state == 1 ⇔ previous symbol
    // was 'a').
    b.switch_to(body);
    let in1 = b.eq(state.into(), Operand::imm(1));
    b.br(in1, at1, at0);

    // Site 2: at state 1 the automaton expects pattern[1] = 'b' (1).
    b.switch_to(at1);
    let hit = b.eq(c.into(), Operand::imm(1));
    b.br(hit, at1_match, at1_stay);

    b.switch_to(at1_match);
    b.add(matches, matches.into(), Operand::imm(1));
    b.const_int(state, 0);
    b.jmp(latch);

    // Mismatch at state 1 means c = 'a' — the Morris–Pratt failure
    // link falls to state 0 and immediately re-advances on 'a'.
    b.switch_to(at1_stay);
    b.const_int(state, 1);
    b.jmp(latch);

    // Site 3: at state 0 the automaton expects pattern[0] = 'a' (0).
    b.switch_to(at0);
    let adv = b.eq(c.into(), Operand::imm(0));
    b.br(adv, at0_adv, at0_stay);

    b.switch_to(at0_adv);
    b.const_int(state, 1);
    b.jmp(latch);

    b.switch_to(at0_stay);
    b.const_int(state, 0);
    b.jmp(latch);

    b.switch_to(latch);
    b.mul(checksum, checksum.into(), Operand::imm(31));
    b.add(checksum, checksum.into(), c.into());
    b.bin(
        brepl_ir::BinOp::And,
        checksum,
        checksum.into(),
        Operand::imm((1 << 40) - 1),
    );
    b.jmp(head);

    b.switch_to(exit);
    b.out(matches.into());
    b.out(checksum.into());
    b.ret(Some(matches.into()));

    let mut module = Module::new();
    module.push_function(b.finish());
    module.renumber_branches();
    module.verify().expect("kmp drift module must verify");
    module
}

/// Uniform i.i.d. binary text ('a' = 0, 'b' = 1).
fn generate_text(n: usize, seed: u64) -> Vec<Value> {
    biased_text(n, seed, 1, 2)
}

/// Biased i.i.d. binary text with `P('a') = num/den` ('a' = 0, 'b' = 1).
///
/// Exposed so drift scenarios can splice tapes with different biases at
/// a segment boundary while keeping the module (and hence the plan)
/// fixed. The generator stream depends only on `seed`, not the bias.
///
/// # Panics
///
/// Panics if `den == 0` or `num > den`.
pub fn biased_text(n: usize, seed: u64, num: u64, den: u64) -> Vec<Value> {
    assert!(den > 0 && num <= den, "bias must be a proper fraction");
    let mut rng = XorShift::new(0xAB5EED ^ seed.wrapping_mul(0x9E3779B97F4A7C15));
    (0..n)
        .map(|_| Value::Int(i64::from(rng.below(den) >= num)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::BranchId;

    #[test]
    fn matches_and_rates_track_the_closed_forms() {
        let w = build_seeded(Scale::Small, 0);
        let n = symbols(Scale::Small) as f64;
        let (outcome, output) = w.run_with_output().unwrap();
        let matches = output[0].as_int().unwrap() as f64;
        // E[matches] = (n-1)/4 for uniform binary text.
        assert!(
            (matches / n - 0.25).abs() < 0.02,
            "matches/n = {}",
            matches / n
        );

        let stats = outcome.trace.stats();
        // Site 0: the counted loop is deterministic — exact, not approximate.
        let s0 = stats.site(BranchId(0));
        assert_eq!(s0.taken, n as u64);
        assert_eq!(s0.not_taken, 1);
        // Sites 1–3: taken rate ½ within sampling tolerance.
        for k in 1..=3u32 {
            let s = stats.site(BranchId(k));
            assert!(s.total() > 1_000, "site {k} executed {}", s.total());
            let rate = s.taken as f64 / s.total() as f64;
            assert!((rate - 0.5).abs() < 0.02, "site {k} rate {rate}");
        }
        // Per-site-majority misprediction tends to 1/3 of all events.
        let pct = stats.profile_misprediction_percent();
        assert!(
            (pct / 100.0 - 1.0 / 3.0).abs() < 0.02,
            "profile misprediction {pct}%"
        );
    }

    #[test]
    fn biased_rates_track_the_closed_forms() {
        // With P('a') = p, the automaton state is "previous symbol was
        // 'a'", so: site 1 → p, site 2 → 1−p, site 3 → p, matches/n →
        // p(1−p), and the per-site-majority misprediction rate →
        // 2·min(p,1−p)·n/(3n+1).
        for &(num, den) in &[(1u64, 4u64), (3, 4), (1, 2)] {
            let p = num as f64 / den as f64;
            let w = build_biased(Scale::Small, 0, num, den);
            let n = symbols(Scale::Small) as f64;
            let (outcome, output) = w.run_with_output().unwrap();
            let matches = output[0].as_int().unwrap() as f64;
            assert!(
                (matches / n - p * (1.0 - p)).abs() < 0.02,
                "p = {p}: matches/n = {}",
                matches / n
            );
            let stats = outcome.trace.stats();
            let s0 = stats.site(BranchId(0));
            assert_eq!((s0.taken, s0.not_taken), (n as u64, 1));
            for (site, want) in [(1u32, p), (2, 1.0 - p), (3, p)] {
                let s = stats.site(BranchId(site));
                let rate = s.taken as f64 / s.total() as f64;
                assert!((rate - want).abs() < 0.02, "p = {p}, site {site}: {rate}");
            }
            let pct = stats.profile_misprediction_percent() / 100.0;
            let want = 2.0 * p.min(1.0 - p) * n / (3.0 * n + 1.0);
            assert!((pct - want).abs() < 0.02, "p = {p}: misprediction {pct}");
        }
    }

    #[test]
    fn half_bias_reproduces_the_uniform_tape() {
        let uniform = build_seeded(Scale::Small, 3);
        let biased = build_biased(Scale::Small, 3, 1, 2);
        assert_eq!(uniform.input, biased.input);
        assert_eq!(uniform.module.fingerprint(), biased.module.fingerprint());
    }

    #[test]
    fn seeds_change_the_text_not_the_shape() {
        let a = build_seeded(Scale::Small, 0);
        let b = build_seeded(Scale::Small, 1);
        assert_eq!(a.input.len(), b.input.len());
        assert_ne!(a.input, b.input);
        assert_eq!(a.module.fingerprint(), b.module.fingerprint());
    }
}
