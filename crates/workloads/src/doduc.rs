//! `doduc` — the suite's floating-point member (the original is a Monte
//! Carlo hydrocode). Our analogue combines two classic FP kernels with the
//! same branch profile: a Jacobi relaxation sweep whose convergence test is
//! a data-dependent loop-exit branch, and a particle integrator whose wall
//! bounces are rare, biased branches.

use brepl_ir::{FunctionBuilder, Module, Operand};

use crate::{Scale, Workload};

/// Builds the doduc workload.
pub fn build(scale: Scale) -> Workload {
    build_seeded(scale, 0)
}

/// Builds the doduc workload with an alternate input dataset (per-cell
/// integer perturbations of the initial grid, read from the input tape).
pub fn build_seeded(scale: Scale, seed: u64) -> Workload {
    let (n, sweeps, particles) = match scale {
        Scale::Small => (20i64, 30i64, 600i64),
        Scale::Full => (40, 150, 20_000),
    };
    let mut module = Module::new();
    module.push_function(build_main(n, sweeps, particles));
    module.verify().expect("doduc module must verify");
    let input = if seed == 0 {
        vec![]
    } else {
        let mut rng =
            crate::util::XorShift::new(0xD0D0C ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (0..n * n)
            .map(|_| brepl_ir::Value::Int(rng.range(0, 80)))
            .collect()
    };
    Workload {
        name: "doduc",
        description: "Jacobi relaxation + particle stepping (floating point)",
        module,
        args: vec![],
        input,
    }
}

fn build_main(n: i64, max_sweeps: i64, particle_steps: i64) -> brepl_ir::Function {
    let mut b = FunctionBuilder::new("main", 0);
    let grid = b.reg();
    let next = b.reg();
    let i = b.reg();
    let x = b.reg();
    let y = b.reg();
    let sweep = b.reg();
    let delta = b.reg();
    let tmp = b.reg();
    let v = b.reg();
    let addr = b.reg();
    let old = b.reg();
    let d = b.reg();
    let a = b.reg();
    let cells = n * n;

    let init_loop = b.new_block();
    let init_body = b.new_block();
    let sweep_head = b.new_block();
    let row_loop = b.new_block();
    let row_body = b.new_block();
    let col_loop = b.new_block();
    let col_body = b.new_block();
    let abs_neg = b.new_block();
    let abs_done = b.new_block();
    let col_next = b.new_block();
    let row_next = b.new_block();
    let sweep_check = b.new_block();
    let swap = b.new_block();
    let particles = b.new_block();
    let ploop = b.new_block();
    let pbody = b.new_block();
    let bounce_x = b.new_block();
    let no_bounce_x = b.new_block();
    let bounce_y = b.new_block();
    let no_bounce_y = b.new_block();
    let pnext = b.new_block();
    let finish = b.new_block();

    // Allocate and initialize the grids.
    b.alloc(grid, Operand::imm(cells));
    b.alloc(next, Operand::imm(cells));
    b.const_int(i, 0);
    b.jmp(init_loop);

    b.switch_to(init_loop);
    let more = b.lt(i.into(), Operand::imm(cells));
    b.br(more, init_body, sweep_head);

    b.switch_to(init_body);
    // grid[i] = sin-ish hash: ((i * 37 % 101) - 50 + perturbation) / 10.0.
    // The perturbation is `in() - 40` (tape values are 0..80); an empty or
    // exhausted tape reads -1 and contributes nothing — that is the
    // default dataset.
    b.mul(tmp, i.into(), Operand::imm(37));
    b.rem(tmp, tmp.into(), Operand::imm(101));
    b.sub(tmp, tmp.into(), Operand::imm(50));
    let pert = b.input();
    let have_pert = b.new_block();
    let no_pert = b.new_block();
    let init_store = b.new_block();
    let is_eof = b.lt(pert.into(), Operand::imm(0));
    b.br(is_eof, no_pert, have_pert);
    b.switch_to(have_pert);
    b.add(tmp, tmp.into(), pert.into());
    b.sub(tmp, tmp.into(), Operand::imm(40));
    b.jmp(init_store);
    b.switch_to(no_pert);
    b.jmp(init_store);
    b.switch_to(init_store);
    b.itof(v, tmp.into());
    b.div(v, v.into(), Operand::fimm(10.0));
    b.add(addr, grid.into(), i.into());
    b.store(addr.into(), v.into());
    b.add(addr, next.into(), i.into());
    b.store(addr.into(), v.into());
    b.add(i, i.into(), Operand::imm(1));
    b.jmp(init_loop);

    // Outer relaxation loop.
    b.switch_to(sweep_head);
    b.const_int(sweep, 0);
    b.jmp(row_loop);
    // (row_loop doubles as the sweep entry; delta reset at row start)

    b.switch_to(row_loop);
    b.const_float(delta, 0.0);
    b.const_int(y, 1);
    b.jmp(row_body);

    b.switch_to(row_body);
    let rows_left = b.lt(y.into(), Operand::imm(n - 1));
    b.br(rows_left, col_loop, sweep_check);

    b.switch_to(col_loop);
    b.const_int(x, 1);
    b.jmp(col_body);

    b.switch_to(col_body);
    let cols_left = b.lt(x.into(), Operand::imm(n - 1));
    b.br(cols_left, abs_neg, row_next); // abs_neg reused as cell body entry
                                        // NOTE: abs_neg here is the *cell body*; the abs test's negative arm is
                                        // inlined below via abs_done.

    // Cell body: average the four neighbors.
    b.switch_to(abs_neg);
    // idx = y * n + x
    b.mul(tmp, y.into(), Operand::imm(n));
    b.add(tmp, tmp.into(), x.into());
    b.add(addr, grid.into(), tmp.into());
    b.load(old, addr.into());
    // left
    b.sub(a, addr.into(), Operand::imm(1));
    b.load(v, a.into());
    // right
    b.add(a, addr.into(), Operand::imm(1));
    let r = b.reg();
    b.load(r, a.into());
    b.add(v, v.into(), r.into());
    // up
    b.sub(a, addr.into(), Operand::imm(n));
    b.load(r, a.into());
    b.add(v, v.into(), r.into());
    // down
    b.add(a, addr.into(), Operand::imm(n));
    b.load(r, a.into());
    b.add(v, v.into(), r.into());
    b.mul(v, v.into(), Operand::fimm(0.25));
    // store into next grid
    b.add(a, next.into(), tmp.into());
    b.store(a.into(), v.into());
    // d = |v - old| via a branch (the data-dependent intra-loop branch).
    b.sub(d, v.into(), old.into());
    let neg = b.lt(d.into(), Operand::fimm(0.0));
    let flip = b.new_block();
    b.br(neg, flip, abs_done);

    b.switch_to(flip);
    b.sub(d, Operand::fimm(0.0), d.into());
    b.jmp(abs_done);

    b.switch_to(abs_done);
    b.add(delta, delta.into(), d.into());
    b.jmp(col_next);

    b.switch_to(col_next);
    b.add(x, x.into(), Operand::imm(1));
    b.jmp(col_body);

    b.switch_to(row_next);
    b.add(y, y.into(), Operand::imm(1));
    b.jmp(row_body);

    // Convergence test: exit the sweep loop when delta is tiny or the
    // budget runs out — a variable-trip-count loop-exit branch.
    b.switch_to(sweep_check);
    b.add(sweep, sweep.into(), Operand::imm(1));
    let still_big = b.ge(delta.into(), Operand::fimm(0.05));
    let budget = b.lt(sweep.into(), Operand::imm(max_sweeps));
    let cont = b.reg();
    b.bin(brepl_ir::BinOp::And, cont, still_big.into(), budget.into());
    b.br(cont, swap, particles);

    b.switch_to(swap);
    b.copy(tmp, grid.into());
    b.copy(grid, next.into());
    b.copy(next, tmp.into());
    b.jmp(row_loop);

    // Particle phase: integrate a bouncing particle.
    b.switch_to(particles);
    let px = b.reg();
    let py = b.reg();
    let vx = b.reg();
    let vy = b.reg();
    let step = b.reg();
    b.const_float(px, 0.3);
    b.const_float(py, 0.7);
    b.const_float(vx, 0.0173);
    b.const_float(vy, -0.0091);
    b.const_int(step, 0);
    b.jmp(ploop);

    b.switch_to(ploop);
    let stepping = b.lt(step.into(), Operand::imm(particle_steps));
    b.br(stepping, pbody, finish);

    b.switch_to(pbody);
    b.add(px, px.into(), vx.into());
    b.add(py, py.into(), vy.into());
    // Bounce on x walls (rare, biased branch).
    let xlo = b.lt(px.into(), Operand::fimm(0.0));
    let xhi = b.gt(px.into(), Operand::fimm(1.0));
    let xout = b.reg();
    b.bin(brepl_ir::BinOp::Or, xout, xlo.into(), xhi.into());
    b.br(xout, bounce_x, no_bounce_x);

    b.switch_to(bounce_x);
    b.sub(vx, Operand::fimm(0.0), vx.into());
    b.add(px, px.into(), vx.into());
    b.jmp(no_bounce_x);

    b.switch_to(no_bounce_x);
    let ylo = b.lt(py.into(), Operand::fimm(0.0));
    let yhi = b.gt(py.into(), Operand::fimm(1.0));
    let yout = b.reg();
    b.bin(brepl_ir::BinOp::Or, yout, ylo.into(), yhi.into());
    b.br(yout, bounce_y, no_bounce_y);

    b.switch_to(bounce_y);
    b.sub(vy, Operand::fimm(0.0), vy.into());
    b.add(py, py.into(), vy.into());
    b.jmp(no_bounce_y);

    b.switch_to(no_bounce_y);
    b.jmp(pnext);

    b.switch_to(pnext);
    b.add(step, step.into(), Operand::imm(1));
    b.jmp(ploop);

    // Emit a checksum: center cell, delta, particle position.
    b.switch_to(finish);
    b.mul(tmp, Operand::imm(n / 2), Operand::imm(n));
    b.add(tmp, tmp.into(), Operand::imm(n / 2));
    b.add(addr, grid.into(), tmp.into());
    b.load(v, addr.into());
    b.out(v.into());
    b.out(delta.into());
    b.out(px.into());
    b.out(py.into());
    b.out(sweep.into());
    b.ret(Some(sweep.into()));

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_converges_or_exhausts_budget() {
        let w = build(Scale::Small);
        let (outcome, output) = w.run_with_output().unwrap();
        let sweeps = output[4].as_int().unwrap();
        assert!(sweeps >= 2, "needs several sweeps, got {sweeps}");
        assert!(sweeps <= 30);
        // Float outputs present and finite.
        for v in &output[..4] {
            let f = v.as_float().expect("float output");
            assert!(f.is_finite());
        }
        assert!(outcome.trace.len() > 5_000);
    }

    #[test]
    fn bounce_branches_are_rare() {
        let w = build(Scale::Small);
        let outcome = w.run().unwrap();
        let stats = outcome.trace.stats();
        // At least one branch site should be extremely biased (<2%
        // minority) — the wall bounces.
        let strongly_biased = stats
            .iter_executed()
            .filter(|(_, c)| {
                c.total() > 100 && (c.minority_count() as f64) < 0.02 * c.total() as f64
            })
            .count();
        assert!(strongly_biased >= 2);
    }
}
