//! Depth-first orderings over a [`Cfg`].

use brepl_ir::BlockId;

use crate::graph::Cfg;

/// Blocks in postorder of a depth-first traversal from the entry.
/// Unreachable blocks are omitted.
pub fn postorder(cfg: &Cfg) -> Vec<BlockId> {
    let mut order = Vec::with_capacity(cfg.len());
    let mut state = vec![0u8; cfg.len()]; // 0 unvisited, 1 on stack, 2 done
                                          // Iterative DFS with an explicit (block, next-successor-index) stack so
                                          // deep CFGs cannot overflow the call stack.
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
    state[cfg.entry().index()] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = cfg.succs(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order
}

/// Blocks in reverse postorder (a topological order on the acyclic part of
/// the graph; loop headers precede their bodies). Unreachable blocks are
/// omitted.
pub fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let mut po = postorder(cfg);
    po.reverse();
    po
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    #[test]
    fn rpo_starts_at_entry() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rpo = reverse_postorder(&cfg);
        assert_eq!(rpo[0], cfg.entry());
        assert_eq!(rpo.len(), 4);
        // Join block must come after both arms.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_omitted() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(postorder(&cfg), vec![BlockId(0)]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut b = FunctionBuilder::new("f", 0);
        let mut blocks = vec![];
        for _ in 0..50_000 {
            blocks.push(b.new_block());
        }
        b.jmp(blocks[0]);
        for i in 0..blocks.len() {
            b.switch_to(blocks[i]);
            if i + 1 < blocks.len() {
                b.jmp(blocks[i + 1]);
            } else {
                b.ret(None);
            }
        }
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(postorder(&cfg).len(), 50_001);
    }
}
