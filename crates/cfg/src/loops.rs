//! Natural-loop analysis (Aho/Sethi/Ullman, §10.4) and the loop nesting
//! forest.

use std::collections::BTreeSet;

use brepl_ir::BlockId;

use crate::dom::DomTree;
use crate::graph::Cfg;

/// Identifies a loop within a [`LoopForest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One natural loop: the union of all natural loops sharing a header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (the target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub blocks: BTreeSet<BlockId>,
    /// The back edges `(tail, header)` defining this loop.
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// Edges `(from_inside, to_outside)` leaving the loop.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// The immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost loops have depth 1).
    pub depth: u32,
}

impl NaturalLoop {
    /// True if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// The loop nesting forest of a function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// Innermost loop containing each block (`None` for non-loop blocks).
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Finds all natural loops of `cfg`.
    ///
    /// A back edge is an edge `t -> h` where `h` dominates `t`. The natural
    /// loop of a back edge is `h` plus all blocks that reach `t` without
    /// passing through `h`. Back edges sharing a header are merged into one
    /// loop, following the paper's use of \[ASU86\] loop analysis.
    pub fn new(cfg: &Cfg, dom: &DomTree) -> Self {
        // Collect back edges grouped by header, in header order for
        // determinism.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut edges_by_header: Vec<Vec<BlockId>> = Vec::new();
        for b in cfg.blocks() {
            if !dom.is_reachable(b) {
                continue;
            }
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match headers.iter().position(|&h| h == s) {
                        Some(i) => edges_by_header[i].push(b),
                        None => {
                            headers.push(s);
                            edges_by_header.push(vec![b]);
                        }
                    }
                }
            }
        }

        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (hi, &header) in headers.iter().enumerate() {
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &tail in &edges_by_header[hi] {
                if blocks.insert(tail) {
                    stack.push(tail);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if dom.is_reachable(p) && blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let mut exit_edges = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs(b) {
                    if !blocks.contains(&s) {
                        exit_edges.push((b, s));
                    }
                }
            }
            loops.push(NaturalLoop {
                header,
                back_edges: edges_by_header[hi].iter().map(|&t| (t, header)).collect(),
                exit_edges,
                blocks,
                parent: None,
                depth: 1,
            });
        }

        // Nesting: loop A is nested in B iff A's blocks ⊆ B's blocks and
        // A != B. The parent is the smallest strict superset.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].blocks.len());
        for oi in 0..order.len() {
            let i = order[oi];
            let mut best: Option<usize> = None;
            for &j in &order[oi + 1..] {
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.is_superset(&loops[i].blocks)
                {
                    best = match best {
                        Some(b) if loops[b].blocks.len() <= loops[j].blocks.len() => Some(b),
                        _ => Some(j),
                    };
                }
            }
            loops[i].parent = best.map(|j| LoopId(j as u32));
        }
        // Depths, following parent chains.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block = smallest containing loop.
        let mut innermost: Vec<Option<LoopId>> = vec![None; cfg.len()];
        let mut by_size: Vec<usize> = (0..loops.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for &i in &by_size {
            for &b in &loops[i].blocks {
                innermost[b.index()] = Some(LoopId(i as u32));
            }
        }

        LoopForest { loops, innermost }
    }

    /// All loops, in discovery order.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The loop for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &NaturalLoop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.index()]
    }

    /// Nesting depth of `b` (0 for non-loop blocks).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost(b).map_or(0, |l| self.get(l).depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{Function, FunctionBuilder, Operand};

    /// Nested loops:
    /// b0 -> b1(outer head) -> b2(inner head) -> b3 -> b2 | b4 -> b1 | b5
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let outer = b.new_block();
        let inner = b.new_block();
        let body = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(outer);
        b.switch_to(outer);
        let c0 = b.lt(n.into(), Operand::imm(10));
        b.br(c0, inner, exit);
        b.switch_to(inner);
        let c1 = b.lt(n.into(), Operand::imm(5));
        b.br(c1, body, latch);
        b.switch_to(body);
        b.jmp(inner);
        b.switch_to(latch);
        b.jmp(outer);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    fn forest(f: &Function) -> (Cfg, LoopForest) {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        let lf = LoopForest::new(&cfg, &dom);
        (cfg, lf)
    }

    #[test]
    fn finds_two_nested_loops() {
        let f = nested();
        let (_, lf) = forest(&f);
        assert_eq!(lf.loops().len(), 2);
        let inner = lf
            .loops()
            .iter()
            .find(|l| l.header == BlockId(2))
            .expect("inner loop");
        let outer = lf
            .loops()
            .iter()
            .find(|l| l.header == BlockId(1))
            .expect("outer loop");
        assert!(outer.blocks.is_superset(&inner.blocks));
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.depth, 1);
        assert!(inner.parent.is_some());
        assert!(outer.parent.is_none());
    }

    #[test]
    fn innermost_resolution() {
        let f = nested();
        let (_, lf) = forest(&f);
        let inner_id = lf.innermost(BlockId(3)).unwrap();
        assert_eq!(lf.get(inner_id).header, BlockId(2));
        assert_eq!(lf.depth_of(BlockId(3)), 2);
        assert_eq!(lf.depth_of(BlockId(4)), 1); // latch is outer-loop only
        assert_eq!(lf.depth_of(BlockId(5)), 0);
        assert_eq!(lf.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn exit_edges_found() {
        let f = nested();
        let (_, lf) = forest(&f);
        let outer = lf.loops().iter().find(|l| l.header == BlockId(1)).unwrap();
        assert!(outer.exit_edges.contains(&(BlockId(1), BlockId(5))));
        let inner = lf.loops().iter().find(|l| l.header == BlockId(2)).unwrap();
        assert!(inner.exit_edges.contains(&(BlockId(2), BlockId(4))));
    }

    #[test]
    fn loopless_function_has_empty_forest() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = b.finish();
        let (_, lf) = forest(&f);
        assert!(lf.loops().is_empty());
        assert_eq!(lf.innermost(BlockId(0)), None);
    }

    #[test]
    fn self_loop() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let head = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(x.into(), Operand::imm(3));
        b.br(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let (_, lf) = forest(&f);
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.back_edges, vec![(BlockId(1), BlockId(1))]);
    }

    #[test]
    fn merged_back_edges_same_header() {
        // Two latches into one header: still one loop.
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let head = b.new_block();
        let l1 = b.new_block();
        let l2 = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(x.into(), Operand::imm(3));
        b.br(c, l1, l2);
        b.switch_to(l1);
        b.jmp(head);
        b.switch_to(l2);
        let c2 = b.lt(x.into(), Operand::imm(9));
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let (_, lf) = forest(&f);
        assert_eq!(lf.loops().len(), 1);
        assert_eq!(lf.loops()[0].back_edges.len(), 2);
    }
}
