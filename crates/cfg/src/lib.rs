//! # brepl-cfg — control-flow analysis for the brepl IR
//!
//! Provides the program analyses the paper's §5 relies on: CFG construction
//! with predecessor/successor edges, depth-first orderings, dominators
//! (Cooper–Harvey–Kennedy iterative algorithm), natural-loop detection as in
//! Aho/Sethi/Ullman, and the classification of conditional branches into
//! *intra-loop*, *loop-exit* and *other* branches together with the
//! predecessor-path enumeration used for *correlated* branches.
//!
//! ```
//! use brepl_ir::{FunctionBuilder, Operand};
//! use brepl_cfg::{Cfg, DomTree, LoopForest};
//!
//! let mut b = FunctionBuilder::new("f", 1);
//! let n = b.param(0);
//! let i = b.reg();
//! b.const_int(i, 0);
//! let head = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! b.jmp(head);
//! b.switch_to(head);
//! let c = b.lt(i.into(), n.into());
//! b.br(c, body, exit);
//! b.switch_to(body);
//! b.add(i, i.into(), Operand::imm(1));
//! b.jmp(head);
//! b.switch_to(exit);
//! b.ret(None);
//!
//! let f = b.finish();
//! let cfg = Cfg::new(&f);
//! let dom = DomTree::new(&cfg);
//! let loops = LoopForest::new(&cfg, &dom);
//! assert_eq!(loops.loops().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod dom;
mod dot;
mod graph;
mod loops;
mod order;
mod product;

pub use classify::{BranchClass, BranchInfo, ClassifiedBranches, PathStep, PredecessorPaths};
pub use dom::DomTree;
pub use dot::function_to_dot;
pub use graph::Cfg;
pub use loops::{LoopForest, LoopId, NaturalLoop};
pub use order::{postorder, reverse_postorder};
pub use product::{product_reachable, ProductReach};
