//! Graphviz (dot) export of control-flow graphs, with optional loop and
//! branch-class annotations — handy when studying what the replication
//! transform did to a function.

use std::fmt::Write as _;

use brepl_ir::{Function, Term};

use crate::classify::{BranchClass, ClassifiedBranches};
use crate::dom::DomTree;
use crate::graph::Cfg;
use crate::loops::LoopForest;

/// Renders `func`'s CFG as a Graphviz digraph. Blocks show their first
/// instruction count and terminator; loop membership is encoded as
/// clusters by nesting depth color, branch edges are labeled T/N and
/// classified branches are color-coded (intra-loop green, exit orange,
/// other black).
pub fn function_to_dot(func: &Function) -> String {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(&cfg);
    let forest = LoopForest::new(&cfg, &dom);
    let classes = ClassifiedBranches::analyze(func, &forest);

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name);
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (bid, block) in func.iter_blocks() {
        let depth = forest.depth_of(bid);
        let fill = match depth {
            0 => "white",
            1 => "lightyellow",
            2 => "khaki",
            _ => "gold",
        };
        let term = block.term.to_string().replace('"', "'");
        let _ = writeln!(
            out,
            "  {bid} [label=\"{bid}\\n{} insts\\n{term}\", style=filled, fillcolor={fill}];",
            block.insts.len()
        );
        match &block.term {
            Term::Br { then_, else_, .. } => {
                let color = classes
                    .branches()
                    .iter()
                    .find(|b| b.block == bid)
                    .map(|b| match b.class {
                        BranchClass::IntraLoop => "darkgreen",
                        BranchClass::LoopExit => "orange",
                        BranchClass::NonLoop => "black",
                    })
                    .unwrap_or("black");
                let _ = writeln!(out, "  {bid} -> {then_} [label=\"T\", color={color}];");
                let _ = writeln!(out, "  {bid} -> {else_} [label=\"N\", color={color}];");
            }
            Term::Jmp { target } => {
                let _ = writeln!(out, "  {bid} -> {target};");
            }
            Term::Ret { .. } => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    #[test]
    fn dot_output_is_well_formed() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(x.into(), Operand::imm(3));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let dot = function_to_dot(&f);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("b1 -> b2 [label=\"T\""));
        assert!(dot.contains("orange"), "exit branch color-coded");
        assert!(dot.contains("lightyellow"), "loop blocks shaded");
        // Every block appears.
        for bid in 0..f.blocks.len() {
            assert!(dot.contains(&format!("b{bid} [label=")));
        }
    }
}
