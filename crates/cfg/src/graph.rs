//! CFG construction from a [`Function`].

use brepl_ir::{BlockId, Function};

/// The control-flow graph of one function: successor and predecessor edge
/// lists indexed by [`BlockId`].
///
/// Successors preserve terminator order (`(taken, not-taken)` for
/// conditional branches), and parallel edges are kept — a branch whose two
/// targets coincide produces two successor entries, which matters when
/// counting edge frequencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    entry: BlockId,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[bid.index()].push(s);
                preds[s.index()].push(bid);
            }
        }
        Cfg {
            entry: func.entry,
            succs,
            preds,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks (cannot happen for built
    /// functions, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`, in terminator order.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b` (one entry per incoming edge).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Iterates over all block ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.len()).map(BlockId::from_index)
    }

    /// Iterates over every edge as `(source, slot, target)`, where `slot`
    /// is the index of the edge in the source's successor list (so the
    /// `(taken, not-taken)` legs of a conditional branch are slots 0 and 1,
    /// and parallel edges stay distinguishable).
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, usize, BlockId)> + '_ {
        self.succs.iter().enumerate().flat_map(|(i, ss)| {
            ss.iter()
                .enumerate()
                .map(move |(slot, &t)| (BlockId::from_index(i), slot, t))
        })
    }

    /// Blocks reachable from the entry, as a boolean vector.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.entry];
        seen[self.entry.index()] = true;
        while let Some(b) = stack.pop() {
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    /// Diamond: b0 -> (b1|b2) -> b3.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(0)), &[] as &[BlockId]);
    }

    #[test]
    fn parallel_edges_kept() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.param(0);
        let t = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)).len(), 2);
        assert_eq!(cfg.preds(BlockId(1)).len(), 2);
    }

    #[test]
    fn edges_carry_slots() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let edges: Vec<_> = cfg.edges().collect();
        assert_eq!(
            edges,
            vec![
                (BlockId(0), 0, BlockId(1)),
                (BlockId(0), 1, BlockId(2)),
                (BlockId(1), 0, BlockId(3)),
                (BlockId(2), 0, BlockId(3)),
            ]
        );
    }

    #[test]
    fn reachability() {
        let mut b = FunctionBuilder::new("r", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let r = cfg.reachable();
        assert_eq!(r, vec![true, false]);
    }
}
