//! Branch classification (§5 of the paper) and predecessor-path
//! enumeration for correlated branches (§4.3).

use brepl_ir::{BlockId, BranchId, Function, Term};

use crate::graph::Cfg;
use crate::loops::{LoopForest, LoopId};

/// The class of a conditional branch with respect to loop structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Inside a loop, both successors stay inside the innermost loop.
    /// Candidates for *intra-loop* state machines (§4.1).
    IntraLoop,
    /// Inside a loop, at least one successor leaves the innermost loop.
    /// Candidates for *loop-exit* state machines (§4.2).
    LoopExit,
    /// Not inside any loop. Candidates for *correlated* machines only.
    NonLoop,
}

/// Per-branch classification result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchInfo {
    /// The branch site.
    pub site: BranchId,
    /// The block whose terminator is this branch.
    pub block: BlockId,
    /// Taken target.
    pub then_: BlockId,
    /// Not-taken target.
    pub else_: BlockId,
    /// The class.
    pub class: BranchClass,
    /// The innermost loop containing the branch block, if any.
    pub innermost_loop: Option<LoopId>,
    /// Whether the *taken* direction is a back edge of the innermost loop
    /// (used by the Ball–Larus *loop* heuristic and by replication).
    pub taken_is_back_edge: bool,
    /// Whether the taken target stays inside the innermost loop
    /// (false for non-loop branches).
    pub then_in_loop: bool,
    /// Whether the not-taken target stays inside the innermost loop
    /// (false for non-loop branches).
    pub else_in_loop: bool,
}

/// All conditional branches of one function, classified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassifiedBranches {
    branches: Vec<BranchInfo>,
}

impl ClassifiedBranches {
    /// Classifies every conditional branch of `func`.
    pub fn analyze(func: &Function, forest: &LoopForest) -> Self {
        let mut branches = Vec::new();
        for (bid, block) in func.iter_blocks() {
            let Term::Br {
                then_, else_, site, ..
            } = block.term
            else {
                continue;
            };
            let innermost_loop = forest.innermost(bid);
            let (then_in_loop, else_in_loop) = match innermost_loop {
                None => (false, false),
                Some(l) => {
                    let lp = forest.get(l);
                    (lp.contains(then_), lp.contains(else_))
                }
            };
            let class = match innermost_loop {
                None => BranchClass::NonLoop,
                Some(_) if then_in_loop && else_in_loop => BranchClass::IntraLoop,
                Some(_) => BranchClass::LoopExit,
            };
            let taken_is_back_edge = innermost_loop
                .map(|l| {
                    forest
                        .get(l)
                        .back_edges
                        .iter()
                        .any(|&(t, h)| t == bid && h == then_)
                })
                .unwrap_or(false);
            branches.push(BranchInfo {
                site,
                block: bid,
                then_,
                else_,
                class,
                innermost_loop,
                taken_is_back_edge,
                then_in_loop,
                else_in_loop,
            });
        }
        ClassifiedBranches { branches }
    }

    /// All classified branches, in block order.
    pub fn branches(&self) -> &[BranchInfo] {
        &self.branches
    }

    /// Looks up a branch by site id.
    pub fn by_site(&self, site: BranchId) -> Option<&BranchInfo> {
        self.branches.iter().find(|b| b.site == site)
    }

    /// Counts branches in each class: `(intra_loop, loop_exit, non_loop)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for b in &self.branches {
            match b.class {
                BranchClass::IntraLoop => c.0 += 1,
                BranchClass::LoopExit => c.1 += 1,
                BranchClass::NonLoop => c.2 += 1,
            }
        }
        c
    }
}

/// One decision on a control-flow path leading to a branch: an earlier
/// branch site and the direction it took.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathStep {
    /// The earlier branch.
    pub site: BranchId,
    /// The direction taken at that branch.
    pub taken: bool,
}

/// The set of control-flow paths (sequences of earlier branch decisions)
/// that can reach a given branch, capped in length and count.
///
/// Paths are stored oldest-decision-first, i.e. in execution order. This is
/// the raw material for the correlated-branch state machines of §4.3: each
/// state of such a machine is one of these paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredecessorPaths {
    /// Distinct decision paths, execution order within each path.
    pub paths: Vec<Vec<PathStep>>,
    /// True when enumeration was cut off by the path-count cap, meaning
    /// `paths` is not exhaustive.
    pub truncated: bool,
}

/// Upper bound on enumerated paths per branch; beyond this the analysis
/// marks the result truncated rather than blowing up on dense CFGs.
pub const MAX_PATHS: usize = 256;

impl PredecessorPaths {
    /// Enumerates the decision paths of length `<= max_decisions` that end
    /// at `block` (exclusive of `block`'s own terminator).
    ///
    /// The backward walk does not revisit a block within a single path, so
    /// loop iterations contribute each static cycle at most once per path —
    /// matching the paper's use of short acyclic path fragments.
    pub fn enumerate(func: &Function, cfg: &Cfg, block: BlockId, max_decisions: usize) -> Self {
        let mut paths: Vec<Vec<PathStep>> = Vec::new();
        let mut truncated = false;
        // Worklist of (current block, decisions newest-first, visited set).
        let mut work: Vec<(BlockId, Vec<PathStep>, Vec<BlockId>)> =
            vec![(block, Vec::new(), vec![block])];
        while let Some((cur, decisions, visited)) = work.pop() {
            if paths.len() >= MAX_PATHS {
                truncated = true;
                break;
            }
            let preds = cfg.preds(cur);
            let extendable = decisions.len() < max_decisions && !preds.is_empty();
            if !extendable {
                let mut p = decisions.clone();
                p.reverse();
                if !paths.contains(&p) {
                    paths.push(p);
                }
                continue;
            }
            let mut extended_any = false;
            for &p in preds {
                if visited.contains(&p) {
                    continue;
                }
                let step = match func.block(p).term {
                    Term::Br {
                        then_, else_, site, ..
                    } => {
                        // With then_ == else_ the direction is ambiguous;
                        // record the taken direction arbitrarily but
                        // deterministically.
                        let taken = then_ == cur;
                        let _ = else_;
                        Some(PathStep { site, taken })
                    }
                    _ => None,
                };
                let mut d = decisions.clone();
                if let Some(s) = step {
                    d.push(s);
                }
                let mut v = visited.clone();
                v.push(p);
                work.push((p, d, v));
                extended_any = true;
            }
            if !extended_any {
                let mut p = decisions.clone();
                p.reverse();
                if !paths.contains(&p) {
                    paths.push(p);
                }
            }
        }
        paths.sort();
        paths.dedup();
        PredecessorPaths { paths, truncated }
    }

    /// The maximum decision count over all paths.
    pub fn max_len(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use brepl_ir::{FunctionBuilder, Operand};

    /// Loop with an intra-loop branch and the loop-exit branch:
    ///
    /// b0 -> b1 (head, exit br) -> b2 (intra br) -> b3|b4 -> b1 ; b5 exit
    fn loopy() -> brepl_ir::Function {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let head = b.new_block();
        let body = b.new_block();
        let a1 = b.new_block();
        let a2 = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(x.into(), Operand::imm(100));
        b.br(c, body, exit);
        b.switch_to(body);
        let c2 = b.eq(x.into(), Operand::imm(1));
        b.br(c2, a1, a2);
        b.switch_to(a1);
        b.jmp(head);
        b.switch_to(a2);
        b.jmp(head);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    fn analyze(f: &brepl_ir::Function) -> (Cfg, ClassifiedBranches) {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let cls = ClassifiedBranches::analyze(f, &forest);
        (cfg, cls)
    }

    #[test]
    fn classes_assigned() {
        let f = loopy();
        let (_, cls) = analyze(&f);
        let (intra, exit, non) = cls.class_counts();
        assert_eq!((intra, exit, non), (1, 1, 0));
        let head_branch = cls
            .branches()
            .iter()
            .find(|b| b.block == BlockId(1))
            .unwrap();
        assert_eq!(head_branch.class, BranchClass::LoopExit);
        let body_branch = cls
            .branches()
            .iter()
            .find(|b| b.block == BlockId(2))
            .unwrap();
        assert_eq!(body_branch.class, BranchClass::IntraLoop);
    }

    #[test]
    fn non_loop_branch_classified() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let (_, cls) = analyze(&f);
        assert_eq!(cls.branches()[0].class, BranchClass::NonLoop);
        assert!(cls.by_site(cls.branches()[0].site).is_some());
    }

    #[test]
    fn predecessor_paths_of_diamond_join() {
        // b0 --c--> b1 | b2 ; both -> b3 (second branch there)
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let end1 = b.new_block();
        let end2 = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let c2 = b.lt(x.into(), Operand::imm(5));
        b.br(c2, end1, end2);
        b.switch_to(end1);
        b.ret(None);
        b.switch_to(end2);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let pp = PredecessorPaths::enumerate(&f, &cfg, BlockId(3), 2);
        assert!(!pp.truncated);
        // Two ways to reach the join: via taken and via not-taken of the
        // first branch.
        assert_eq!(pp.paths.len(), 2);
        assert!(pp.paths.iter().any(|p| p.len() == 1 && p[0].taken));
        assert!(pp.paths.iter().any(|p| p.len() == 1 && !p[0].taken));
        assert_eq!(pp.max_len(), 1);
    }

    #[test]
    fn path_enumeration_respects_length_cap() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        // Paths to the intra-loop branch block b2, at most 1 decision:
        // always "head branch taken".
        let pp = PredecessorPaths::enumerate(&f, &cfg, BlockId(2), 1);
        assert!(pp.paths.iter().all(|p| p.len() <= 1));
        assert!(pp.paths.iter().any(|p| p.len() == 1 && p[0].taken));
    }

    #[test]
    fn entry_block_has_single_empty_path() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let pp = PredecessorPaths::enumerate(&f, &cfg, BlockId(0), 3);
        assert_eq!(pp.paths, vec![Vec::<PathStep>::new()]);
    }
}
