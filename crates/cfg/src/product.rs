//! Product-graph iteration: reachability over the product of a [`Cfg`]
//! with a small finite automaton.
//!
//! Code replication encodes a branch predictor's state in the program
//! counter, so checking the encoding means exploring the product graph
//! whose nodes are `(block, automaton state)` pairs. This helper walks
//! exactly that product: the caller supplies the per-edge state map (which
//! automaton state an edge `(block, slot)` leads to from a given state) and
//! gets back, for every block, the set of states under which it is
//! reachable.
//!
//! The walk is a plain BFS over at most `blocks × states` nodes, so it
//! always terminates; callers guard against runaway products with
//! [`product_reachable`]'s node cap.

use brepl_ir::BlockId;

use crate::graph::Cfg;

/// Which automaton states reach each block, as computed by
/// [`product_reachable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProductReach {
    /// `seen[block][state]` — true when `(block, state)` is reachable.
    seen: Vec<Vec<bool>>,
    n_states: usize,
}

impl ProductReach {
    /// True when `(block, state)` is reachable from the product entry.
    pub fn is_reachable(&self, block: BlockId, state: usize) -> bool {
        self.seen
            .get(block.index())
            .is_some_and(|row| row.get(state).copied().unwrap_or(false))
    }

    /// The states under which `block` is reachable, in increasing order.
    pub fn states_at(&self, block: BlockId) -> impl Iterator<Item = usize> + '_ {
        self.seen[block.index()]
            .iter()
            .enumerate()
            .filter_map(|(q, &r)| if r { Some(q) } else { None })
    }

    /// Number of automaton states in the product.
    pub fn n_states(&self) -> usize {
        self.n_states
    }
}

/// Explores the product of `cfg` with an `n_states`-state automaton,
/// starting from `(entry block, entry_state)`.
///
/// `step(block, slot, state)` maps the automaton state across the CFG edge
/// leaving `block` through successor `slot` (terminator order: the taken
/// and not-taken legs of a conditional branch are slots 0 and 1). Most
/// edges are the identity; replica branches step their machine.
///
/// Returns `None` when the product has more than `max_nodes` nodes — the
/// caller's divergence guard — or when `step` ever returns an
/// out-of-range state (a malformed automaton).
pub fn product_reachable(
    cfg: &Cfg,
    n_states: usize,
    entry_state: usize,
    max_nodes: usize,
    mut step: impl FnMut(BlockId, usize, usize) -> usize,
) -> Option<ProductReach> {
    if n_states == 0 || entry_state >= n_states {
        return None;
    }
    if cfg.len().checked_mul(n_states)? > max_nodes {
        return None;
    }
    let mut seen = vec![vec![false; n_states]; cfg.len()];
    let entry = cfg.entry();
    seen[entry.index()][entry_state] = true;
    let mut stack = vec![(entry, entry_state)];
    while let Some((b, q)) = stack.pop() {
        for (slot, &succ) in cfg.succs(b).iter().enumerate() {
            let q2 = step(b, slot, q);
            if q2 >= n_states {
                return None;
            }
            if !seen[succ.index()][q2] {
                seen[succ.index()][q2] = true;
                stack.push((succ, q2));
            }
        }
    }
    Some(ProductReach { seen, n_states })
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};

    /// Loop with an alternating-style branch: b0 -> head(b1) -> {b2,b3} ->
    /// latch(b4) -> head | exit(b5).
    fn loopy() -> brepl_ir::Function {
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let even = b.new_block();
        let odd = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let r = b.reg();
        b.rem(r, i.into(), Operand::imm(2));
        let c = b.eq(r.into(), Operand::imm(0));
        b.br(c, even, odd);
        b.switch_to(even);
        b.jmp(latch);
        b.switch_to(odd);
        b.jmp(latch);
        b.switch_to(latch);
        b.add(i, i.into(), Operand::imm(1));
        let c2 = b.lt(i.into(), n.into());
        b.br(c2, head, exit);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn identity_step_reaches_entry_state_everywhere() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        let r = product_reachable(&cfg, 3, 1, 1 << 20, |_, _, q| q).unwrap();
        for b in cfg.blocks() {
            assert_eq!(r.states_at(b).collect::<Vec<_>>(), vec![1], "{b}");
        }
        assert!(!r.is_reachable(BlockId(0), 0));
        assert_eq!(r.n_states(), 3);
    }

    #[test]
    fn branch_step_splits_states() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        // A 2-state flip-flop stepped at the head branch (block 1): taken
        // -> state 1, not taken -> state 0; all other edges identity.
        let r = product_reachable(&cfg, 2, 0, 1 << 20, |b, slot, q| {
            if b == BlockId(1) {
                if slot == 0 {
                    1
                } else {
                    0
                }
            } else {
                q
            }
        })
        .unwrap();
        // The taken arm (b2) is only ever reached in state 1, the
        // not-taken arm (b3) only in state 0; the latch sees both.
        assert_eq!(r.states_at(BlockId(2)).collect::<Vec<_>>(), vec![1]);
        assert_eq!(r.states_at(BlockId(3)).collect::<Vec<_>>(), vec![0]);
        assert_eq!(r.states_at(BlockId(4)).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn caps_and_malformed_steps_rejected() {
        let f = loopy();
        let cfg = Cfg::new(&f);
        // Node cap exceeded.
        assert!(product_reachable(&cfg, 4, 0, 5, |_, _, q| q).is_none());
        // Out-of-range entry state / empty automaton.
        assert!(product_reachable(&cfg, 2, 2, 1 << 20, |_, _, q| q).is_none());
        assert!(product_reachable(&cfg, 0, 0, 1 << 20, |_, _, q| q).is_none());
        // Step function escapes the state universe.
        assert!(product_reachable(&cfg, 2, 0, 1 << 20, |_, _, _| 7).is_none());
    }
}
