//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use brepl_ir::BlockId;

use crate::graph::Cfg;
use crate::order::reverse_postorder;

/// The dominator tree of a [`Cfg`].
///
/// Unreachable blocks have no immediate dominator and dominate nothing.
/// The entry block's immediate dominator is itself (by convention of the
/// CHK algorithm); [`DomTree::idom`] reports `None` for it to keep the tree
/// shape conventional.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomTree {
    entry: BlockId,
    /// `idom_raw[b]` = immediate dominator, with `entry` mapping to itself;
    /// `u32::MAX` marks unreachable blocks.
    idom_raw: Vec<u32>,
    /// Reverse-postorder number of each block (`u32::MAX` if unreachable).
    rpo_number: Vec<u32>,
}

impl DomTree {
    /// Computes dominators for `cfg`.
    pub fn new(cfg: &Cfg) -> Self {
        let rpo = reverse_postorder(cfg);
        let mut rpo_number = vec![u32::MAX; cfg.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = i as u32;
        }
        let mut idom = vec![u32::MAX; cfg.len()];
        let entry = cfg.entry();
        idom[entry.index()] = entry.0;

        let intersect = |idom: &[u32], rpo_number: &[u32], mut a: u32, mut b: u32| -> u32 {
            // Walk both fingers up the tree, ordering by RPO number.
            while a != b {
                while rpo_number[a as usize] > rpo_number[b as usize] {
                    a = idom[a as usize];
                }
                while rpo_number[b as usize] > rpo_number[a as usize] {
                    b = idom[b as usize];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = u32::MAX;
                for &p in cfg.preds(b) {
                    if idom[p.index()] == u32::MAX {
                        continue; // predecessor not yet processed / unreachable
                    }
                    new_idom = if new_idom == u32::MAX {
                        p.0
                    } else {
                        intersect(&idom, &rpo_number, new_idom, p.0)
                    };
                }
                if new_idom != u32::MAX && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        DomTree {
            entry,
            idom_raw: idom,
            rpo_number,
        }
    }

    /// The immediate dominator of `b`, or `None` for the entry block and
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        match self.idom_raw[b.index()] {
            u32::MAX => None,
            v => Some(BlockId(v)),
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom_raw[b.index()] != u32::MAX
    }

    /// True if `a` dominates `b` (every path from the entry to `b` passes
    /// through `a`). Reflexive: `dominates(b, b)` is true for reachable `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = BlockId(self.idom_raw[cur.index()]);
        }
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{Function, FunctionBuilder, Operand};

    /// b0 -> (b1 | b2), b1 -> b3, b2 -> b3, b3 -> (b4 | b0 back edge)
    fn looped_diamond() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let out = b.new_block();
        let c = b.gt(x.into(), Operand::imm(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let c2 = b.lt(x.into(), Operand::imm(100));
        b.br(c2, brepl_ir::BlockId(0), out);
        b.switch_to(out);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_idoms() {
        let f = looped_diamond();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(3)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = looped_diamond();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        for b in cfg.blocks() {
            assert!(dom.dominates(b, b));
            assert!(dom.dominates(BlockId(0), b), "entry dominates {b}");
        }
        assert!(dom.dominates(BlockId(3), BlockId(4)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.strictly_dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        assert!(!dom.is_reachable(BlockId(1)));
        assert_eq!(dom.idom(BlockId(1)), None);
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
    }

    #[test]
    fn single_block() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert!(dom.dominates(BlockId(0), BlockId(0)));
    }
}
