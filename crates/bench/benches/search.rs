//! Criterion benchmarks: state-machine search cost — the exhaustive
//! intra-loop antichain search, the exit-chain scoring and the correlated
//! path selection. These dominate compile-time cost in a production
//! deployment of the technique.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use brepl_cfg::PathStep;
use brepl_core::correlated::profile_paths;
use brepl_core::intra_loop::IntraLoopSearch;
use brepl_core::loop_exit::best_exit_machine;
use brepl_ir::BranchId;
use brepl_predict::{HistoryKind, PatternTableSet};
use brepl_trace::{Trace, TraceEvent};

fn periodic_trace(period: usize, n: usize) -> Trace {
    (0..n)
        .map(|i| TraceEvent {
            site: BranchId(0),
            taken: i % period != period - 1,
        })
        .collect()
}

fn bench_intra_search(c: &mut Criterion) {
    let trace = periodic_trace(7, 50_000);
    let tables = PatternTableSet::build(&trace, HistoryKind::Local, 9);
    let table = tables.site(BranchId(0)).expect("site exists").clone();

    let mut group = c.benchmark_group("intra-loop-search");
    for max_states in [4usize, 6, 8, 10] {
        let search = IntraLoopSearch::new(max_states, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(max_states),
            &max_states,
            |b, _| b.iter(|| search.search(&table)),
        );
    }
    group.finish();
}

fn bench_search_space_construction(c: &mut Criterion) {
    c.bench_function("antichain-enumeration-10", |b| {
        b.iter(|| IntraLoopSearch::new(10, 9))
    });
}

fn bench_exit_machines(c: &mut Criterion) {
    let trace = periodic_trace(9, 50_000);
    let tables = PatternTableSet::build(&trace, HistoryKind::Local, 9);
    let table = tables.site(BranchId(0)).expect("site exists").clone();
    let outcomes: Vec<bool> = trace.iter().map(|e| e.taken).collect();

    c.bench_function("exit-machine-search-10", |b| {
        b.iter(|| best_exit_machine(10, &table, &outcomes))
    });
}

fn bench_correlated_selection(c: &mut Criterion) {
    // Two interleaved correlated branches.
    let mut trace = Trace::new();
    let mut x = 5u64;
    for _ in 0..25_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let d = x >> 30 & 1 == 1;
        trace.push(TraceEvent {
            site: BranchId(0),
            taken: d,
        });
        trace.push(TraceEvent {
            site: BranchId(1),
            taken: d ^ (x >> 31 & 1 == 1),
        });
    }
    let mut candidates: HashMap<BranchId, Vec<Vec<PathStep>>> = HashMap::new();
    candidates.insert(
        BranchId(1),
        vec![
            vec![PathStep {
                site: BranchId(0),
                taken: true,
            }],
            vec![PathStep {
                site: BranchId(0),
                taken: false,
            }],
        ],
    );

    let mut group = c.benchmark_group("correlated");
    group.bench_function("profile-paths", |b| {
        b.iter(|| profile_paths(&trace, &candidates))
    });
    let profiles = profile_paths(&trace, &candidates);
    group.bench_function("greedy-select-4", |b| {
        b.iter(|| profiles[&BranchId(1)].select(4))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intra_search,
    bench_search_space_construction,
    bench_exit_machines,
    bench_correlated_selection
);
criterion_main!(benches);
