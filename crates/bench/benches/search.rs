//! Benchmarks (std-only harness): state-machine search cost — the
//! exhaustive intra-loop antichain search, the exit-chain scoring and the
//! correlated path selection. These dominate compile-time cost in a
//! production deployment of the technique.

use std::collections::HashMap;

use brepl_bench::timing::bench_time;
use brepl_cfg::PathStep;
use brepl_core::correlated::profile_paths;
use brepl_core::intra_loop::IntraLoopSearch;
use brepl_core::loop_exit::best_exit_machine;
use brepl_ir::BranchId;
use brepl_predict::{HistoryKind, PatternTableSet};
use brepl_trace::{Trace, TraceEvent};

fn periodic_trace(period: usize, n: usize) -> Trace {
    (0..n)
        .map(|i| TraceEvent {
            site: BranchId(0),
            taken: i % period != period - 1,
        })
        .collect()
}

fn main() {
    let trace = periodic_trace(7, 50_000);
    let tables = PatternTableSet::build(&trace, HistoryKind::Local, 9);
    let table = tables.site(BranchId(0)).expect("site exists").clone();

    println!("intra-loop-search (period-7 trace, 50k events)");
    for max_states in [4usize, 6, 8, 10] {
        let search = IntraLoopSearch::new(max_states, 9);
        bench_time(&format!("search/{max_states}-states"), || {
            search.search(&table)
        });
    }
    bench_time("antichain-enumeration-10", || IntraLoopSearch::new(10, 9));

    let exit_trace = periodic_trace(9, 50_000);
    let exit_tables = PatternTableSet::build(&exit_trace, HistoryKind::Local, 9);
    let exit_table = exit_tables.site(BranchId(0)).expect("site exists").clone();
    let outcomes: brepl_trace::PackedStream = exit_trace.iter().map(|e| e.taken).collect();
    bench_time("exit-machine-search-10", || {
        best_exit_machine(10, &exit_table, &outcomes)
    });

    // Two interleaved correlated branches.
    let mut corr = Trace::new();
    let mut x = 5u64;
    for _ in 0..25_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let d = x >> 30 & 1 == 1;
        corr.push(TraceEvent {
            site: BranchId(0),
            taken: d,
        });
        corr.push(TraceEvent {
            site: BranchId(1),
            taken: d ^ (x >> 31 & 1 == 1),
        });
    }
    let mut candidates: HashMap<BranchId, Vec<Vec<PathStep>>> = HashMap::new();
    candidates.insert(
        BranchId(1),
        vec![
            vec![PathStep {
                site: BranchId(0),
                taken: true,
            }],
            vec![PathStep {
                site: BranchId(0),
                taken: false,
            }],
        ],
    );

    println!("correlated (50k interleaved events)");
    bench_time("profile-paths", || profile_paths(&corr, &candidates));
    let profiles = profile_paths(&corr, &candidates);
    bench_time("greedy-select-4", || profiles[&BranchId(1)].select(4));
}
