//! Criterion benchmarks: end-to-end pipeline stages on one benchmark
//! program — interpretation/tracing throughput, strategy selection, and
//! the replication transform itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_core::{apply_plan, select_strategies};
use brepl_sim::{Machine, RunConfig};
use brepl_workloads::{workload_by_name, Scale};

fn bench_stages(c: &mut Criterion) {
    let w = workload_by_name("ghostview", Scale::Small).expect("workload exists");
    let outcome = w.run().expect("runs");
    let trace = outcome.trace;
    let stats = trace.stats();

    let mut group = c.benchmark_group("pipeline-stages");
    group.sample_size(20);

    group.throughput(Throughput::Elements(outcome.steps));
    group.bench_function("interpret-and-trace", |b| {
        b.iter(|| {
            let mut m = Machine::new(&w.module, RunConfig::default());
            m.set_input(w.input.clone());
            m.run("main", &w.args).expect("runs")
        })
    });

    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("select-strategies-4", |b| {
        b.iter(|| select_strategies(&w.module, &trace, 4))
    });

    let selection = select_strategies(&w.module, &trace, 4);
    let plan = selection.to_plan();
    group.bench_function("apply-plan", |b| {
        b.iter(|| apply_plan(&w.module, &plan, &stats).expect("applies"))
    });

    group.bench_function("full-pipeline", |b| {
        b.iter(|| {
            run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default())
                .expect("pipeline runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
