//! Benchmarks (std-only harness): end-to-end pipeline stages on one
//! benchmark program — interpretation/tracing throughput, strategy
//! selection (serial vs parallel vs memo-warm), and the replication
//! transform itself. Run with `cargo bench -p brepl-bench`.

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_bench::timing::{bench_throughput, bench_time};
use brepl_core::{apply_plan, select_strategies, select_strategies_with_threads};
use brepl_sim::{Machine, RunConfig};
use brepl_workloads::{workload_by_name, Scale};

fn main() {
    let w = workload_by_name("ghostview", Scale::Small).expect("workload exists");
    let outcome = w.run().expect("runs");
    let trace = outcome.trace;
    let stats = trace.stats();

    println!("pipeline-stages ({} trace events)", trace.len());
    bench_throughput("interpret-and-trace", outcome.steps, || {
        let mut m = Machine::new(&w.module, RunConfig::default()).unwrap();
        m.set_input(w.input.clone());
        m.run("main", &w.args).expect("runs")
    });

    // Selection three ways: cold serial, cold parallel, then memo-warm.
    // The memo is process-wide, so clear it before each cold sample.
    bench_throughput(
        "select-strategies-4 (serial, cold)",
        trace.len() as u64,
        || {
            brepl_core::memo::clear();
            select_strategies_with_threads(&w.module, &trace, 4, 1)
        },
    );
    bench_throughput(
        "select-strategies-4 (parallel, cold)",
        trace.len() as u64,
        || {
            brepl_core::memo::clear();
            select_strategies(&w.module, &trace, 4)
        },
    );
    brepl_core::memo::clear();
    let _warm = select_strategies(&w.module, &trace, 4);
    bench_throughput(
        "select-strategies-4 (memo-warm)",
        trace.len() as u64,
        || select_strategies(&w.module, &trace, 4),
    );

    let selection = select_strategies(&w.module, &trace, 4);
    let plan = selection.to_plan();
    bench_time("apply-plan", || {
        apply_plan(&w.module, &plan, &stats).expect("applies")
    });

    bench_time("full-pipeline", || {
        run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default())
            .expect("pipeline runs")
    });

    let (entries, hits) = brepl_core::memo::stats();
    println!("search memo: {entries} entries, {hits} hits");
}
