//! Benchmarks (std-only harness): predictor simulation throughput. The
//! paper notes its trace analysis runs "in a few seconds" on mid-90s
//! hardware; these benches document the events-per-second of each
//! strategy in this implementation.

use brepl_bench::timing::bench_throughput;
use brepl_predict::dynamic::{LastDirection, TwoBitCounters, TwoLevel};
use brepl_predict::semistatic::{loop_correlation_report, profile_report};
use brepl_predict::{simulate_dynamic, HistoryKind, PatternTableSet};
use brepl_workloads::{workload_by_name, Scale};

fn main() {
    let w = workload_by_name("compress", Scale::Small).expect("workload exists");
    let trace = w.run().expect("runs").trace;
    let events = trace.len() as u64;

    println!("predictors ({events} trace events)");
    bench_throughput("dynamic/last-direction", events, || {
        simulate_dynamic(&mut LastDirection::new(), &trace)
    });
    bench_throughput("dynamic/2bit-counter", events, || {
        simulate_dynamic(&mut TwoBitCounters::new(), &trace)
    });
    bench_throughput("dynamic/two-level-4k", events, || {
        simulate_dynamic(&mut TwoLevel::paper_4k(), &trace)
    });
    bench_throughput("semistatic/profile", events, || profile_report(&trace));
    bench_throughput("semistatic/loop-correlation", events, || {
        loop_correlation_report(&trace)
    });
    bench_throughput("tables/build-9bit-local", events, || {
        PatternTableSet::build(&trace, HistoryKind::Local, 9)
    });

    let bytes = trace.to_bytes();
    println!("trace-codec");
    bench_throughput("encode", events, || trace.to_bytes());
    bench_throughput("decode", events, || {
        brepl_trace::Trace::from_bytes(&bytes).expect("decodes")
    });
    println!(
        "trace compression: {} events -> {} bytes ({:.2} bytes/event)",
        trace.len(),
        bytes.len(),
        bytes.len() as f64 / trace.len() as f64
    );
}
