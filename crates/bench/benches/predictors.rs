//! Criterion benchmarks: predictor simulation throughput. The paper notes
//! its trace analysis runs "in a few seconds" on mid-90s hardware; these
//! benches document the events-per-second of each strategy in this
//! implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use brepl_predict::dynamic::{LastDirection, TwoBitCounters, TwoLevel};
use brepl_predict::semistatic::{loop_correlation_report, profile_report};
use brepl_predict::{simulate_dynamic, HistoryKind, PatternTableSet};
use brepl_workloads::{workload_by_name, Scale};

fn bench_predictors(c: &mut Criterion) {
    let w = workload_by_name("compress", Scale::Small).expect("workload exists");
    let trace = w.run().expect("runs").trace;
    let events = trace.len() as u64;

    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Elements(events));

    group.bench_function(BenchmarkId::new("dynamic", "last-direction"), |b| {
        b.iter(|| simulate_dynamic(&mut LastDirection::new(), &trace))
    });
    group.bench_function(BenchmarkId::new("dynamic", "2bit-counter"), |b| {
        b.iter(|| simulate_dynamic(&mut TwoBitCounters::new(), &trace))
    });
    group.bench_function(BenchmarkId::new("dynamic", "two-level-4k"), |b| {
        b.iter(|| simulate_dynamic(&mut TwoLevel::paper_4k(), &trace))
    });
    group.bench_function(BenchmarkId::new("semistatic", "profile"), |b| {
        b.iter(|| profile_report(&trace))
    });
    group.bench_function(BenchmarkId::new("semistatic", "loop-correlation"), |b| {
        b.iter(|| loop_correlation_report(&trace))
    });
    group.bench_function(BenchmarkId::new("tables", "build-9bit-local"), |b| {
        b.iter(|| PatternTableSet::build(&trace, HistoryKind::Local, 9))
    });
    group.finish();
}

fn bench_trace_codec(c: &mut Criterion) {
    let w = workload_by_name("compress", Scale::Small).expect("workload exists");
    let trace = w.run().expect("runs").trace;
    let bytes = trace.to_bytes();

    let mut group = c.benchmark_group("trace-codec");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("encode", |b| b.iter(|| trace.to_bytes()));
    group.bench_function("decode", |b| {
        b.iter(|| brepl_trace::Trace::from_bytes(&bytes).expect("decodes"))
    });
    group.finish();
    println!(
        "trace compression: {} events -> {} bytes ({:.2} bytes/event)",
        trace.len(),
        bytes.len(),
        bytes.len() as f64 / trace.len() as f64
    );
}

criterion_group!(benches, bench_predictors, bench_trace_codec);
criterion_main!(benches);
