//! Minimal hand-rolled JSON emission and parsing for the CI-facing bins.
//!
//! The workspace builds with zero external crates, so the `--json` output
//! of `validate`, `staticcheck`, `fuzz`, `chaos` and `simbench` is
//! assembled with this writer instead of serde, and `simbench --check`
//! reads the committed `BENCH_sim.json` trajectory back through the small
//! recursive-descent [`parse`] below. The schemas are flat enough that an
//! object builder plus an array joiner covers everything.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds one JSON object, field by field, in insertion order.
#[derive(Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a float field. Non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push(format!("\"{}\":{v}", escape(key)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a field whose value is already-rendered JSON (an object or
    /// array built elsewhere).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders already-JSON items as an array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Renders strings as an array of JSON string literals.
pub fn string_array(items: &[String]) -> String {
    let rendered: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    array(&rendered)
}

/// A parsed JSON value ([`parse`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a field up in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Total: any input yields `Ok` or a
/// position-tagged error message, never a panic.
///
/// # Errors
///
/// Returns `(byte offset, message)` on malformed input.
pub fn parse(text: &str) -> Result<Json, (usize, String)> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err((pos, "trailing data after JSON value".into()));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), (usize, String)> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err((*pos, format!("expected {lit:?}")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, (usize, String)> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err((*pos, "unexpected end of input".into())),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err((*pos, "expected ',' or ']'".into())),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err((*pos, "expected ',' or '}'".into())),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, (usize, String)> {
    if b.get(*pos) != Some(&b'"') {
        return Err((*pos, "expected string".into()));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err((*pos, "unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or((*pos, "bad \\u escape".to_string()))?;
                        // Surrogates and astral escapes are not needed by
                        // our own schemas; map unpaired surrogates to the
                        // replacement character rather than erroring.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err((*pos, "bad escape".into())),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(b.len());
                match std::str::from_utf8(&b[*pos..end]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err((*pos, "invalid UTF-8 in string".into())),
                }
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, (usize, String)> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or((start, "expected number".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_nesting() {
        let inner = Obj::new().str("msg", "a \"b\"\nc\\d").int("n", 3).build();
        let outer = Obj::new()
            .bool("ok", true)
            .num("pct", 1.5)
            .raw("items", &array(&[inner]))
            .build();
        assert_eq!(
            outer,
            r#"{"ok":true,"pct":1.5,"items":[{"msg":"a \"b\"\nc\\d","n":3}]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Obj::new().num("x", f64::NAN).build(), r#"{"x":null}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Obj::new()
            .str("label", "pr6 \"before\"\n")
            .num("seconds", 1.25)
            .int("events", 42)
            .bool("ok", true)
            .raw("stages", &array(&[Obj::new().num("s", 0.5).build()]))
            .build();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("pr6 \"before\"\n"));
        assert_eq!(v.get("seconds").unwrap().as_num(), Some(1.25));
        assert_eq!(v.get("events").unwrap().as_num(), Some(42.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        let stages = v.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages[0].get("s").unwrap().as_num(), Some(0.5));
    }

    #[test]
    fn parse_is_total_on_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "01x",
            "[}",
            "{]",
            "\"bad \\q escape\"",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Whitespace, nesting, escapes, negative/exponent numbers all parse.
        let v = parse(" { \"a\" : [ -1.5e2 , null , { } ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[0].as_num(),
            Some(-150.0)
        );
    }
}
