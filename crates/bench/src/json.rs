//! Minimal hand-rolled JSON emission for the CI-facing bins.
//!
//! The workspace builds with zero external crates, so the `--json` output
//! of `validate`, `staticcheck`, `fuzz` and `chaos` is assembled with
//! this writer instead of serde. It only ever *emits* JSON (no parsing),
//! and the schemas are flat enough that an object builder plus an array
//! joiner covers everything.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds one JSON object, field by field, in insertion order.
#[derive(Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a float field. Non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push(format!("\"{}\":{v}", escape(key)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a field whose value is already-rendered JSON (an object or
    /// array built elsewhere).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders already-JSON items as an array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Renders strings as an array of JSON string literals.
pub fn string_array(items: &[String]) -> String {
    let rendered: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    array(&rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_nesting() {
        let inner = Obj::new().str("msg", "a \"b\"\nc\\d").int("n", 3).build();
        let outer = Obj::new()
            .bool("ok", true)
            .num("pct", 1.5)
            .raw("items", &array(&[inner]))
            .build();
        assert_eq!(
            outer,
            r#"{"ok":true,"pct":1.5,"items":[{"msg":"a \"b\"\nc\\d","n":3}]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Obj::new().num("x", f64::NAN).build(), r#"{"x":null}"#);
    }
}
