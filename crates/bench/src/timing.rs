//! A dependency-free timing harness for the `[[bench]]` binaries.
//!
//! The workspace must build with zero network access, so the benches use
//! this std-only harness instead of criterion: warm up, run a fixed
//! minimum of timed iterations (more until a wall-clock floor is met),
//! and report min/median/mean. The statistics are intentionally simple —
//! these benches exist to track order-of-magnitude throughput and
//! regressions, not microsecond-level noise.

use std::time::{Duration, Instant};

/// Minimum timed iterations per benchmark.
const MIN_ITERS: u32 = 10;
/// Keep sampling until this much wall-clock time has accumulated.
const MIN_TOTAL: Duration = Duration::from_millis(250);

/// One benchmark's collected samples.
pub struct Samples {
    name: String,
    samples: Vec<Duration>,
}

impl Samples {
    /// Median sample.
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Duration {
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len().max(1) as u32
    }

    /// Prints `name  median (min .. mean)` plus an optional throughput
    /// line computed from `elements` per iteration.
    pub fn report(&self, elements: Option<u64>) {
        print!(
            "{:<44} {:>12} (min {:>12}, mean {:>12})",
            self.name,
            fmt_duration(self.median()),
            fmt_duration(self.min()),
            fmt_duration(self.mean()),
        );
        if let Some(n) = elements {
            let secs = self.median().as_secs_f64();
            if secs > 0.0 {
                print!("  {:>10.1} Melem/s", n as f64 / secs / 1e6);
            }
        }
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times `f`, discarding its result via [`std::hint::black_box`] so the
/// optimizer cannot delete the work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Samples {
    // Warmup: one untimed call (fills caches, triggers lazy init).
    std::hint::black_box(f());
    let mut samples = Vec::new();
    let started = Instant::now();
    let mut iters = 0u32;
    while iters < MIN_ITERS || started.elapsed() < MIN_TOTAL {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
        iters += 1;
        if iters >= 10_000 {
            break; // fast function: enough samples for a median
        }
    }
    Samples {
        name: name.to_string(),
        samples,
    }
}

/// [`bench()`] + immediate report with a throughput denominator.
pub fn bench_throughput<R>(name: &str, elements: u64, f: impl FnMut() -> R) {
    bench(name, f).report(Some(elements));
}

/// [`bench()`] + immediate time-only report.
pub fn bench_time<R>(name: &str, f: impl FnMut() -> R) {
    bench(name, f).report(None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_at_least_min_iters() {
        let s = bench("noop", || 1 + 1);
        assert!(s.samples.len() >= MIN_ITERS as usize);
        assert!(s.min() <= s.median());
    }
}
