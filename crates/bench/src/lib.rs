//! # brepl-bench — the experiment harness
//!
//! One binary per table/figure of the paper:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — misprediction of 8 strategies × 8 programs plus branch counts |
//! | `table2` | Table 2 — pattern-table fill rates, 1..9 history bits |
//! | `table3` | Table 3 — loop / loop-exit branches under state machines |
//! | `table4` | Table 4 — correlated branches under path machines |
//! | `table5` | Table 5 — best achievable misprediction, 2..10 states |
//! | `figures` | Figures 6–13 — misprediction vs code size per program |
//! | `headline` | the abstract's claim: misprediction nearly halved at ~1.3x size |
//!
//! Scale selection: set `BREPL_SCALE=full` for the paper-sized runs
//! (millions of branches; use `--release`); the default `small` finishes
//! in seconds even in debug builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod timing;

use brepl_trace::Trace;
use brepl_workloads::{all_workloads, Scale, Workload};

/// Reads the scale from `BREPL_SCALE` (`small` default, `full` opt-in).
pub fn scale_from_env() -> Scale {
    match std::env::var("BREPL_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Small,
    }
}

/// A workload together with its profiling trace.
pub struct ProfiledWorkload {
    /// The workload.
    pub workload: Workload,
    /// Its branch trace.
    pub trace: Trace,
    /// Instructions executed during profiling (for the Fisher-Freudenberger
    /// instructions-per-misprediction metric).
    pub steps: u64,
}

/// Runs the whole suite once and keeps the traces, reporting a failed
/// workload as a typed error instead of unwinding out of a worker.
///
/// The eight programs profile independently, so the runs fan out over
/// [`brepl_core::engine`] workers (`BREPL_THREADS` overrides the count);
/// results come back in suite order, bit-identical to a serial run. On
/// failure the error names every workload that did not run.
pub fn try_profile_suite(scale: Scale) -> Result<Vec<ProfiledWorkload>, String> {
    let workloads = all_workloads(scale);
    let profiled = brepl_core::par_map(&workloads, |workload| {
        workload
            .run()
            .map(|outcome| (outcome.trace, outcome.steps))
            .map_err(|e| format!("{} failed: {e}", workload.name))
    });
    let failures: Vec<&String> = profiled.iter().filter_map(|r| r.as_ref().err()).collect();
    if !failures.is_empty() {
        let mut msg = String::from("workload profiling failed: ");
        for (i, f) in failures.iter().enumerate() {
            if i > 0 {
                msg.push_str("; ");
            }
            msg.push_str(f);
        }
        return Err(msg);
    }
    Ok(workloads
        .into_iter()
        .zip(profiled)
        .map(|(workload, r)| {
            let (trace, steps) = r.expect("failures handled above");
            ProfiledWorkload {
                workload,
                trace,
                steps,
            }
        })
        .collect())
}

/// [`try_profile_suite`], exiting the process cleanly on failure — the
/// entry the table/figure bins use so a bad workload prints one error
/// line instead of aborting mid-table with a backtrace.
pub fn profile_suite(scale: Scale) -> Vec<ProfiledWorkload> {
    try_profile_suite(scale).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        std::process::exit(1);
    })
}

/// Renders one pipeline quarantine record as JSON — the shared schema the
/// `--json` modes of `validate`, `staticcheck` and `chaos` all emit:
/// `{"site":"b12","gate":"validation","codes":["BR006"],"reason":"…","round":1}`.
pub fn quarantine_json(q: &brepl::pipeline::QuarantinedSite) -> String {
    let codes: Vec<String> = q.codes.iter().map(|c| format!("{c}")).collect();
    json::Obj::new()
        .str("site", &format!("{}", q.site))
        .str("gate", q.gate.name())
        .raw("codes", &json::string_array(&codes))
        .str("reason", &q.reason)
        .int("round", q.round as u64)
        .build()
}

/// Short column headers in the paper's order.
pub const COLUMNS: [&str; 8] = [
    "abalone", "c-comp", "compress", "ghostv", "predict", "prolog", "schedul", "doduc",
];

/// Prints a row of percentages under the standard column layout.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:<24}");
    for v in values {
        print!(" {v:>8.2}");
    }
    println!();
}

/// Prints a row of integers under the standard column layout.
pub fn print_row_counts(label: &str, values: &[u64]) {
    print!("{label:<24}");
    for v in values {
        print!(" {v:>8}");
    }
    println!();
}

/// Prints the table header.
pub fn print_header(title: &str) {
    println!("{title}");
    print!("{:<24}", "");
    for c in COLUMNS {
        print!(" {c:>8}");
    }
    println!();
    println!("{}", "-".repeat(24 + 9 * COLUMNS.len()));
}
