//! Static translation validation over the whole suite: replicates every
//! workload with the default pipeline settings, then checks the simulation
//! relation between original and replicated module with
//! [`brepl_analysis::validate_replication`] and runs the warning lints.
//!
//! Prints one row per workload (blocks checked, error/warning counts,
//! validator wall time) and exits non-zero if any workload produces an
//! error-severity diagnostic — the CI gate for the replicator.
//!
//! With `--json` the same data is emitted as one machine-readable JSON
//! document on stdout (stable schema shared with `staticcheck --json`),
//! including any per-site quarantine records the pipeline produced.

use std::time::Instant;

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_analysis::{count_by_severity, lint_module, validate_replication};
use brepl_bench::{json, quarantine_json, scale_from_env};
use brepl_workloads::all_workloads;

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let scale = scale_from_env();
    if !json_mode {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>12}",
            "program", "blocks", "growth", "errors", "warns", "validate µs"
        );
        println!("{}", "-".repeat(62));
    }

    let mut total_errors = 0usize;
    let mut failed = false;
    let mut rows: Vec<String> = Vec::new();
    for w in all_workloads(scale) {
        // Validation runs inside the pipeline too; disable it there so the
        // timing below measures exactly one validator pass. The remaining
        // gates stay armed, so quarantine records can still appear.
        let config = PipelineConfig {
            validate: false,
            dynamic_backstop: false,
            ..PipelineConfig::default()
        };
        let r = match run_pipeline(&w.module, &w.args, &w.input, config) {
            Ok(r) => r,
            Err(e) => {
                if json_mode {
                    rows.push(
                        json::Obj::new()
                            .str("name", w.name)
                            .str("pipeline_error", &format!("{e}"))
                            .build(),
                    );
                } else {
                    println!("{:<12} PIPELINE FAILED: {e}", w.name);
                }
                failed = true;
                continue;
            }
        };

        let start = Instant::now();
        let mut diags = validate_replication(
            &w.module,
            &r.program.module,
            &r.program.replica_map,
            &r.program.predictions,
        );
        let micros = start.elapsed().as_micros();
        diags.extend(lint_module(&r.program.module));

        let (errors, warnings) = count_by_severity(&diags);
        total_errors += errors;
        let blocks: usize = r
            .program
            .module
            .iter_functions()
            .map(|(_, f)| f.blocks.len())
            .sum();
        if json_mode {
            let rendered: Vec<String> = diags.iter().map(|d| d.render(&r.program.module)).collect();
            let quarantined: Vec<String> = r.quarantined.iter().map(quarantine_json).collect();
            rows.push(
                json::Obj::new()
                    .str("name", w.name)
                    .int("blocks", blocks as u64)
                    .num("growth", r.size_growth)
                    .int("errors", errors as u64)
                    .int("warnings", warnings as u64)
                    .int("validate_us", micros as u64)
                    .raw("diags", &json::string_array(&rendered))
                    .raw("quarantined", &json::array(&quarantined))
                    .build(),
            );
        } else {
            println!(
                "{:<12} {:>8} {:>7.2}x {:>8} {:>8} {:>12}",
                w.name, blocks, r.size_growth, errors, warnings, micros
            );
            for d in &diags {
                println!("    {}", d.render(&r.program.module));
            }
        }
    }

    let ok = !failed && total_errors == 0;
    if json_mode {
        println!(
            "{}",
            json::Obj::new()
                .str("tool", "validate")
                .str(
                    "scale",
                    if scale == brepl_workloads::Scale::Full {
                        "full"
                    } else {
                        "small"
                    }
                )
                .bool("ok", ok)
                .int("total_errors", total_errors as u64)
                .raw("workloads", &json::array(&rows))
                .build()
        );
    } else {
        println!("{}", "-".repeat(62));
    }
    if !ok {
        if !json_mode {
            println!("FAIL: {total_errors} error-severity diagnostics");
        }
        std::process::exit(1);
    }
    if !json_mode {
        println!("OK: every workload passes static translation validation");
    }
}
