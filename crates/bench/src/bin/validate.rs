//! Static translation validation over the whole suite: replicates every
//! workload with the default pipeline settings, then checks the simulation
//! relation between original and replicated module with
//! [`brepl_analysis::validate_replication`] and runs the warning lints.
//!
//! Prints one row per workload (blocks checked, error/warning counts,
//! validator wall time) and exits non-zero if any workload produces an
//! error-severity diagnostic — the CI gate for the replicator.

use std::time::Instant;

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_analysis::{count_by_severity, lint_module, validate_replication};
use brepl_bench::scale_from_env;
use brepl_workloads::all_workloads;

fn main() {
    let scale = scale_from_env();
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "program", "blocks", "growth", "errors", "warns", "validate µs"
    );
    println!("{}", "-".repeat(62));

    let mut total_errors = 0usize;
    let mut failed = false;
    for w in all_workloads(scale) {
        // Validation runs inside the pipeline too; disable it there so the
        // timing below measures exactly one validator pass.
        let config = PipelineConfig {
            validate: false,
            dynamic_backstop: false,
            ..PipelineConfig::default()
        };
        let r = match run_pipeline(&w.module, &w.args, &w.input, config) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<12} PIPELINE FAILED: {e}", w.name);
                failed = true;
                continue;
            }
        };

        let start = Instant::now();
        let mut diags = validate_replication(
            &w.module,
            &r.program.module,
            &r.program.replica_map,
            &r.program.predictions,
        );
        let micros = start.elapsed().as_micros();
        diags.extend(lint_module(&r.program.module));

        let (errors, warnings) = count_by_severity(&diags);
        total_errors += errors;
        let blocks: usize = r
            .program
            .module
            .iter_functions()
            .map(|(_, f)| f.blocks.len())
            .sum();
        println!(
            "{:<12} {:>8} {:>7.2}x {:>8} {:>8} {:>12}",
            w.name, blocks, r.size_growth, errors, warnings, micros
        );
        for d in &diags {
            println!("    {}", d.render(&r.program.module));
        }
    }

    println!("{}", "-".repeat(62));
    if failed || total_errors > 0 {
        println!("FAIL: {total_errors} error-severity diagnostics");
        std::process::exit(1);
    }
    println!("OK: every workload passes static translation validation");
}
