//! Full chaos matrix (requires `--features chaos`): every workload ×
//! every fault-injection point × both modes.
//!
//! For each cell the bin scans a few seeds until the injection fires, then
//! checks the degradation contract:
//!
//! * **default mode** — the run returns `Ok`, the victim site is named in
//!   `PipelineResult::quarantined` and absent from `replicated_sites`, and
//!   the *shipped* program re-validates clean from scratch (zero
//!   error-severity diagnostics from the witness validator);
//! * **strict mode** — the run aborts with a typed `PipelineError`
//!   (never a panic, never a silently shipped program).
//!
//! Prints one row per cell, or one JSON document with `--json`, and exits
//! non-zero if any cell violates the contract.

use brepl::core::chaos::{ChaosConfig, ChaosPoint};
use brepl::pipeline::{run_pipeline, PipelineConfig, PipelineError, PipelineResult};
use brepl_analysis::{validate_replication, Severity};
use brepl_bench::{json, quarantine_json, scale_from_env};
use brepl_workloads::{all_workloads, Workload};

/// Seeds scanned per cell until the injection fires. Candidate mutations
/// are verified-effective, so the first seed almost always works; the scan
/// absorbs workloads where a particular victim has nothing to corrupt.
const SEED_SCAN: u64 = 8;

struct Cell {
    workload: &'static str,
    point: ChaosPoint,
    strict: bool,
    seed: Option<u64>,
    outcome: String,
    quarantined: Vec<String>,
    ok: bool,
}

/// Runs one cell; panics inside the pipeline are caught and reported as
/// contract violations.
fn run_cell(w: &Workload, point: ChaosPoint, strict: bool) -> Cell {
    let mut cell = Cell {
        workload: w.name,
        point,
        strict,
        seed: None,
        outcome: String::new(),
        quarantined: Vec::new(),
        ok: false,
    };
    for seed in 0..SEED_SCAN {
        let config = PipelineConfig {
            strict,
            chaos: Some(ChaosConfig { seed, point }),
            ..PipelineConfig::default()
        };
        let run = std::panic::catch_unwind(|| run_pipeline(&w.module, &w.args, &w.input, config));
        match run {
            Err(_) => {
                cell.seed = Some(seed);
                cell.outcome = "PANIC".to_string();
                return cell;
            }
            Ok(Ok(result)) => {
                if result.chaos_injection.is_none() {
                    continue; // injection did not fire; try the next seed
                }
                cell.seed = Some(seed);
                if strict {
                    cell.outcome = "strict run returned Ok after injection".to_string();
                } else {
                    (cell.ok, cell.outcome) = check_default(w, &result);
                    cell.quarantined = result.quarantined.iter().map(quarantine_json).collect();
                }
                return cell;
            }
            Ok(Err(e)) => {
                cell.seed = Some(seed);
                if strict {
                    let typed = matches!(
                        e,
                        PipelineError::Validation(_)
                            | PipelineError::History(_)
                            | PipelineError::Trace(_)
                            | PipelineError::Replicate(_)
                    );
                    cell.ok = typed;
                    cell.outcome = if typed {
                        format!("typed abort: {}", error_kind(&e))
                    } else {
                        format!("wrong error type: {e}")
                    };
                } else {
                    cell.outcome = format!("default mode errored: {e}");
                }
                return cell;
            }
        }
    }
    cell.outcome = format!("injection never fired in seeds 0..{SEED_SCAN}");
    cell
}

/// Default-mode contract: victim quarantined, not shipped, and the shipped
/// program re-validates clean from scratch.
fn check_default(w: &Workload, result: &PipelineResult) -> (bool, String) {
    let injection = result.chaos_injection.as_ref().unwrap();
    let victim = injection.victim;
    if !result.quarantined.iter().any(|q| q.site == victim) {
        return (false, format!("victim {victim} not quarantined"));
    }
    if result.replicated_sites.contains(&victim) {
        return (false, format!("quarantined victim {victim} still shipped"));
    }
    let p = &result.program;
    let diags = validate_replication(&w.module, &p.module, &p.replica_map, &p.predictions);
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    if errors > 0 {
        return (
            false,
            format!("shipped program fails re-validation ({errors} errors)"),
        );
    }
    if p.module.verify().is_err() {
        return (false, "shipped module fails IR verification".to_string());
    }
    (
        true,
        format!(
            "quarantined {victim} ({}), shipped program re-validates clean",
            injection.description
        ),
    )
}

fn error_kind(e: &PipelineError) -> &'static str {
    match e {
        PipelineError::Validation(_) => "validation",
        PipelineError::History(_) => "history",
        PipelineError::Trace(_) => "trace",
        PipelineError::Replicate(_) => "replicate",
        _ => "other",
    }
}

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let scale = scale_from_env();
    let workloads = all_workloads(scale);

    if !json_mode {
        println!(
            "{:<12} {:<24} {:<8} {:>4}  outcome",
            "program", "point", "mode", "seed"
        );
        println!("{}", "-".repeat(100));
    }

    let mut cells: Vec<Cell> = Vec::new();
    for w in &workloads {
        for point in ChaosPoint::ALL {
            for strict in [false, true] {
                let cell = run_cell(w, point, strict);
                if !json_mode {
                    println!(
                        "{:<12} {:<24} {:<8} {:>4}  {}{}",
                        cell.workload,
                        format!("{point}"),
                        if strict { "strict" } else { "default" },
                        cell.seed.map_or("-".to_string(), |s| s.to_string()),
                        if cell.ok { "" } else { "VIOLATION: " },
                        cell.outcome
                    );
                }
                cells.push(cell);
            }
        }
    }

    let violations = cells.iter().filter(|c| !c.ok).count();
    let ok = violations == 0;
    if json_mode {
        let rendered: Vec<String> = cells
            .iter()
            .map(|c| {
                let mut o = json::Obj::new()
                    .str("workload", c.workload)
                    .str("point", &format!("{}", c.point))
                    .str("mode", if c.strict { "strict" } else { "default" })
                    .bool("ok", c.ok)
                    .str("outcome", &c.outcome)
                    .raw("quarantined", &json::array(&c.quarantined));
                if let Some(seed) = c.seed {
                    o = o.int("seed", seed);
                }
                o.build()
            })
            .collect();
        println!(
            "{}",
            json::Obj::new()
                .str("tool", "chaos")
                .int("cells", cells.len() as u64)
                .int("violations", violations as u64)
                .bool("ok", ok)
                .raw("results", &json::array(&rendered))
                .build()
        );
    } else {
        println!("{}", "-".repeat(100));
        if ok {
            println!(
                "OK: {} cells (workload × point × mode) — every fault caught, \
                 quarantined in default mode, typed abort in strict mode",
                cells.len()
            );
        } else {
            println!("FAIL: {violations} contract violation(s)");
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
