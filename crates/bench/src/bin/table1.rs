//! Table 1: misprediction rates of the paper's eight strategies across the
//! eight benchmark programs, plus static/executed/improved branch counts.

use brepl_analysis::classify_module;
use brepl_bench::{print_header, print_row, print_row_counts, profile_suite, scale_from_env};
use brepl_predict::semistatic::combine_best;
use brepl_predict::stat::proof_guided::ProofGuided;
use brepl_predict::{evaluate_static, FusedAnalytics};

fn main() {
    let suite = profile_suite(scale_from_env());
    print_header("Table 1: misprediction rates in percent");

    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("last direction", vec![]),
        ("2 bit counter", vec![]),
        ("two level 4K bit", vec![]),
        ("profile", vec![]),
        ("1 bit correlation", vec![]),
        ("1 bit loop", vec![]),
        ("9 bit loop", vec![]),
        ("loop-correlation", vec![]),
        ("static (no profile)", vec![]),
    ];
    let mut static_branches = Vec::new();
    let mut executed_branches = Vec::new();
    let mut improved_branches = Vec::new();

    for p in &suite {
        let t = &p.trace;
        // Every trace-derived row comes out of one fused traversal: the
        // dynamic zoo, the profile closed form, the 1-bit global tables,
        // and the 9-bit local tables (the 1-bit loop row aggregates from
        // the latter instead of re-walking the trace).
        let fused = FusedAnalytics::run(t);
        rows[0].1.push(fused.last_direction.misprediction_percent());
        rows[1].1.push(fused.two_bit.misprediction_percent());
        rows[2].1.push(fused.two_level_4k.misprediction_percent());
        let profile = &fused.profile;
        rows[3].1.push(profile.misprediction_percent());
        let corr1 = fused.global1.report();
        rows[4].1.push(corr1.misprediction_percent());
        rows[5]
            .1
            .push(fused.local9.aggregated(1).report().misprediction_percent());
        let loop9 = fused.local9.report();
        rows[6].1.push(loop9.misprediction_percent());
        let lc = combine_best(&corr1, &loop9);
        rows[7].1.push(lc.misprediction_percent());
        // No-profile baseline: SCCP/interval proofs plus Ball–Larus-style
        // heuristics, never consulting the trace. Every profile-informed
        // row above should beat it — that gap is the price of going
        // profile-free.
        let cls = classify_module(&p.workload.module);
        let pg = ProofGuided::analyze(&p.workload.module, &cls.proved_sites());
        rows[8]
            .1
            .push(evaluate_static(pg.prediction(), t).misprediction_percent());

        static_branches.push(p.workload.module.branch_count() as u64);
        executed_branches.push(fused.stats.executed_sites() as u64);
        improved_branches.push(lc.improved_sites_vs(profile) as u64);
    }

    for (label, values) in &rows {
        print_row(label, values);
    }
    // Fisher & Freudenberger's preferred measure: average executed
    // instructions per mispredicted branch, for the best semi-static row.
    let ipm: Vec<f64> = suite
        .iter()
        .zip(&rows[7].1)
        .map(|(p, pct)| {
            let wrong = (pct / 100.0) * p.trace.len() as f64;
            if wrong < 0.5 {
                f64::INFINITY
            } else {
                p.steps as f64 / wrong
            }
        })
        .collect();
    print_row("insns/mispred (l-c)", &ipm);
    println!();
    print_row_counts("static branches", &static_branches);
    print_row_counts("executed branches", &executed_branches);
    print_row_counts("improved branches", &improved_branches);

    // The paper's qualitative claims, checked on the spot.
    let avg = |i: usize| -> f64 { rows[i].1.iter().sum::<f64>() / rows[i].1.len() as f64 };
    println!();
    println!(
        "averages: two-level {:.2}%  profile {:.2}%  loop-correlation {:.2}%  static {:.2}%",
        avg(2),
        avg(3),
        avg(7),
        avg(8)
    );
    println!(
        "loop-correlation recovers {:.0}% of the profile->ideal gap on average",
        100.0 * (avg(3) - avg(7)) / avg(3).max(1e-9)
    );
}
