//! The abstract's headline claim: "the misprediction rate can almost be
//! halved while the code size is increased by one third." Runs the full
//! profile → select → replicate → verify → re-measure pipeline on every
//! workload and prints before/after misprediction and size.

use brepl::pipeline::{run_pipeline_suite, PipelineConfig, PipelineJob};
use brepl_bench::scale_from_env;
use brepl_workloads::all_workloads;

fn main() {
    let scale = scale_from_env();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>8} {:>9}",
        "program", "events", "profile%", "replicated%", "size x", "improved"
    );
    println!("{}", "-".repeat(68));

    let mut profile_sum = 0.0;
    let mut replicated_sum = 0.0;
    let mut size_sum = 0.0;
    let mut count = 0usize;

    // Whole pipelines fan out over the engine's workers; results come
    // back in workload order, bit-identical to a serial loop.
    let workloads = all_workloads(scale);
    let jobs: Vec<PipelineJob> = workloads
        .iter()
        .map(|w| PipelineJob {
            module: &w.module,
            args: &w.args,
            input: &w.input,
        })
        .collect();
    let results = run_pipeline_suite(&jobs, PipelineConfig::default());

    for (w, result) in workloads.iter().zip(results) {
        match result {
            Ok(r) => {
                println!(
                    "{:<12} {:>10} {:>11.2}% {:>11.2}% {:>7.2}x {:>9}",
                    w.name,
                    r.trace_events,
                    r.profile_misprediction_percent,
                    r.replicated_misprediction_percent,
                    r.size_growth,
                    r.selection.improved_branches()
                );
                profile_sum += r.profile_misprediction_percent;
                replicated_sum += r.replicated_misprediction_percent;
                size_sum += r.size_growth;
                count += 1;
            }
            Err(e) => println!("{:<12} FAILED: {e}", w.name),
        }
    }

    if count > 0 {
        let n = count as f64;
        println!("{}", "-".repeat(68));
        println!(
            "{:<12} {:>10} {:>11.2}% {:>11.2}% {:>7.2}x",
            "average",
            "",
            profile_sum / n,
            replicated_sum / n,
            size_sum / n
        );
        println!(
            "\nmisprediction reduced by {:.0}% at {:.2}x average size \
             (paper: ~50% at ~1.33x)",
            100.0 * (profile_sum - replicated_sum) / profile_sum.max(1e-9),
            size_sum / n
        );
    }
}
