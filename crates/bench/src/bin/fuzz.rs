//! Release-scale differential fuzzing of the pipeline: deterministic
//! random loop programs through `run_pipeline` with every gate and the
//! dynamic backstop armed, asserting no panic and execution equivalence.
//!
//! The tier-1 test `tests/fuzz_pipeline.rs` runs a bounded slice of this
//! harness; this bin runs thousands of iterations in release mode and is
//! what the ≥1000-iteration acceptance run and the CI fuzz smoke use.
//!
//! Usage: `fuzz [--iters N] [--seed0 S] [--json]`
//!
//! Iteration `i` uses seed `seed0 + i`; the config cycles deterministically
//! through four variants (default, refine-off, strict, tight growth
//! budget), so any failure is reproducible from `(seed, variant)` alone.
//! Failures shrink automatically to a minimal `(seed, diamonds, trip)`
//! recipe for `brepl_workloads::synth::random_loop_module` and the bin
//! exits non-zero.

use std::time::Instant;

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_bench::json;
use brepl_workloads::synth::random_loop_module;

/// The deterministic config cycle (index = seed % 4), plus the
/// classification-soundness and estimator-totality oracles that run on
/// *every* iteration and report under the last two names.
const VARIANT_NAMES: [&str; 6] = [
    "default",
    "refine-off",
    "strict",
    "growth-budget-1.2",
    "classify-oracle",
    "estimate-oracle",
];

fn variant_config(idx: usize) -> PipelineConfig {
    match idx {
        1 => PipelineConfig {
            refine: false,
            ..PipelineConfig::default()
        },
        2 => PipelineConfig {
            strict: true,
            ..PipelineConfig::default()
        },
        3 => PipelineConfig {
            max_realized_growth: Some(1.2),
            ..PipelineConfig::default()
        },
        _ => PipelineConfig::default(),
    }
}

/// One fuzz case; `Err` describes the failure (panic text or typed error).
/// Success with the default/strict configs implies execution equivalence —
/// the dynamic backstop replayed original vs. replicated and they agreed.
fn pipeline_case(
    seed: u64,
    diamonds: usize,
    trip: i64,
    config: PipelineConfig,
) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(|| {
        let m = random_loop_module(seed, diamonds, trip);
        run_pipeline(&m, &[], &[], config)
    });
    match outcome {
        Err(payload) => Err(format!("panicked: {}", panic_text(&payload))),
        Ok(Err(e)) => Err(format!("pipeline error: {e}")),
        Ok(Ok(result)) => {
            if config.strict && !result.quarantined.is_empty() {
                Err("strict run returned quarantined sites".to_string())
            } else {
                Ok(())
            }
        }
    }
}

/// Classification-soundness oracle (variant name `classify-oracle`): the
/// same check as the tier-1 `fuzz_classification_is_sound` test, at
/// release scale — a proved verdict contradicted by the module's honest
/// simulated trace, an executed site proved unreachable, or any
/// error-severity diagnostic from the gate on an honest trace is an
/// analysis bug.
fn classify_case(seed: u64, diamonds: usize, trip: i64) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(|| {
        let m = random_loop_module(seed, diamonds, trip);
        let cls = brepl_analysis::classify_module(&m);
        let run = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .map_err(|e| format!("machine init: {e}"))?
            .run("main", &[])
            .map_err(|e| format!("run: {e}"))?;
        for ev in run.trace.iter() {
            if let Some(sc) = cls.by_site(ev.site) {
                if !sc.reachable {
                    return Err(format!("site {} proved unreachable but executed", ev.site));
                }
                if let Some(dir) = sc.class.proved_direction() {
                    if ev.taken != dir {
                        return Err(format!(
                            "site {} proved {} but the trace went the other way",
                            ev.site,
                            if dir { "always-taken" } else { "never-taken" },
                        ));
                    }
                }
            }
        }
        let diags = brepl_analysis::classification_diags(&m, &cls, &run.trace.stats());
        let errors: Vec<String> = diags
            .iter()
            .filter(|d| d.severity() == brepl_analysis::Severity::Error)
            .map(|d| d.render(&m))
            .collect();
        if !errors.is_empty() {
            return Err(format!(
                "honest trace fails the gate: {}",
                errors.join("; ")
            ));
        }
        Ok(())
    });
    match outcome {
        Err(payload) => Err(format!("panicked: {}", panic_text(&payload))),
        Ok(r) => r,
    }
}

/// Estimator-totality oracle (variant name `estimate-oracle`): the same
/// check as the tier-1 `fuzz_estimator_is_total_and_gate_silent_when_honest`
/// test, at release scale — the static profile estimator must never
/// panic, never emit a non-finite or negative frequency, always satisfy
/// its own flow-conservation invariant, and its drift gate
/// (`BR019`/`BR020`/`BR021`) must stay silent against the module's
/// honest trace. `BR022` fail-closed reports are the contract on
/// pathological flow and are tolerated.
fn estimate_case(seed: u64, diamonds: usize, trip: i64) -> Result<(), String> {
    use brepl_analysis::DiagCode;
    let outcome = std::panic::catch_unwind(|| {
        let m = random_loop_module(seed, diamonds, trip);
        let cls = brepl_analysis::classify_module(&m);
        let profile = brepl_analysis::estimate_profile(&m, &cls);
        for s in &profile.sites {
            if !s.freq.is_finite() || s.freq < 0.0 {
                return Err(format!("site {} has bogus frequency {}", s.site, s.freq));
            }
            let p = s.bias.prob();
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "site {} bias probability {p} outside [0,1]",
                    s.site
                ));
            }
        }
        if let Some((f, b, err)) = profile.check_conservation(&m).first() {
            return Err(format!("conservation violated at {f}/{b} by {err}"));
        }
        let run = brepl_sim::Machine::new(&m, brepl_sim::RunConfig::default())
            .map_err(|e| format!("machine init: {e}"))?
            .run("main", &[])
            .map_err(|e| format!("run: {e}"))?;
        let diags = brepl_analysis::static_profile_diags(&m, &cls, &profile, &run.trace.stats());
        let false_alarms: Vec<String> = diags
            .iter()
            .filter(|d| {
                matches!(
                    d.code,
                    DiagCode::EstimateDriftConflict
                        | DiagCode::EstimateUnreachableMass
                        | DiagCode::EstimateConservationViolation
                )
            })
            .map(|d| d.render(&m))
            .collect();
        if !false_alarms.is_empty() {
            return Err(format!(
                "honest trace fires the drift gate: {}",
                false_alarms.join("; ")
            ));
        }
        Ok(())
    });
    match outcome {
        Err(payload) => Err(format!("panicked: {}", panic_text(&payload))),
        Ok(r) => r,
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string payload>".to_string())
}

/// Greedily shrinks a failing case, reducing `diamonds` first (structure),
/// then halving `trip` (work), while the failure persists.
fn shrink(seed: u64, diamonds: usize, trip: i64, config: PipelineConfig) -> (usize, i64) {
    let (mut d, mut t) = (diamonds, trip);
    loop {
        if d > 0 && pipeline_case(seed, d - 1, t, config).is_err() {
            d -= 1;
        } else if t > 1 && pipeline_case(seed, d, t / 2, config).is_err() {
            t /= 2;
        } else {
            break;
        }
    }
    (d, t)
}

struct Failure {
    seed: u64,
    variant: usize,
    diamonds: usize,
    trip: i64,
    shrunk_diamonds: usize,
    shrunk_trip: i64,
    error: String,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_mode = args.iter().any(|a| a == "--json");
    let flag = |name: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let iters = flag("--iters").unwrap_or(1000);
    let seed0 = flag("--seed0").unwrap_or(0);

    let start = Instant::now();
    let mut failures: Vec<Failure> = Vec::new();
    for i in 0..iters {
        let seed = seed0 + i;
        let variant = (seed % 4) as usize;
        let config = variant_config(variant);
        let diamonds = (seed % 5) as usize;
        let trip = 20 + (seed % 7) as i64 * 20;
        if let Err(error) = pipeline_case(seed, diamonds, trip, config) {
            let (sd, st) = shrink(seed, diamonds, trip, config);
            if !json_mode {
                eprintln!(
                    "fuzz failure, minimal repro: seed={seed} diamonds={sd} trip={st} \
                     variant={} (random_loop_module(seed, diamonds, trip)); \
                     original failure: {error}",
                    VARIANT_NAMES[variant]
                );
            }
            failures.push(Failure {
                seed,
                variant,
                diamonds,
                trip,
                shrunk_diamonds: sd,
                shrunk_trip: st,
                error,
            });
        }
        // The classification-soundness oracle rides along on every
        // iteration — the pipeline's non-strict gate quarantines rather
        // than errors, so an unsound verdict needs its own check.
        if let Err(error) = classify_case(seed, diamonds, trip) {
            let (mut sd, mut st) = (diamonds, trip);
            loop {
                if sd > 0 && classify_case(seed, sd - 1, st).is_err() {
                    sd -= 1;
                } else if st > 1 && classify_case(seed, sd, st / 2).is_err() {
                    st /= 2;
                } else {
                    break;
                }
            }
            if !json_mode {
                eprintln!(
                    "classification unsound, minimal repro: seed={seed} diamonds={sd} \
                     trip={st} (random_loop_module(seed, diamonds, trip)); \
                     original failure: {error}"
                );
            }
            failures.push(Failure {
                seed,
                variant: 4,
                diamonds,
                trip,
                shrunk_diamonds: sd,
                shrunk_trip: st,
                error,
            });
        }
        // The estimator-totality oracle also rides along on every
        // iteration: the estimator is always-on in the pipeline, so a
        // panic or a drift-gate false alarm would poison every run.
        if let Err(error) = estimate_case(seed, diamonds, trip) {
            let (mut sd, mut st) = (diamonds, trip);
            loop {
                if sd > 0 && estimate_case(seed, sd - 1, st).is_err() {
                    sd -= 1;
                } else if st > 1 && estimate_case(seed, sd, st / 2).is_err() {
                    st /= 2;
                } else {
                    break;
                }
            }
            if !json_mode {
                eprintln!(
                    "estimator broken, minimal repro: seed={seed} diamonds={sd} \
                     trip={st} (random_loop_module(seed, diamonds, trip)); \
                     original failure: {error}"
                );
            }
            failures.push(Failure {
                seed,
                variant: 5,
                diamonds,
                trip,
                shrunk_diamonds: sd,
                shrunk_trip: st,
                error,
            });
        }
        if !json_mode && (i + 1) % 200 == 0 {
            eprintln!(
                "  {}/{iters} iterations, {} failure(s), {:.1}s",
                i + 1,
                failures.len(),
                start.elapsed().as_secs_f64()
            );
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    let ok = failures.is_empty();
    if json_mode {
        let rendered: Vec<String> = failures
            .iter()
            .map(|f| {
                json::Obj::new()
                    .int("seed", f.seed)
                    .str("variant", VARIANT_NAMES[f.variant])
                    .int("diamonds", f.diamonds as u64)
                    .int("trip", f.trip as u64)
                    .int("shrunk_diamonds", f.shrunk_diamonds as u64)
                    .int("shrunk_trip", f.shrunk_trip as u64)
                    .str("error", &f.error)
                    .build()
            })
            .collect();
        println!(
            "{}",
            json::Obj::new()
                .str("tool", "fuzz")
                .int("iters", iters)
                .int("seed0", seed0)
                .bool("ok", ok)
                .int("failures", failures.len() as u64)
                .num("elapsed_s", elapsed)
                .raw("failure_details", &json::array(&rendered))
                .build()
        );
    } else if ok {
        println!(
            "OK: {iters} fuzz iterations (seed0={seed0}, variants cycled \
             default/refine-off/strict/growth-budget), no panics, no pipeline \
             errors, execution equivalence held — {elapsed:.1}s"
        );
    } else {
        println!(
            "FAIL: {} of {iters} iterations failed ({elapsed:.1}s)",
            failures.len()
        );
    }
    if !ok {
        std::process::exit(1);
    }
}
