//! Cross-dataset sensitivity (the paper's "further work", after Fisher &
//! Freudenberger 1992): train the replication on one input dataset and
//! evaluate the frozen static predictions on another.
//!
//! Fisher & Freudenberger report 80–100% of the self-prediction quality
//! when profiles cross datasets; the paper conjectures that "code
//! replicated programs are more sensitive to different data sets than the
//! original program". This binary measures exactly that.

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl::predict::evaluate_static;
use brepl::sim::{Machine, RunConfig};
use brepl_bench::scale_from_env;
use brepl_workloads::{workload_by_name, workload_with_seed};

const NAMES: [&str; 8] = [
    "abalone",
    "c-compiler",
    "compress",
    "ghostview",
    "predict",
    "prolog",
    "scheduler",
    "doduc",
];

fn main() {
    let scale = scale_from_env();
    println!(
        "{:<12} {:>11} {:>11} {:>12} {:>12}",
        "program", "prof self%", "prof cross%", "repl self%", "repl cross%"
    );
    println!("{}", "-".repeat(62));

    // Each program's train/cross-evaluate cycle is independent; fan them
    // out over engine workers and print the rows in suite order.
    for line in brepl_core::par_map(&NAMES, |&name| crossdata_row(name, scale)) {
        println!("{line}");
    }
    println!();
    println!(
        "(repl cross > repl self confirms the paper's conjecture that replicated\n\
         programs are more dataset-sensitive; prof cross/self is the FF92 baseline)"
    );
}

/// Trains on `name`'s reference dataset, cross-evaluates on the seed-7
/// alternate, and returns the formatted table row (or a FAILED row).
fn crossdata_row(name: &str, scale: brepl_workloads::Scale) -> String {
    let train = workload_by_name(name, scale).expect("workload exists");
    let test = workload_with_seed(name, scale, 7).expect("workload exists");

    // Train: run the pipeline on the reference dataset.
    let result = match run_pipeline(
        &train.module,
        &train.args,
        &train.input,
        PipelineConfig::default(),
    ) {
        Ok(r) => r,
        Err(e) => return format!("{name:<12} FAILED: {e}"),
    };

    // Evaluate the frozen predictions on the alternate dataset: run the
    // *replicated* program on the test input.
    let mut m = Machine::new(&result.program.module, RunConfig::default()).unwrap();
    m.set_input(test.input.clone());
    let cross_trace = match m.run("main", &test.args) {
        Ok(o) => o.trace,
        Err(e) => return format!("{name:<12} cross run FAILED: {e}"),
    };
    let repl_cross =
        evaluate_static(&result.program.predictions, &cross_trace).misprediction_percent();

    // Baseline: profile predictions trained on A, evaluated on B, on
    // the *original* program.
    let train_trace = Machine::new(&train.module, RunConfig::default())
        .unwrap()
        .run_with_input(&train.input, &train.args);
    let test_trace = Machine::new(&train.module, RunConfig::default())
        .unwrap()
        .run_with_input(&test.input, &test.args);
    let profile_pred = brepl::predict::semistatic::profile_prediction(&train_trace.stats());
    let prof_self = evaluate_static(&profile_pred, &train_trace).misprediction_percent();
    let prof_cross = evaluate_static(&profile_pred, &test_trace).misprediction_percent();

    format!(
        "{name:<12} {prof_self:>10.2}% {prof_cross:>10.2}% {:>11.2}% {repl_cross:>11.2}%",
        result.replicated_misprediction_percent
    )
}

/// Small extension trait to run a machine with a given input in one call.
trait RunWithInput {
    fn run_with_input(
        self,
        input: &[brepl::ir::Value],
        args: &[brepl::ir::Value],
    ) -> brepl::trace::Trace;
}

impl RunWithInput for Machine<'_> {
    fn run_with_input(
        mut self,
        input: &[brepl::ir::Value],
        args: &[brepl::ir::Value],
    ) -> brepl::trace::Trace {
        self.set_input(input.to_vec());
        self.run("main", args).expect("workload runs").trace
    }
}
