//! Static profile estimation over the whole suite: runs the heuristic
//! frequency estimator ([`brepl_analysis::estimate_profile`]) on every
//! workload plus the closed-form `kmp` calibration program, compares
//! the estimated taken-biases against each workload's honest measured
//! trace ([`brepl_analysis::bias_error`]), and prices profile-free
//! planning by shipping each program twice — once planned from the real
//! profiling run (`run_pipeline`) and once planned purely from the
//! synthesized static profile (`run_pipeline_static`) — measuring both
//! on the same real input.
//!
//! Prints one row per workload — exact / heuristic site counts,
//! estimator wall time, mean absolute bias error, profile-planned vs
//! static-planned measured misprediction — and exits non-zero on a
//! diverged propagation, a conservation violation, any drift-gate
//! quarantine against honest data, or a pipeline failure.
//!
//! With `--json` the same data is emitted as one machine-readable JSON
//! document on stdout (schema style shared with `classify --json`).

use std::time::Instant;

use brepl::pipeline::{run_pipeline, run_pipeline_static, PipelineConfig};
use brepl_analysis::{bias_error, classify_module, estimate_profile};
use brepl_bench::{json, scale_from_env};
use brepl_core::memo;
use brepl_sim::{Machine, RunConfig};
use brepl_workloads::{all_workloads, workload_by_name, Workload};

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let scale = scale_from_env();
    if !json_mode {
        println!(
            "{:<12} {:>5} {:>5} {:>11} {:>9} {:>6} {:>10} {:>10}",
            "program", "exact", "heur", "estimate µs", "bias err", "sites", "profile %", "static %"
        );
        println!("{}", "-".repeat(76));
    }

    // The paper's eight programs plus the closed-form calibration
    // workload, which is deliberately outside `all_workloads`.
    let mut suite: Vec<Workload> = all_workloads(scale);
    suite.push(workload_by_name("kmp", scale).expect("kmp workload exists"));

    let mut failed = false;
    let mut rows: Vec<String> = Vec::new();
    for w in &suite {
        let mut machine = match Machine::new(&w.module, RunConfig::default()) {
            Ok(m) => m,
            Err(e) => {
                report_failure(&mut rows, json_mode, w.name, &format!("machine init: {e}"));
                failed = true;
                continue;
            }
        };
        machine.set_input(w.input.clone());
        let trace = match machine.run("main", &w.args) {
            Ok(outcome) => outcome.trace,
            Err(e) => {
                report_failure(&mut rows, json_mode, w.name, &format!("profile run: {e}"));
                failed = true;
                continue;
            }
        };
        let stats = trace.stats();

        let cls = classify_module(&w.module);
        let start = Instant::now();
        let profile = estimate_profile(&w.module, &cls);
        let estimate_us = start.elapsed().as_micros();
        let (exact, heuristic) = profile.counts();
        if !profile.converged() {
            report_failure(
                &mut rows,
                json_mode,
                w.name,
                "frequency propagation diverged",
            );
            failed = true;
            continue;
        }
        if !profile.check_conservation(&w.module).is_empty() {
            report_failure(&mut rows, json_mode, w.name, "flow conservation violated");
            failed = true;
            continue;
        }
        let (err, compared) = bias_error(&profile, &stats);

        // Ship twice from cold memos: profile-planned, then
        // static-planned with zero profiling runs. Both misprediction
        // numbers are measured on the same real input.
        memo::clear();
        let profiled = match run_pipeline(&w.module, &w.args, &w.input, PipelineConfig::default()) {
            Ok(r) => r,
            Err(e) => {
                report_failure(&mut rows, json_mode, w.name, &format!("pipeline: {e}"));
                failed = true;
                continue;
            }
        };
        memo::clear();
        let planned =
            match run_pipeline_static(&w.module, &w.args, &w.input, PipelineConfig::default()) {
                Ok(r) => r,
                Err(e) => {
                    report_failure(
                        &mut rows,
                        json_mode,
                        w.name,
                        &format!("static pipeline: {e}"),
                    );
                    failed = true;
                    continue;
                }
            };
        if !planned.quarantined.is_empty() {
            report_failure(
                &mut rows,
                json_mode,
                w.name,
                &format!(
                    "drift gate quarantined {} honest site(s)",
                    planned.quarantined.len()
                ),
            );
            failed = true;
            continue;
        }

        if json_mode {
            rows.push(
                json::Obj::new()
                    .str("name", w.name)
                    .int("sites_exact", exact as u64)
                    .int("sites_heuristic", heuristic as u64)
                    .bool("converged", profile.converged())
                    .int("estimate_us", estimate_us as u64)
                    .num("bias_mean_abs_error", err)
                    .int("sites_compared", compared as u64)
                    .num(
                        "profile_planned_mispredict_pct",
                        profiled.replicated_misprediction_percent,
                    )
                    .num(
                        "static_planned_mispredict_pct",
                        planned.replicated_misprediction_percent,
                    )
                    .int(
                        "static_replicated_sites",
                        planned.replicated_sites.len() as u64,
                    )
                    .build(),
            );
        } else {
            println!(
                "{:<12} {:>5} {:>5} {:>11} {:>9.4} {:>6} {:>10.3} {:>10.3}",
                w.name,
                exact,
                heuristic,
                estimate_us,
                err,
                compared,
                profiled.replicated_misprediction_percent,
                planned.replicated_misprediction_percent,
            );
        }
    }

    let ok = !failed;
    if json_mode {
        println!(
            "{}",
            json::Obj::new()
                .str("tool", "staticprofile")
                .str(
                    "scale",
                    if scale == brepl_workloads::Scale::Full {
                        "full"
                    } else {
                        "small"
                    }
                )
                .bool("ok", ok)
                .raw("workloads", &json::array(&rows))
                .build()
        );
    } else {
        println!("{}", "-".repeat(76));
    }
    if !ok {
        if !json_mode {
            println!("FAIL: estimator or profile-free planning broke on some workload");
        }
        std::process::exit(1);
    }
    if !json_mode {
        println!(
            "OK: every workload estimates cleanly and ships from the static profile \
             with zero profiling runs"
        );
    }
}

/// Records one failed workload, in whichever output mode is active.
fn report_failure(rows: &mut Vec<String>, json_mode: bool, name: &str, msg: &str) {
    if json_mode {
        rows.push(json::Obj::new().str("name", name).str("error", msg).build());
    } else {
        println!("{name:<12} ERROR: {msg}");
    }
}
