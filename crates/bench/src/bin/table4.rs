//! Table 4: misprediction under the *correlated branch* strategy — path
//! machines of 2..7 states — against the profile and ideal 1-bit global
//! correlation baselines. Path machines apply to every branch (§5 simply
//! picks whichever strategy wins); this table isolates how far paths alone
//! go and how little the path-set compaction loses.

use std::collections::HashMap;

use brepl_bench::{print_header, print_row, profile_suite, scale_from_env};
use brepl_cfg::{Cfg, ClassifiedBranches, DomTree, LoopForest, PredecessorPaths};
use brepl_core::correlated::profile_paths;
use brepl_ir::BranchId;
use brepl_predict::semistatic::correlation_report;

fn main() {
    let suite = profile_suite(scale_from_env());
    print_header("Table 4: misprediction of the correlated-branch strategy in percent");

    struct Prep {
        profile_pct: f64,
        corr1_pct: f64,
        per_n: Vec<f64>, // n = 2..=7
    }
    let mut preps = Vec::new();
    for p in &suite {
        // One CFG per function, built once and shared by the branch
        // classification and every machine size below — the per-n loop
        // used to rebuild a CFG per site per size.
        let module = &p.workload.module;
        let cfgs: Vec<Cfg> = module.iter_functions().map(|(_, f)| Cfg::new(f)).collect();
        let mut blocks: Vec<(BranchId, brepl_ir::FuncId, brepl_ir::BlockId)> = Vec::new();
        for (fid, func) in module.iter_functions() {
            let cfg = &cfgs[fid.index()];
            let dom = DomTree::new(cfg);
            let forest = LoopForest::new(cfg, &dom);
            for info in ClassifiedBranches::analyze(func, &forest).branches() {
                blocks.push((info.site, fid, info.block));
            }
        }

        let stats = p.trace.stats();
        let profile_pct = stats.profile_misprediction_percent();
        let corr1_pct = correlation_report(&p.trace, 1).misprediction_percent();

        // Path machines for n = 2..=7 ("a maximum path length of n for an
        // n state machine to keep the size of the replicated code small").
        let mut per_n = Vec::new();
        for n in 2..=7usize {
            let mut candidates: HashMap<BranchId, Vec<Vec<brepl_cfg::PathStep>>> = HashMap::new();
            for &(site, fid, bid) in &blocks {
                if stats.site(site).total() == 0 {
                    continue;
                }
                let func = module.function(fid);
                let paths = PredecessorPaths::enumerate(func, &cfgs[fid.index()], bid, n - 1);
                candidates.insert(site, paths.paths);
            }
            let profiles = profile_paths(&p.trace, &candidates);
            let (mut t, mut w) = (0u64, 0u64);
            for profile in profiles.values() {
                let r = profile.select(n);
                t += r.total;
                w += r.mispredictions();
            }
            per_n.push(if t == 0 {
                0.0
            } else {
                100.0 * w as f64 / t as f64
            });
        }

        preps.push(Prep {
            profile_pct,
            corr1_pct,
            per_n,
        });
    }

    print_row(
        "profile",
        &preps.iter().map(|p| p.profile_pct).collect::<Vec<_>>(),
    );
    print_row(
        "1 bit correlation",
        &preps.iter().map(|p| p.corr1_pct).collect::<Vec<_>>(),
    );
    for n in 2..=7usize {
        print_row(
            &format!("{n} states"),
            &preps.iter().map(|p| p.per_n[n - 2]).collect::<Vec<_>>(),
        );
    }
}
