//! Figures 6–13: misprediction rate versus code size, one curve per
//! benchmark, produced by greedily adding the state machine with the best
//! benefit-per-size ratio. Prints each curve and writes CSVs under
//! `target/figures/`.

use std::fs;
use std::io::Write as _;

use brepl_bench::{profile_suite, scale_from_env};
use brepl_core::greedy::greedy_curve_from_selection;
use brepl_core::select_strategies;

fn main() {
    let suite = profile_suite(scale_from_env());
    let out_dir = std::path::Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");

    println!("Figures 6-13: misprediction (%) vs code size (factor)");
    for p in &suite {
        let selection = select_strategies(&p.workload.module, &p.trace, 8);
        let curve =
            greedy_curve_from_selection(&p.workload.module, &selection, p.trace.len() as u64);

        println!("\n--- {} ---", p.workload.name);
        println!("{:>8}  {:>8}  {:>9}", "size", "mispred%", "machines");
        for pt in &curve.points {
            println!(
                "{:8.3}  {:8.3}  {:9}",
                pt.size_factor, pt.misprediction_percent, pt.machines_enabled
            );
        }
        // The paper's observation: most programs come close to the best
        // achievable within a 30% size increase.
        if let Some(at_1_3) = curve.at_size_budget(1.3) {
            println!(
                "at 1.3x size: {:.2}% (best on curve: {:.2}%)",
                at_1_3.misprediction_percent,
                curve.best_misprediction()
            );
        }

        let mut csv = String::from("size_factor,misprediction_percent,machines\n");
        for pt in &curve.points {
            csv.push_str(&format!(
                "{},{},{}\n",
                pt.size_factor, pt.misprediction_percent, pt.machines_enabled
            ));
        }
        let path = out_dir.join(format!("{}.csv", p.workload.name));
        let mut f = fs::File::create(&path).expect("create csv");
        f.write_all(csv.as_bytes()).expect("write csv");
        println!("(wrote {})", path.display());
    }
}
