//! Witness-independent static checking over the whole suite: replicates
//! every workload with the default pipeline settings, then
//!
//! * re-proves the history encoding with [`brepl_analysis::check_history`]
//!   (product of the replicated CFG with each planned machine's transition
//!   table — the replica-map witness is never consulted), and
//! * computes the static misprediction bound with
//!   [`brepl_analysis::static_cost`] (folding the profiling trace through
//!   the replicated control flow) next to the simulator-measured rate.
//!
//! Prints one row per workload (machine-controlled sites, static bound vs.
//! simulated misprediction, size growth, error/warning counts, checker wall
//! time) and exits non-zero on any error-severity diagnostic
//! (BR009/BR010/BR012), any cost-replay failure, or a bound below the
//! simulated rate — the CI gate behind the witness validator.
//!
//! With `--json` the same data is emitted as one machine-readable JSON
//! document on stdout (stable schema shared with `validate --json`),
//! including any per-site quarantine records the pipeline produced.

use std::time::Instant;

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_analysis::{check_history, count_by_severity, static_cost};
use brepl_bench::{json, quarantine_json, scale_from_env};
use brepl_sim::{Machine, RunConfig};
use brepl_workloads::all_workloads;

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let scale = scale_from_env();
    if !json_mode {
        println!(
            "{:<12} {:>6} {:>9} {:>9} {:>8} {:>7} {:>6} {:>10}",
            "program", "sites", "bound %", "sim %", "growth", "errors", "warns", "check µs"
        );
        println!("{}", "-".repeat(75));
    }

    let mut total_errors = 0usize;
    let mut failed = false;
    let mut rows: Vec<String> = Vec::new();
    let fail_row = |rows: &mut Vec<String>, name: &str, kind: &str, msg: String| {
        if json_mode {
            rows.push(json::Obj::new().str("name", name).str(kind, &msg).build());
        } else {
            println!(
                "{name:<12} {}: {msg}",
                kind.to_uppercase().replace('_', " ")
            );
        }
    };
    for w in all_workloads(scale) {
        // Both static gates run inside the pipeline too; disable them there
        // so the timing below measures exactly one checker pass.
        let config = PipelineConfig {
            validate: false,
            check_history: false,
            dynamic_backstop: false,
            ..PipelineConfig::default()
        };
        let r = match run_pipeline(&w.module, &w.args, &w.input, config) {
            Ok(r) => r,
            Err(e) => {
                fail_row(&mut rows, w.name, "pipeline_error", format!("{e}"));
                failed = true;
                continue;
            }
        };

        // The spec comes from the shipped plan — the transform's input.
        let plan = r
            .selection
            .to_plan_filtered(|site| r.replicated_sites.contains(&site));
        let spec = plan.history_spec();

        let start = Instant::now();
        let diags = check_history(
            &r.program.module,
            &r.program.provenance,
            &spec,
            &r.program.predictions,
        );
        let micros = start.elapsed().as_micros();
        let (errors, warnings) = count_by_severity(&diags);
        total_errors += errors;

        // Profile the original once more for the cost fold.
        let mut machine = Machine::new(&w.module, RunConfig::default()).unwrap();
        machine.set_input(w.input.clone());
        let trace = match machine.run("main", &w.args) {
            Ok(outcome) => outcome.trace,
            Err(e) => {
                fail_row(&mut rows, w.name, "profile_error", format!("{e}"));
                failed = true;
                continue;
            }
        };
        let report = match static_cost(
            &w.module,
            &r.program.module,
            &r.program.provenance,
            &r.program.predictions,
            &trace,
            "main",
        ) {
            Ok(report) => report,
            Err(e) => {
                fail_row(&mut rows, w.name, "cost_replay_error", format!("{e}"));
                failed = true;
                continue;
            }
        };

        let bound = report.bound_percent();
        let simulated = r.replicated_misprediction_percent;
        let bound_violated = bound + 1e-9 < simulated;
        if bound_violated {
            failed = true;
            if !json_mode {
                println!(
                    "{:<12} BOUND VIOLATED: static {bound:.4}% < simulated {simulated:.4}%",
                    w.name
                );
            }
        }
        if json_mode {
            let rendered: Vec<String> = diags.iter().map(|d| d.render(&r.program.module)).collect();
            let quarantined: Vec<String> = r.quarantined.iter().map(quarantine_json).collect();
            rows.push(
                json::Obj::new()
                    .str("name", w.name)
                    .int("sites", spec.len() as u64)
                    .num("bound_percent", bound)
                    .num("simulated_percent", simulated)
                    .bool("bound_violated", bound_violated)
                    .num("growth", r.size_growth)
                    .int("errors", errors as u64)
                    .int("warnings", warnings as u64)
                    .int("check_us", micros as u64)
                    .raw("diags", &json::string_array(&rendered))
                    .raw("quarantined", &json::array(&quarantined))
                    .build(),
            );
        } else {
            println!(
                "{:<12} {:>6} {:>8.3}% {:>8.3}% {:>7.2}x {:>7} {:>6} {:>10}",
                w.name,
                spec.len(),
                bound,
                simulated,
                r.size_growth,
                errors,
                warnings,
                micros
            );
            for d in &diags {
                println!("    {}", d.render(&r.program.module));
            }
        }
    }

    let ok = !failed && total_errors == 0;
    if json_mode {
        println!(
            "{}",
            json::Obj::new()
                .str("tool", "staticcheck")
                .str(
                    "scale",
                    if scale == brepl_workloads::Scale::Full {
                        "full"
                    } else {
                        "small"
                    }
                )
                .bool("ok", ok)
                .int("total_errors", total_errors as u64)
                .raw("workloads", &json::array(&rows))
                .build()
        );
    } else {
        println!("{}", "-".repeat(75));
    }
    if !ok {
        if !json_mode {
            println!("FAIL: {total_errors} error-severity diagnostics");
        }
        std::process::exit(1);
    }
    if !json_mode {
        println!("OK: every workload passes witness-independent history checking");
    }
}
