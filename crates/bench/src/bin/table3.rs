//! Table 3: misprediction of loop branches when the full pattern table is
//! replaced by an n-state machine. The paper groups a k-bit history with a
//! (k+1)-state machine to show how little accuracy the compaction loses;
//! intra-loop and loop-exit branches are reported separately.

use std::collections::HashSet;

use brepl_bench::{print_header, print_row, profile_suite, scale_from_env, ProfiledWorkload};
use brepl_cfg::{BranchClass, Cfg, ClassifiedBranches, DomTree, LoopForest};
use brepl_core::intra_loop::IntraLoopSearch;
use brepl_core::loop_exit::exit_machine_menu;
use brepl_ir::BranchId;
use brepl_predict::{HistoryKind, PatternTableSet};

struct Classified {
    intra: HashSet<BranchId>,
    exit: HashSet<BranchId>,
}

fn classify(p: &ProfiledWorkload) -> Classified {
    let mut intra = HashSet::new();
    let mut exit = HashSet::new();
    for (_, func) in p.workload.module.iter_functions() {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        for info in ClassifiedBranches::analyze(func, &forest).branches() {
            match info.class {
                BranchClass::IntraLoop => {
                    intra.insert(info.site);
                }
                BranchClass::LoopExit => {
                    exit.insert(info.site);
                }
                BranchClass::NonLoop => {}
            }
        }
    }
    Classified { intra, exit }
}

/// Misprediction % of the ideal k-bit local pattern table over a site set.
fn ideal_pct(trace: &brepl_trace::Trace, bits: u32, sites: &HashSet<BranchId>) -> f64 {
    let report = PatternTableSet::build(trace, HistoryKind::Local, bits).report();
    let (mut total, mut wrong) = (0u64, 0u64);
    for (site, t, w) in report.iter_sites() {
        if sites.contains(&site) {
            total += t;
            wrong += w;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * wrong as f64 / total as f64
    }
}

fn main() {
    let suite = profile_suite(scale_from_env());
    let classified: Vec<Classified> = suite.iter().map(classify).collect();

    // Outcome streams and tables per site, per program.
    struct Prep {
        tables: PatternTableSet,
        outcomes: Vec<brepl_trace::PackedStream>,
    }
    let preps: Vec<Prep> = suite
        .iter()
        .map(|p| {
            let tables = PatternTableSet::build(&p.trace, HistoryKind::Local, 9);
            let outcomes = brepl_trace::packed_site_streams(&p.trace, &p.trace.stats());
            Prep { tables, outcomes }
        })
        .collect();

    let search = IntraLoopSearch::new(10, 9);
    // Per-program, per-n results for intra machines: run the search once
    // per site and read out every n.
    let intra_by_n: Vec<Vec<f64>> = suite
        .iter()
        .zip(&classified)
        .zip(&preps)
        .map(|((_, c), prep)| {
            let mut totals = [0u64; 11];
            let mut wrongs = [0u64; 11];
            for &site in &c.intra {
                let Some(table) = prep.tables.site(site) else {
                    continue;
                };
                let per_n = search.search(table);
                for n in 2..=10 {
                    if let Some(r) = &per_n[n] {
                        totals[n] += r.total;
                        wrongs[n] += r.mispredictions();
                    }
                }
            }
            (2..=10)
                .map(|n| {
                    if totals[n] == 0 {
                        0.0
                    } else {
                        100.0 * wrongs[n] as f64 / totals[n] as f64
                    }
                })
                .collect()
        })
        .collect();

    let exit_by_n: Vec<Vec<f64>> = suite
        .iter()
        .zip(&classified)
        .zip(&preps)
        .map(|((_, c), prep)| {
            // One shared menu per site: entry n-2 equals the standalone
            // best_exit_machine(n, ..) result at every budget.
            let mut totals = [0u64; 11];
            let mut wrongs = [0u64; 11];
            for &site in &c.exit {
                let Some(table) = prep.tables.site(site) else {
                    continue;
                };
                let outs = &prep.outcomes[site.index()];
                for (r, n) in exit_machine_menu(10, table, outs).into_iter().zip(2..=10) {
                    totals[n] += r.total;
                    wrongs[n] += r.total - r.correct;
                }
            }
            (2..=10)
                .map(|n| {
                    if totals[n] == 0 {
                        0.0
                    } else {
                        100.0 * wrongs[n] as f64 / totals[n] as f64
                    }
                })
                .collect()
        })
        .collect();

    print_header("Table 3: misprediction of loop and loop-exit branches in percent");
    // Profile baselines per class.
    let profile_of = |class_idx: usize| -> (Vec<f64>, Vec<f64>) {
        let _ = class_idx;
        let mut intra = Vec::new();
        let mut exit = Vec::new();
        for (p, c) in suite.iter().zip(&classified) {
            let stats = p.trace.stats();
            let pct = |set: &HashSet<BranchId>| {
                let (mut t, mut w) = (0u64, 0u64);
                for (site, counts) in stats.iter_executed() {
                    if set.contains(&site) {
                        t += counts.total();
                        w += counts.minority_count();
                    }
                }
                if t == 0 {
                    0.0
                } else {
                    100.0 * w as f64 / t as f64
                }
            };
            intra.push(pct(&c.intra));
            exit.push(pct(&c.exit));
        }
        (intra, exit)
    };
    let (prof_intra, prof_exit) = profile_of(0);
    print_row("profile (intra)", &prof_intra);
    print_row("profile (exit)", &prof_exit);
    println!();

    for k in 1..=9u32 {
        let intra_ideal: Vec<f64> = suite
            .iter()
            .zip(&classified)
            .map(|(p, c)| ideal_pct(&p.trace, k, &c.intra))
            .collect();
        print_row(&format!("{k} bit ideal (intra)"), &intra_ideal);
        if k >= 1 && (k as usize) < 10 {
            let n = k as usize + 1;
            let row: Vec<f64> = intra_by_n.iter().map(|v| v[n - 2]).collect();
            print_row(&format!("{n} states (intra)"), &row);
            let row: Vec<f64> = exit_by_n.iter().map(|v| v[n - 2]).collect();
            print_row(&format!("{n} states (exit)"), &row);
        }
        println!();
    }
}
