//! Ablation study over the reproduction's own design choices:
//!
//! * **refinement** — the measure-and-back-off pass that drops machines
//!   whose profiled promise does not transfer to the replicated CFG;
//! * **size budget** — the greedy benefit-per-size cost function versus
//!   replicating every improving branch;
//! * **overfit threshold** — the minimum-gain guard on correlated path
//!   selection;
//! * **state budget** — 2 versus 4 versus 8 machine states.
//!
//! Each row reports suite-average replicated misprediction and size growth.

use brepl::pipeline::{run_pipeline, PipelineConfig};
use brepl_bench::scale_from_env;
use brepl_workloads::all_workloads;

struct Row {
    label: &'static str,
    config: PipelineConfig,
}

fn main() {
    let scale = scale_from_env();
    let base = PipelineConfig::default();
    let rows = vec![
        Row {
            label: "default (4 states, 3.0x budget, refine)",
            config: base,
        },
        Row {
            label: "no refinement",
            config: PipelineConfig {
                refine: false,
                ..base
            },
        },
        Row {
            label: "no size budget",
            config: PipelineConfig {
                max_size_growth: None,
                ..base
            },
        },
        Row {
            label: "tight budget (1.3x)",
            config: PipelineConfig {
                max_size_growth: Some(1.3),
                ..base
            },
        },
        Row {
            label: "2 states",
            config: PipelineConfig {
                max_states: 2,
                ..base
            },
        },
        Row {
            label: "8 states",
            config: PipelineConfig {
                max_states: 8,
                ..base
            },
        },
    ];

    println!(
        "{:<42} {:>10} {:>12} {:>8}",
        "configuration", "profile%", "replicated%", "size x"
    );
    println!("{}", "-".repeat(76));
    for row in rows {
        let mut profile_sum = 0.0;
        let mut repl_sum = 0.0;
        let mut size_sum = 0.0;
        let mut n = 0.0;
        // The eight workloads are independent; fan them out per config row.
        let workloads = all_workloads(scale);
        let results = brepl_core::par_map(&workloads, |w| {
            run_pipeline(&w.module, &w.args, &w.input, row.config)
        });
        for (w, result) in workloads.iter().zip(results) {
            match result {
                Ok(r) => {
                    profile_sum += r.profile_misprediction_percent;
                    repl_sum += r.replicated_misprediction_percent;
                    size_sum += r.size_growth;
                    n += 1.0;
                }
                Err(e) => eprintln!("{} under {:?}: {e}", w.name, row.label),
            }
        }
        if n > 0.0 {
            println!(
                "{:<42} {:>9.2}% {:>11.2}% {:>7.2}x",
                row.label,
                profile_sum / n,
                repl_sum / n,
                size_sum / n
            );
        }
    }
}
