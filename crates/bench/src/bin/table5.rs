//! Table 5: the best achievable misprediction rate when every branch gets
//! its best available strategy (profile / intra-loop / loop-exit /
//! correlated machine) with 2..10 states, code size ignored.

use brepl_bench::{print_header, print_row, profile_suite, scale_from_env};
use brepl_core::select_strategies;

fn main() {
    let suite = profile_suite(scale_from_env());
    print_header("Table 5: best achievable misprediction rates in percent");

    let profile_row: Vec<f64> = suite
        .iter()
        .map(|p| p.trace.stats().profile_misprediction_percent())
        .collect();
    print_row("profile", &profile_row);

    // The per-program searches fan out over engine workers; the search
    // memo carries shared sub-results across the 2..=10 sweep, so later
    // rows mostly hit the cache. Output order is identical to serial.
    let mut final_row = Vec::new();
    for n in 2..=10usize {
        let values: Vec<f64> = brepl_core::par_map(&suite, |p| {
            select_strategies(&p.workload.module, &p.trace, n).misprediction_percent()
        });
        print_row(&format!("{n} states"), &values);
        if n == 10 {
            final_row = values;
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "average: profile {:.2}% -> 10 states {:.2}% ({:.0}% of mispredictions removed)",
        avg(&profile_row),
        avg(&final_row),
        100.0 * (avg(&profile_row) - avg(&final_row)) / avg(&profile_row).max(1e-9)
    );
}
