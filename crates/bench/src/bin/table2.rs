//! Table 2: fill rate of the per-branch history pattern tables, in
//! percent, for history lengths 1..9 — the sparsity observation that makes
//! small state machines viable.

use brepl_bench::{print_header, print_row, profile_suite, scale_from_env};
use brepl_predict::{HistoryKind, PatternTableSet};

fn main() {
    let suite = profile_suite(scale_from_env());
    print_header("Table 2: fill rate of the history tables in percent");

    // One 9-bit build per workload; every shorter history row is a suffix
    // aggregation of it (exact — see `PatternTableSet::aggregated`), so
    // the whole table costs one trace walk per workload instead of nine.
    let full: Vec<PatternTableSet> = suite
        .iter()
        .map(|p| PatternTableSet::build(&p.trace, HistoryKind::Local, 9))
        .collect();
    for bits in 1..=9u32 {
        let values: Vec<f64> = full
            .iter()
            .map(|pts| pts.aggregated(bits).fill_rate_percent())
            .collect();
        print_row(&format!("{bits} bit history"), &values);
    }

    println!();
    println!(
        "(the paper reports 9-bit fill rates between 0.1 and 2 percent of the\n\
         512 possible patterns; regular branches touch only a handful)"
    );
}
