//! Table 2: fill rate of the per-branch history pattern tables, in
//! percent, for history lengths 1..9 — the sparsity observation that makes
//! small state machines viable.

use brepl_bench::{print_header, print_row, profile_suite, scale_from_env};
use brepl_predict::{HistoryKind, PatternTableSet};

fn main() {
    let suite = profile_suite(scale_from_env());
    print_header("Table 2: fill rate of the history tables in percent");

    for bits in 1..=9u32 {
        let values: Vec<f64> = suite
            .iter()
            .map(|p| PatternTableSet::build(&p.trace, HistoryKind::Local, bits).fill_rate_percent())
            .collect();
        print_row(&format!("{bits} bit history"), &values);
    }

    println!();
    println!(
        "(the paper reports 9-bit fill rates between 0.1 and 2 percent of the\n\
         512 possible patterns; regular branches touch only a handful)"
    );
}
