//! `respec` — drift-recovery scenarios for the runtime re-specialization
//! layer ([`brepl::pipeline::run_pipeline_adaptive`]).
//!
//! Runs five scenarios that cover every patch kind plus a stable
//! control, and prints one row per scenario: misprediction at plan time,
//! on the first post-drift segment *before* any patch lands, and on the
//! final segment after the surviving patches — next to the misprediction
//! of a full from-scratch re-plan on the post-drift distribution (the
//! bar the patched program is held to) and the patch-log outcome counts.
//!
//! | scenario | drift | expected recovery |
//! |----------|-------|-------------------|
//! | `kmp-swap` | text bias ¼ → ¾ | pin swaps on the stale sites |
//! | `kmp-reverse` | text bias ¾ → ¼ | the same swaps, other direction |
//! | `gate-demote` | alternating tape goes constant | machine demoted to a pin |
//! | `gate-reinflate` | …and the alternation returns | demoted machine re-inflated |
//! | `kmp-stable` | none (control) | zero patches, flat misprediction |
//!
//! Exits non-zero when any acceptance bar fails: a drift scenario whose
//! patched misprediction is not within 10% relative (plus half a point
//! absolute slack) of the re-plan, a patch log with rollbacks or
//! unresolved commits on honest drift, any `BR023`/`BR024` diagnostic or
//! quarantined site, or a control run that patched anything. The
//! adaptive layer's no-drift hot-path overhead — a segmented simulator
//! run against a plain run of the same module and tape — is reported
//! alongside; the `BENCH_sim.json` trajectory gate holds it under 5%.
//!
//! With `--json` the same data is emitted as one machine-readable JSON
//! document on stdout; the document is always re-parsed and
//! schema-checked in-process before the bin exits, so CI gets the schema
//! gate for free in either mode.

use std::time::Instant;

use brepl::pipeline::{run_pipeline, run_pipeline_adaptive, AdaptiveConfig, PipelineConfig};
use brepl_bench::{json, scale_from_env};
use brepl_core::{memo, PatchOutcome};
use brepl_ir::{Module, Value};
use brepl_workloads::kmp;
use brepl_workloads::synth::{gate_tape, input_gate_module, GatePattern};
use brepl_workloads::Scale;

/// One drift scenario: a module, a segmented tape (segment 0 plans, the
/// rest drift), and a fresh tape from the *final* segment's distribution
/// for the from-scratch re-plan baseline.
struct Scenario {
    name: &'static str,
    module: Module,
    segments: Vec<Vec<Value>>,
    replan_input: Vec<Value>,
    /// Control scenarios expect an empty patch log; drift scenarios
    /// expect at least one verified patch.
    expect_patches: bool,
}

fn scenarios(scale: Scale) -> Vec<Scenario> {
    let n = if scale == Scale::Full { 40_000 } else { 2_000 };
    vec![
        Scenario {
            name: "kmp-swap",
            module: kmp::drift_module(),
            segments: vec![
                kmp::biased_text(n, 7, 1, 4),
                kmp::biased_text(n, 8, 3, 4),
                kmp::biased_text(n, 9, 3, 4),
            ],
            replan_input: kmp::biased_text(n, 19, 3, 4),
            expect_patches: true,
        },
        Scenario {
            name: "kmp-reverse",
            module: kmp::drift_module(),
            segments: vec![
                kmp::biased_text(n, 27, 3, 4),
                kmp::biased_text(n, 28, 1, 4),
                kmp::biased_text(n, 29, 1, 4),
            ],
            replan_input: kmp::biased_text(n, 39, 1, 4),
            expect_patches: true,
        },
        Scenario {
            name: "gate-demote",
            module: input_gate_module(),
            segments: vec![
                gate_tape(n, GatePattern::Alternating),
                gate_tape(n, GatePattern::Constant(1)),
                gate_tape(n, GatePattern::Constant(1)),
            ],
            replan_input: gate_tape(n, GatePattern::Constant(1)),
            expect_patches: true,
        },
        Scenario {
            name: "gate-reinflate",
            module: input_gate_module(),
            segments: vec![
                gate_tape(n, GatePattern::Alternating),
                gate_tape(n, GatePattern::Constant(1)),
                gate_tape(n, GatePattern::Constant(1)),
                gate_tape(n, GatePattern::Alternating),
                gate_tape(n, GatePattern::Alternating),
            ],
            replan_input: gate_tape(n, GatePattern::Alternating),
            expect_patches: true,
        },
        Scenario {
            name: "kmp-stable",
            module: kmp::drift_module(),
            segments: vec![
                kmp::biased_text(n, 3, 1, 2),
                kmp::biased_text(n, 4, 1, 2),
                kmp::biased_text(n, 5, 1, 2),
            ],
            replan_input: kmp::biased_text(n, 15, 1, 2),
            expect_patches: false,
        },
    ]
}

/// One scenario's measured row.
struct Row {
    name: &'static str,
    plan_pct: f64,
    drifted_pct: f64,
    patched_pct: f64,
    replan_pct: f64,
    verified: usize,
    rolled_back: usize,
    rejected: usize,
    unresolved: usize,
    diags: usize,
    quarantined: usize,
    gate_cache_hits: usize,
    adaptive_s: f64,
    ok: bool,
    why: String,
}

fn run_scenario(s: &Scenario) -> Result<Row, String> {
    memo::clear();
    let start = Instant::now();
    let r = run_pipeline_adaptive(&s.module, &[], &s.segments, AdaptiveConfig::default())
        .map_err(|e| format!("{}: adaptive pipeline failed: {e}", s.name))?;
    let adaptive_s = start.elapsed().as_secs_f64();
    memo::clear();
    let replan = run_pipeline(&s.module, &[], &s.replan_input, PipelineConfig::default())
        .map_err(|e| format!("{}: re-plan baseline failed: {e}", s.name))?;

    let plan_pct = r.segments.first().map_or(0.0, |m| m.misprediction_percent);
    let drifted_pct = r
        .segments
        .get(1)
        .map_or(plan_pct, |m| m.misprediction_percent);
    let patched_pct = r
        .segments
        .last()
        .map_or(plan_pct, |m| m.misprediction_percent);
    let replan_pct = replan.replicated_misprediction_percent;

    let count = |o: PatchOutcome| r.patch_log.iter().filter(|p| p.outcome == o).count();
    let verified = count(PatchOutcome::Verified);
    let rolled_back = count(PatchOutcome::RolledBack);
    let rejected = count(PatchOutcome::RejectedByGate) + count(PatchOutcome::RejectedByPolicy);
    let unresolved = count(PatchOutcome::Committed);

    // Acceptance bars. Honest drift must land within 10% relative of
    // the from-scratch re-plan (half a point of absolute slack keeps
    // near-zero targets meaningful), every commit must resolve, and the
    // respec layer must finish with a clean bill: no rollbacks, no
    // diagnostics, no quarantine. The control must not patch at all.
    let mut why = String::new();
    let fail = |msg: String, why: &mut String| {
        if !why.is_empty() {
            why.push_str("; ");
        }
        why.push_str(&msg);
    };
    if s.expect_patches {
        if verified == 0 {
            fail("no patch survived verification".to_string(), &mut why);
        }
        if patched_pct > replan_pct * 1.10 + 0.5 {
            fail(
                format!("patched {patched_pct:.2}% not within 10% of re-plan {replan_pct:.2}%"),
                &mut why,
            );
        }
    } else if !r.patch_log.is_empty() {
        fail(
            format!("control run patched {} time(s)", r.patch_log.len()),
            &mut why,
        );
    }
    if rolled_back + rejected + unresolved > 0 {
        fail(
            format!(
                "patch log not clean: {rolled_back} rolled back, {rejected} rejected, \
                 {unresolved} unresolved"
            ),
            &mut why,
        );
    }
    if !r.respec_diags.is_empty() {
        fail(
            format!("{} respec diagnostic(s)", r.respec_diags.len()),
            &mut why,
        );
    }
    if !r.quarantined_sites.is_empty() {
        fail(
            format!("{} quarantined site(s)", r.quarantined_sites.len()),
            &mut why,
        );
    }

    Ok(Row {
        name: s.name,
        plan_pct,
        drifted_pct,
        patched_pct,
        replan_pct,
        verified,
        rolled_back,
        rejected,
        unresolved,
        diags: r.respec_diags.len(),
        quarantined: r.quarantined_sites.len(),
        gate_cache_hits: r.gate_cache_hits,
        adaptive_s,
        ok: why.is_empty(),
        why,
    })
}

/// The adaptive layer's standing cost on the hot path: a segmented run
/// ([`brepl_sim::Machine::run_segmented`], which marks segment
/// boundaries as the tape drains) against a plain run of the *same*
/// module over the *same* tape. Best-of-R de-noises both sides; this is
/// the number the `BENCH_sim.json` trajectory holds under 5%.
fn no_drift_overhead(scale: Scale) -> (f64, f64, f64) {
    use brepl_sim::{Machine, RunConfig};
    let n = if scale == Scale::Full { 40_000 } else { 2_000 };
    let module = kmp::drift_module();
    let segments: Vec<Vec<Value>> = (0..3u64)
        .map(|k| kmp::biased_text(n, 50 + k, 1, 2))
        .collect();
    let flat: Vec<Value> = segments.concat();
    let mut bounds = Vec::new();
    let mut acc = 0usize;
    for seg in &segments {
        acc += seg.len();
        bounds.push(acc);
    }
    let reps = 5;
    let mut plain_s = f64::INFINITY;
    let mut segmented_s = f64::INFINITY;
    for _ in 0..reps {
        let mut m = Machine::new(&module, RunConfig::default()).expect("machine");
        m.set_input(flat.clone());
        let t = Instant::now();
        m.run("main", &[]).expect("plain run");
        plain_s = plain_s.min(t.elapsed().as_secs_f64());

        let mut m = Machine::new(&module, RunConfig::default()).expect("machine");
        m.set_input(flat.clone());
        let t = Instant::now();
        m.run_segmented("main", &[], &bounds)
            .expect("segmented run");
        segmented_s = segmented_s.min(t.elapsed().as_secs_f64());
    }
    let overhead_pct = if plain_s > 0.0 {
        100.0 * (segmented_s - plain_s) / plain_s
    } else {
        0.0
    };
    (plain_s, segmented_s, overhead_pct)
}

/// Validates the emitted document's schema; the bin gates its own
/// output so CI needs no external JSON tooling.
fn check_schema(doc: &str) -> Result<(), String> {
    let parsed = json::parse(doc).map_err(|(at, msg)| format!("byte {at}: {msg}"))?;
    for key in ["tool", "scale", "ok", "scenarios", "overhead"] {
        if parsed.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    let scenarios = parsed
        .get("scenarios")
        .and_then(|s| s.as_arr())
        .ok_or("scenarios is not an array")?;
    if scenarios.is_empty() {
        return Err("scenarios is empty".to_string());
    }
    for (i, s) in scenarios.iter().enumerate() {
        for key in [
            "name",
            "plan_pct",
            "drifted_pct",
            "patched_pct",
            "replan_pct",
            "verified",
            "rolled_back",
            "ok",
        ] {
            if s.get(key).is_none() {
                return Err(format!("scenario {i}: missing key {key:?}"));
            }
        }
    }
    let overhead = parsed.get("overhead").ok_or("missing overhead")?;
    for key in ["plain_run_s", "segmented_run_s", "overhead_pct"] {
        if overhead.get(key).is_none() {
            return Err(format!("overhead: missing key {key:?}"));
        }
    }
    Ok(())
}

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let scale = scale_from_env();

    let mut rows = Vec::new();
    let mut failed = false;
    for s in scenarios(scale) {
        match run_scenario(&s) {
            Ok(row) => {
                failed |= !row.ok;
                rows.push(row);
            }
            Err(msg) => {
                eprintln!("respec: {msg}");
                failed = true;
            }
        }
    }
    let (plain_run_s, segmented_run_s, overhead_pct) = no_drift_overhead(scale);

    let scenario_json: Vec<String> = rows
        .iter()
        .map(|r| {
            json::Obj::new()
                .str("name", r.name)
                .num("plan_pct", r.plan_pct)
                .num("drifted_pct", r.drifted_pct)
                .num("patched_pct", r.patched_pct)
                .num("replan_pct", r.replan_pct)
                .int("verified", r.verified as u64)
                .int("rolled_back", r.rolled_back as u64)
                .int("rejected", r.rejected as u64)
                .int("unresolved", r.unresolved as u64)
                .int("diags", r.diags as u64)
                .int("quarantined", r.quarantined as u64)
                .int("gate_cache_hits", r.gate_cache_hits as u64)
                .num("adaptive_s", r.adaptive_s)
                .bool("ok", r.ok)
                .str("why", &r.why)
                .build()
        })
        .collect();
    let doc = json::Obj::new()
        .str("tool", "respec")
        .str(
            "scale",
            if scale == Scale::Full {
                "full"
            } else {
                "small"
            },
        )
        .bool("ok", !failed)
        .raw("scenarios", &json::array(&scenario_json))
        .raw(
            "overhead",
            &json::Obj::new()
                .num("plain_run_s", plain_run_s)
                .num("segmented_run_s", segmented_run_s)
                .num("overhead_pct", overhead_pct)
                .build(),
        )
        .build();

    if let Err(msg) = check_schema(&doc) {
        eprintln!("respec: emitted JSON fails its own schema: {msg}");
        std::process::exit(1);
    }

    if json_mode {
        println!("{doc}");
    } else {
        println!(
            "{:<15} {:>8} {:>9} {:>9} {:>9} {:>4} {:>5} {:>6}  status",
            "scenario", "plan %", "drift %", "patch %", "replan %", "ok'd", "roll", "cache"
        );
        println!("{}", "-".repeat(84));
        for r in &rows {
            println!(
                "{:<15} {:>8.3} {:>9.3} {:>9.3} {:>9.3} {:>4} {:>5} {:>6}  {}",
                r.name,
                r.plan_pct,
                r.drifted_pct,
                r.patched_pct,
                r.replan_pct,
                r.verified,
                r.rolled_back,
                r.gate_cache_hits,
                if r.ok { "ok" } else { &r.why }
            );
        }
        println!("{}", "-".repeat(84));
        println!(
            "no-drift simulator overhead: plain run {plain_run_s:.4}s, segmented run \
             {segmented_run_s:.4}s ({overhead_pct:+.1}%)"
        );
        if failed {
            println!("FAIL: a drift scenario missed its acceptance bar");
        } else {
            println!(
                "OK: every drift recovers within 10% of a from-scratch re-plan, \
                 the control never patches"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
