//! `simbench` — the simulator / pipeline performance trajectory.
//!
//! Times every stage of the trace-driven evaluation per workload — module
//! build, the profiling interpretation itself, per-site stats, pattern
//! tables, static-prediction replay, strategy selection and the full
//! pipeline — and records the numbers as one entry of the committed
//! `BENCH_sim.json` trajectory, so re-anchors can see the perf curve
//! instead of re-deriving it from prose.
//!
//! Stages are timed in a fixed order within one process, so later stages
//! benefit from process-wide memo warm-up exactly as real sweeps do.
//!
//! ```text
//! simbench                       # human-readable table
//! simbench --json                # print one trajectory entry to stdout
//! simbench --label pr6-after --append BENCH_sim.json
//!                                # append this run to the trajectory
//! simbench --check BENCH_sim.json [--max-regress 25]
//!                                # validate the trajectory schema and fail
//!                                # if this run regresses the suite total
//!                                # by more than the threshold vs. the
//!                                # latest committed entry at this scale
//! ```
//!
//! `--check` runs before `--append`, so combining them gates against the
//! *committed* baseline and records the new entry only when it passes.
//!
//! Scale comes from `BREPL_SCALE` (`small` default, `full` for the
//! paper-sized runs).

use std::time::Instant;

use brepl::pipeline::{run_pipeline_profiled, PipelineConfig};
use brepl_bench::json::{self, Json};
use brepl_predict::{evaluate_static, HistoryKind, PatternTableSet, StaticPrediction};
use brepl_workloads::{workload_by_name, Scale};

/// Counting global allocator (feature `alloc-stats`): every allocation
/// bumps two relaxed atomics, so each stage's allocation count can be
/// reported next to its wall time. Never enabled for the committed
/// trajectory entries — the counters themselves cost a few percent.
#[cfg(feature = "alloc-stats")]
mod alloc_stats {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: every method delegates directly to `System` with unchanged
    // arguments; the atomic bookkeeping has no effect on the returned
    // memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;

    /// Allocations made by this process so far.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Allocation counter read; zero when the feature is off so the deltas
/// stay zero and the columns are suppressed.
fn allocations() -> u64 {
    #[cfg(feature = "alloc-stats")]
    {
        alloc_stats::allocations()
    }
    #[cfg(not(feature = "alloc-stats"))]
    {
        0
    }
}

const HAVE_ALLOC_STATS: bool = cfg!(feature = "alloc-stats");

/// The stage names, in measurement order. Keep in sync with `measure`.
const STAGES: [&str; 7] = [
    "build", "profile", "stats", "tables", "eval", "select", "pipeline",
];

/// Full workload names, in the paper's column order.
const WORKLOADS: [&str; 8] = [
    "abalone",
    "c-compiler",
    "compress",
    "ghostview",
    "predict",
    "prolog",
    "scheduler",
    "doduc",
];

const SCHEMA: &str = "brepl-sim-bench/1";

struct WorkloadSample {
    name: &'static str,
    events: u64,
    steps: u64,
    /// Seconds per stage, indexed like [`STAGES`].
    stages: [f64; STAGES.len()],
    /// Allocations per stage (all zero unless feature `alloc-stats`).
    allocs: [u64; STAGES.len()],
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64, u64) {
    let a0 = allocations();
    let t = Instant::now();
    let r = f();
    let dt = t.elapsed().as_secs_f64();
    (r, dt, allocations() - a0)
}

fn measure(name: &'static str, scale: Scale) -> Result<WorkloadSample, String> {
    let mut stages = [0.0f64; STAGES.len()];
    let mut allocs = [0u64; STAGES.len()];

    let (w, t_build, a_build) = timed(|| workload_by_name(name, scale));
    let w = w.ok_or_else(|| format!("{name}: unknown workload"))?;
    (stages[0], allocs[0]) = (t_build, a_build);

    let (profiled, t_profile, a_profile) = timed(|| w.run_with_output());
    let (outcome, output) = profiled.map_err(|e| format!("{name}: {e}"))?;
    (stages[1], allocs[1]) = (t_profile, a_profile);

    let (stats, t_stats, a_stats) = timed(|| outcome.trace.stats());
    (stages[2], allocs[2]) = (t_stats, a_stats);

    let (_tables, t_tables, a_tables) =
        timed(|| PatternTableSet::build(&outcome.trace, HistoryKind::Local, 9));
    (stages[3], allocs[3]) = (t_tables, a_tables);

    let mut prediction = StaticPrediction::with_default(true);
    for (site, counts) in stats.iter_executed() {
        prediction.set(site, counts.majority());
    }
    let (_report, t_eval, a_eval) = timed(|| evaluate_static(&prediction, &outcome.trace));
    (stages[4], allocs[4]) = (t_eval, a_eval);

    let (_selection, t_select, a_select) =
        timed(|| brepl_core::select_strategies(&w.module, &outcome.trace, 4));
    (stages[5], allocs[5]) = (t_select, a_select);

    // The pipeline stage feeds on the profiling run already measured
    // above — deterministic execution makes re-profiling pure waste, and
    // real sweeps share the run the same way.
    let (result, t_pipeline, a_pipeline) = timed(|| {
        run_pipeline_profiled(
            &w.module,
            &w.args,
            &w.input,
            &outcome,
            &output,
            PipelineConfig::default(),
        )
    });
    result.map_err(|e| format!("{name}: pipeline failed: {e}"))?;
    (stages[6], allocs[6]) = (t_pipeline, a_pipeline);

    Ok(WorkloadSample {
        name,
        events: outcome.trace.len() as u64,
        steps: outcome.steps,
        stages,
        allocs,
    })
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "full",
        Scale::Small => "small",
    }
}

fn entry_json(label: &str, scale: Scale, samples: &[WorkloadSample], suite_seconds: f64) -> String {
    let workloads: Vec<String> = samples
        .iter()
        .map(|s| {
            let mut stages = json::Obj::new();
            for (i, name) in STAGES.iter().enumerate() {
                stages = stages.num(name, s.stages[i]);
            }
            let mut obj = json::Obj::new()
                .str("name", s.name)
                .int("events", s.events)
                .int("steps", s.steps)
                .raw("stages", &stages.build());
            // Allocation counts ride along only when measured; the
            // trajectory schema treats the key as optional, so entries
            // recorded without the feature stay valid.
            if HAVE_ALLOC_STATS {
                let mut allocs = json::Obj::new();
                for (i, name) in STAGES.iter().enumerate() {
                    allocs = allocs.int(name, s.allocs[i]);
                }
                obj = obj.raw("allocs", &allocs.build());
            }
            obj.build()
        })
        .collect();
    json::Obj::new()
        .str("label", label)
        .str("scale", scale_name(scale))
        .int("threads", brepl_core::engine::thread_count() as u64)
        .num("suite_seconds", suite_seconds)
        .raw("workloads", &json::array(&workloads))
        .build()
}

/// Validates the trajectory document's schema; returns the entries.
fn validate_trajectory(doc: &Json) -> Result<&[Json], String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema field missing or not {SCHEMA:?}"));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("entries array missing")?;
    for (i, e) in entries.iter().enumerate() {
        let ctx = |what: &str| format!("entry {i}: {what}");
        e.get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("label missing"))?;
        let scale = e
            .get("scale")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("scale missing"))?;
        if scale != "full" && scale != "small" {
            return Err(ctx("scale must be \"full\" or \"small\""));
        }
        e.get("suite_seconds")
            .and_then(Json::as_num)
            .filter(|s| s.is_finite() && *s >= 0.0)
            .ok_or_else(|| ctx("suite_seconds missing or negative"))?;
        let workloads = e
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| ctx("workloads array missing"))?;
        for w in workloads {
            let name = w
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ctx("workload name missing"))?;
            w.get("events")
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(&format!("{name}: events missing")))?;
            let stages = w
                .get("stages")
                .ok_or_else(|| ctx(&format!("{name}: stages missing")))?;
            for s in STAGES {
                stages
                    .get(s)
                    .and_then(Json::as_num)
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| ctx(&format!("{name}: stage {s:?} missing")))?;
            }
        }
    }
    Ok(entries)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("run");
    let mut print_json = false;
    let mut append: Option<String> = None;
    let mut check: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut file = String::from("BENCH_sim.json");
    let mut max_regress = 25.0f64;
    let mut max_stage_regress = 40.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                i += 1;
                label = args.get(i).expect("--label needs a value").clone();
            }
            "--json" => print_json = true,
            "--append" => {
                i += 1;
                append = Some(args.get(i).expect("--append needs a path").clone());
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).expect("--check needs a path").clone());
            }
            "--compare" => {
                let a = args.get(i + 1).expect("--compare needs two labels").clone();
                let b = args.get(i + 2).expect("--compare needs two labels").clone();
                i += 2;
                compare = Some((a, b));
            }
            "--file" => {
                i += 1;
                file = args.get(i).expect("--file needs a path").clone();
            }
            "--max-regress" => {
                i += 1;
                max_regress = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regress needs a percentage");
            }
            "--max-stage-regress" => {
                i += 1;
                max_stage_regress = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-stage-regress needs a percentage");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: simbench [--label NAME] [--json] [--append FILE] \
                     [--check FILE] [--max-regress PCT] [--max-stage-regress PCT] \
                     | simbench --compare LABELA LABELB [--file FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scale = brepl_bench::scale_from_env();

    if let Some((la, lb)) = compare {
        compare_entries(&file, scale, &la, &lb);
        return;
    }
    let suite_start = Instant::now();
    let samples: Vec<WorkloadSample> = WORKLOADS
        .iter()
        .map(|&n| {
            measure(n, scale).unwrap_or_else(|msg| {
                eprintln!("error: {msg}");
                std::process::exit(1);
            })
        })
        .collect();
    let suite_seconds = suite_start.elapsed().as_secs_f64();

    if print_json {
        println!("{}", entry_json(&label, scale, &samples, suite_seconds));
    } else {
        println!(
            "simbench: scale={} threads={} suite={suite_seconds:.3}s",
            scale_name(scale),
            brepl_core::engine::thread_count()
        );
        print!("{:<12} {:>10} {:>10}", "workload", "events", "Mev/s");
        for s in STAGES {
            print!(" {s:>9}");
        }
        println!();
        for s in &samples {
            let mevs = if s.stages[1] > 0.0 {
                s.events as f64 / s.stages[1] / 1e6
            } else {
                0.0
            };
            print!("{:<12} {:>10} {:>10.2}", s.name, s.events, mevs);
            for t in s.stages {
                print!(" {:>8.1}ms", t * 1e3);
            }
            println!();
        }
        if HAVE_ALLOC_STATS {
            println!();
            print!("{:<12} {:>10} {:>10}", "allocs", "", "");
            for s in STAGES {
                print!(" {s:>9}");
            }
            println!();
            for s in &samples {
                print!("{:<12} {:>10} {:>10}", s.name, "", "");
                for a in s.allocs {
                    print!(" {a:>9}");
                }
                println!();
            }
        }
    }

    if let Some(path) = &check {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("simbench: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let doc = json::parse(&text).unwrap_or_else(|(pos, msg)| {
            eprintln!("simbench: {path}: parse error at byte {pos}: {msg}");
            std::process::exit(2);
        });
        let entries = validate_trajectory(&doc).unwrap_or_else(|msg| {
            eprintln!("simbench: {path}: invalid trajectory: {msg}");
            std::process::exit(2);
        });
        eprintln!(
            "simbench: {path}: schema OK ({} entr{})",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
        let baseline = entries
            .iter()
            .rev()
            .find(|e| e.get("scale").and_then(Json::as_str) == Some(scale_name(scale)));
        match baseline {
            None => {
                eprintln!(
                    "simbench: no committed {} entry to compare against; check is schema-only",
                    scale_name(scale)
                );
            }
            Some(b) => {
                let base = b.get("suite_seconds").and_then(Json::as_num).unwrap();
                let base_label = b.get("label").and_then(Json::as_str).unwrap();
                let ratio = if base > 0.0 {
                    suite_seconds / base
                } else {
                    1.0
                };
                eprintln!(
                    "simbench: suite {suite_seconds:.3}s vs committed {base_label:?} \
                     {base:.3}s ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
                if ratio > 1.0 + max_regress / 100.0 {
                    eprintln!(
                        "simbench: FAIL: suite regressed more than {max_regress:.0}% \
                         vs the committed baseline"
                    );
                    std::process::exit(1);
                }
                // Per-stage gate: a stage can regress badly while the
                // suite total hides it behind a win elsewhere. Sum each
                // stage across workloads in both runs and fail on any
                // stage more than the threshold slower. Stages whose
                // committed total is tiny are exempt — at sub-10ms scale
                // scheduler noise swamps any real regression.
                const STAGE_FLOOR_SECONDS: f64 = 0.010;
                let mut stage_fail = false;
                for (si, stage) in STAGES.iter().enumerate() {
                    let base_total = stage_total(b, stage);
                    let cur_total: f64 = samples.iter().map(|s| s.stages[si]).sum();
                    if base_total < STAGE_FLOOR_SECONDS {
                        continue;
                    }
                    let pct = 100.0 * (cur_total / base_total - 1.0);
                    if pct > max_stage_regress {
                        eprintln!(
                            "simbench: FAIL: stage {stage:?} regressed {pct:+.1}% \
                             ({:.3}s vs committed {:.3}s, threshold {max_stage_regress:.0}%)",
                            cur_total, base_total
                        );
                        stage_fail = true;
                    }
                }
                if stage_fail {
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(path) = &append {
        let entry = entry_json(&label, scale, &samples, suite_seconds);
        let entries_json = match std::fs::read_to_string(path) {
            Ok(text) => {
                let doc = json::parse(&text).unwrap_or_else(|(pos, msg)| {
                    eprintln!("simbench: {path}: parse error at byte {pos}: {msg}");
                    std::process::exit(2);
                });
                let entries = validate_trajectory(&doc).unwrap_or_else(|msg| {
                    eprintln!("simbench: {path}: invalid trajectory: {msg}");
                    std::process::exit(2);
                });
                let mut rendered: Vec<String> = entries.iter().map(render_json).collect();
                rendered.push(entry);
                rendered
            }
            Err(_) => vec![entry],
        };
        let doc = json::Obj::new()
            .str("schema", SCHEMA)
            .raw("entries", &pretty_entries(&entries_json))
            .build();
        std::fs::write(path, doc + "\n").unwrap_or_else(|e| {
            eprintln!("simbench: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("simbench: appended entry {label:?} to {path}");
    }
}

/// Sum of one stage's seconds across an entry's workloads.
fn stage_total(entry: &Json, stage: &str) -> f64 {
    entry
        .get("workloads")
        .and_then(Json::as_arr)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| {
                    w.get("stages")
                        .and_then(|s| s.get(stage))
                        .and_then(Json::as_num)
                })
                .sum()
        })
        .unwrap_or(0.0)
}

/// `--compare LABELA LABELB`: pure reporting over the committed
/// trajectory — no measurement. Picks the *latest* entry with each label
/// at the current scale and prints per-stage and per-workload deltas.
fn compare_entries(path: &str, scale: Scale, label_a: &str, label_b: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("simbench: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = json::parse(&text).unwrap_or_else(|(pos, msg)| {
        eprintln!("simbench: {path}: parse error at byte {pos}: {msg}");
        std::process::exit(2);
    });
    let entries = validate_trajectory(&doc).unwrap_or_else(|msg| {
        eprintln!("simbench: {path}: invalid trajectory: {msg}");
        std::process::exit(2);
    });
    let find = |label: &str| -> &Json {
        entries
            .iter()
            .rev()
            .find(|e| {
                e.get("label").and_then(Json::as_str) == Some(label)
                    && e.get("scale").and_then(Json::as_str) == Some(scale_name(scale))
            })
            .unwrap_or_else(|| {
                eprintln!(
                    "simbench: {path}: no {} entry labeled {label:?}",
                    scale_name(scale)
                );
                std::process::exit(2);
            })
    };
    let (a, b) = (find(label_a), find(label_b));
    let (sa, sb) = (
        a.get("suite_seconds").and_then(Json::as_num).unwrap(),
        b.get("suite_seconds").and_then(Json::as_num).unwrap(),
    );
    let pct = |from: f64, to: f64| {
        if from > 0.0 {
            100.0 * (to / from - 1.0)
        } else {
            0.0
        }
    };
    println!(
        "simbench compare ({}): {label_a:?} -> {label_b:?}",
        scale_name(scale)
    );
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "stage", label_a, label_b, "delta"
    );
    for stage in STAGES {
        let (ta, tb) = (stage_total(a, stage), stage_total(b, stage));
        println!(
            "{stage:<12} {:>10.1}ms {:>10.1}ms {:>+7.1}%",
            ta * 1e3,
            tb * 1e3,
            pct(ta, tb)
        );
    }
    println!(
        "{:<12} {:>11.3}s {:>11.3}s {:>+7.1}%",
        "suite",
        sa,
        sb,
        pct(sa, sb)
    );
    // Per-workload totals (summed over stages) locate where a delta
    // lives when the stage view is not enough.
    let workload_total = |e: &Json, name: &str| -> Option<f64> {
        e.get("workloads")
            .and_then(Json::as_arr)?
            .iter()
            .find_map(|w| {
                if w.get("name").and_then(Json::as_str) == Some(name) {
                    let s = w.get("stages")?;
                    Some(
                        STAGES
                            .iter()
                            .filter_map(|st| s.get(st).and_then(Json::as_num))
                            .sum(),
                    )
                } else {
                    None
                }
            })
    };
    println!();
    for name in WORKLOADS {
        if let (Some(ta), Some(tb)) = (workload_total(a, name), workload_total(b, name)) {
            println!(
                "{name:<12} {:>10.1}ms {:>10.1}ms {:>+7.1}%",
                ta * 1e3,
                tb * 1e3,
                pct(ta, tb)
            );
        }
    }
}

/// Re-renders a parsed entry (needed to append while preserving history).
fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => format!("\"{}\"", json::escape(s)),
        Json::Arr(items) => json::array(&items.iter().map(render_json).collect::<Vec<_>>()),
        Json::Obj(fields) => {
            let rendered: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json::escape(k), render_json(v)))
                .collect();
            format!("{{{}}}", rendered.join(","))
        }
    }
}

/// One entry per line keeps the committed trajectory diffable.
fn pretty_entries(entries: &[String]) -> String {
    if entries.is_empty() {
        return "[]".into();
    }
    format!("[\n{}\n]", entries.join(",\n"))
}
