//! Static branch-direction classification over the whole suite: runs
//! the SCCP + interval analysis ([`brepl_analysis::classify_module`]) on
//! every workload, checks the profile-vs-proof gate against each
//! workload's honest profiling trace (`BR013`–`BR018`), and times the
//! planner's proved-site fast-path against the plain machine search
//! (both below a cleared memo, so the numbers are genuine cold runs).
//!
//! Prints one row per workload — sites proved / exactly-biased /
//! profile-dependent, planner skips, classification and selection wall
//! time, gate error and warning counts — and exits non-zero on any
//! error-severity diagnostic, a diverged fixpoint, or a fast-path
//! selection that is not bit-identical to the searched one.
//!
//! With `--json` the same data is emitted as one machine-readable JSON
//! document on stdout (schema style shared with `staticcheck --json`).

use std::time::Instant;

use brepl_analysis::{classification_diags, classify_module, Severity};
use brepl_bench::{json, scale_from_env};
use brepl_core::{memo, select_strategies_classified};
use brepl_sim::{Machine, RunConfig};
use brepl_workloads::all_workloads;

/// Selection budget matching the default pipeline configuration.
const MAX_STATES: usize = 4;

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    let scale = scale_from_env();
    if !json_mode {
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>5} {:>10} {:>9} {:>9} {:>6} {:>5}",
            "program",
            "proved",
            "biased",
            "dep",
            "skip",
            "classify µs",
            "plain µs",
            "fast µs",
            "errors",
            "warns"
        );
        println!("{}", "-".repeat(88));
    }

    let mut total_errors = 0usize;
    let mut failed = false;
    let mut rows: Vec<String> = Vec::new();
    for w in all_workloads(scale) {
        let mut machine = match Machine::new(&w.module, RunConfig::default()) {
            Ok(m) => m,
            Err(e) => {
                report_failure(&mut rows, json_mode, w.name, &format!("machine init: {e}"));
                failed = true;
                continue;
            }
        };
        machine.set_input(w.input.clone());
        let trace = match machine.run("main", &w.args) {
            Ok(outcome) => outcome.trace,
            Err(e) => {
                report_failure(&mut rows, json_mode, w.name, &format!("profile run: {e}"));
                failed = true;
                continue;
            }
        };

        let start = Instant::now();
        let cls = classify_module(&w.module);
        let classify_us = start.elapsed().as_micros();
        let (proved, bounded, dependent) = cls.counts();
        if !cls.converged() {
            failed = true;
        }

        // The gate, judged against the workload's honest trace: zero
        // error-severity diagnostics expected (BR018 notes are warnings).
        let diags = classification_diags(&w.module, &cls, &trace.stats());
        let errors: Vec<String> = diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .map(|d| d.render(&w.module))
            .collect();
        let warnings = diags.len() - errors.len();
        total_errors += errors.len();

        // Cold planner timings: clear the process-wide selection memo
        // before each run so both paths genuinely search.
        memo::clear();
        let start = Instant::now();
        let (plain, _) = select_strategies_classified(&w.module, &trace, MAX_STATES, None);
        let plain_us = start.elapsed().as_micros();
        memo::clear();
        let start = Instant::now();
        let (fast, skips) = select_strategies_classified(&w.module, &trace, MAX_STATES, Some(&cls));
        let fast_us = start.elapsed().as_micros();
        if plain != fast {
            report_failure(
                &mut rows,
                json_mode,
                w.name,
                "fast-path selection differs from the plain search",
            );
            failed = true;
            continue;
        }

        if json_mode {
            rows.push(
                json::Obj::new()
                    .str("name", w.name)
                    .int("sites_proved", proved as u64)
                    .int("sites_biased", bounded as u64)
                    .int("sites_dependent", dependent as u64)
                    .int("planner_skips", skips as u64)
                    .bool("converged", cls.converged())
                    .int("classify_us", classify_us as u64)
                    .int("select_plain_us", plain_us as u64)
                    .int("select_fast_us", fast_us as u64)
                    .int("errors", errors.len() as u64)
                    .int("warnings", warnings as u64)
                    .raw("diags", &json::string_array(&errors))
                    .build(),
            );
        } else {
            println!(
                "{:<12} {:>6} {:>6} {:>6} {:>5} {:>11} {:>9} {:>9} {:>6} {:>5}",
                w.name,
                proved,
                bounded,
                dependent,
                skips,
                classify_us,
                plain_us,
                fast_us,
                errors.len(),
                warnings
            );
            for e in &errors {
                println!("    {e}");
            }
        }
    }

    let ok = !failed && total_errors == 0;
    if json_mode {
        println!(
            "{}",
            json::Obj::new()
                .str("tool", "classify")
                .str(
                    "scale",
                    if scale == brepl_workloads::Scale::Full {
                        "full"
                    } else {
                        "small"
                    }
                )
                .bool("ok", ok)
                .int("total_errors", total_errors as u64)
                .raw("workloads", &json::array(&rows))
                .build()
        );
    } else {
        println!("{}", "-".repeat(88));
    }
    if !ok {
        if !json_mode {
            println!("FAIL: {total_errors} error-severity diagnostics");
        }
        std::process::exit(1);
    }
    if !json_mode {
        println!("OK: every workload classifies cleanly and the fast-path is bit-identical");
    }
}

/// Records one failed workload, in whichever output mode is active.
fn report_failure(rows: &mut Vec<String>, json_mode: bool, name: &str, msg: &str) {
    if json_mode {
        rows.push(json::Obj::new().str("name", name).str("error", msg).build());
    } else {
        println!("{name:<12} ERROR: {msg}");
    }
}
