//! Program locations for diagnostics.
//!
//! Analyses and lints need to point at a function, a block within it, or a
//! single instruction; [`Loc`] is that pointer, with a compact display
//! (`f0`, `f0:b3`, `f0:b3:i2`, `f0:b3:term`) and a module-aware variant
//! that substitutes the function name ([`Module::describe_loc`]).

use std::fmt;

use crate::ids::{BlockId, FuncId};
use crate::module::Module;

/// Index of an instruction within a block, or the block's terminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstIdx {
    /// The `i`-th non-terminator instruction.
    Inst(usize),
    /// The block terminator.
    Term,
}

impl fmt::Display for InstIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstIdx::Inst(i) => write!(f, "i{i}"),
            InstIdx::Term => write!(f, "term"),
        }
    }
}

/// A location in a module: a function, optionally narrowed to a block and
/// further to one instruction or the terminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The function.
    pub func: FuncId,
    /// The block within the function, when the location is block-precise.
    pub block: Option<BlockId>,
    /// The instruction within the block, when instruction-precise.
    pub inst: Option<InstIdx>,
}

impl Loc {
    /// A function-level location.
    pub fn function(func: FuncId) -> Self {
        Loc {
            func,
            block: None,
            inst: None,
        }
    }

    /// A block-level location.
    pub fn block(func: FuncId, block: BlockId) -> Self {
        Loc {
            func,
            block: Some(block),
            inst: None,
        }
    }

    /// An instruction-level location.
    pub fn inst(func: FuncId, block: BlockId, inst: usize) -> Self {
        Loc {
            func,
            block: Some(block),
            inst: Some(InstIdx::Inst(inst)),
        }
    }

    /// A terminator location.
    pub fn term(func: FuncId, block: BlockId) -> Self {
        Loc {
            func,
            block: Some(block),
            inst: Some(InstIdx::Term),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.func)?;
        if let Some(b) = self.block {
            write!(f, ":{b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, ":{i}")?;
        }
        Ok(())
    }
}

impl Module {
    /// Renders `loc` with the function *name* instead of its numeric id,
    /// e.g. `main:b3:i2`. Falls back to the numeric id when the function
    /// index is out of range (a stale location).
    pub fn describe_loc(&self, loc: &Loc) -> String {
        let mut s = if loc.func.index() < self.function_count() {
            format!("@{}", self.function(loc.func).name)
        } else {
            loc.func.to_string()
        };
        if let Some(b) = loc.block {
            s.push_str(&format!(":{b}"));
        }
        if let Some(i) = loc.inst {
            s.push_str(&format!(":{i}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn display_narrows() {
        assert_eq!(Loc::function(FuncId(0)).to_string(), "f0");
        assert_eq!(Loc::block(FuncId(1), BlockId(3)).to_string(), "f1:b3");
        assert_eq!(Loc::inst(FuncId(0), BlockId(2), 7).to_string(), "f0:b2:i7");
        assert_eq!(Loc::term(FuncId(0), BlockId(2)).to_string(), "f0:b2:term");
    }

    #[test]
    fn describe_uses_function_names() {
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.push_function(b.finish());
        assert_eq!(m.describe_loc(&Loc::block(fid, BlockId(0))), "@main:b0");
        // Out-of-range function falls back to the numeric id.
        assert_eq!(m.describe_loc(&Loc::function(FuncId(9))), "f9");
    }
}
