//! Newtype identifiers for IR entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A virtual register local to a [`crate::Function`].
    ///
    /// Registers are mutable storage (the IR is not in SSA form). Function
    /// parameters occupy registers `0..n_params`.
    Reg,
    "r"
);

id_type!(
    /// A basic block within a [`crate::Function`].
    BlockId,
    "b"
);

id_type!(
    /// A function within a [`crate::Module`].
    FuncId,
    "f"
);

id_type!(
    /// A static conditional-branch *site*, unique within a [`crate::Module`]
    /// after [`crate::Module::renumber_branches`] has run.
    ///
    /// The branch site is the unit of everything in this system: traces
    /// record `(BranchId, taken)` events, pattern tables are keyed by it and
    /// the replication transform tracks the provenance of cloned sites back
    /// to the original site they were copied from.
    BranchId,
    "s"
);
