//! Instructions, terminators, operands and runtime values.

use std::fmt;

use crate::ids::{BlockId, BranchId, Reg};

/// A runtime value: a 64-bit integer or a 64-bit float.
///
/// The IR is dynamically typed at this coarse granularity, like an assembly
/// register file with integer and floating views. Comparison instructions
/// produce `Int(0)` or `Int(1)`; conditional branches test for non-zero
/// integers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also used for booleans and addresses).
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
}

impl Value {
    /// Interprets the value as a branch condition (non-zero integer is
    /// taken; floats are truthy when non-zero).
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Float(_) => None,
        }
    }

    /// Returns the float payload, if this is a [`Value::Float`].
    pub fn as_float(self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(v),
            Value::Int(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}f"),
        }
    }
}

/// An instruction operand: a register read or an immediate constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// An immediate value.
    Imm(Value),
}

impl Operand {
    /// Shorthand for an integer immediate.
    pub fn imm(v: i64) -> Self {
        Operand::Imm(Value::Int(v))
    }

    /// Shorthand for a float immediate.
    pub fn fimm(v: f64) -> Self {
        Operand::Imm(Value::Float(v))
    }

    /// Returns the register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary arithmetic and bitwise operations.
///
/// Arithmetic ops are polymorphic over [`Value::Int`] and [`Value::Float`]
/// (both operands must have the same kind); bitwise and shift ops require
/// integers. Integer division and remainder truncate toward zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division truncates; division by zero traps).
    Div,
    /// Remainder (integers only; remainder by zero traps).
    Rem,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Left shift (integers only, shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (integers only, shift amount masked to 0..64).
    Shr,
}

impl BinOp {
    /// The mnemonic used in the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// All binary operations, for exhaustive testing.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];
}

/// Comparison operations; result is `Int(1)` or `Int(0)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed / ordered).
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The mnemonic used in the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison with operands swapped (`a op b` == `b op.swapped() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The negated comparison (`!(a op b)` == `a op.negated() b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// All comparison operations, for exhaustive testing.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
}

/// Built-in operations the interpreter provides to programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `out(v)` — append `v` to the machine's output tape.
    Out,
    /// `in()` — pop the next value from the input tape; `Int(-1)` when empty.
    In,
    /// `rand(bound)` — deterministic xorshift PRNG in `0..bound` (`bound > 0`).
    Rand,
    /// `sqrt(x)` — float square root (integer input is converted first).
    Sqrt,
}

impl Intrinsic {
    /// The mnemonic used in the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Intrinsic::Out => "out",
            Intrinsic::In => "in",
            Intrinsic::Rand => "rand",
            Intrinsic::Sqrt => "sqrt",
        }
    }
}

/// A non-terminator instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// `dst = imm`.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        value: Value,
    },
    /// `dst = src` (register copy / immediate move).
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (lhs op rhs) as Int(0|1)`.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = int(src)` — float-to-int truncation (no-op on ints).
    Ftoi {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = float(src)` — int-to-float conversion (no-op on floats).
    Itof {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = mem[addr]` — word-addressed heap load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operand (integer word index).
        addr: Operand,
    },
    /// `mem[addr] = value`.
    Store {
        /// Address operand (integer word index).
        addr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// `dst = alloc(words)` — bump-allocate `words` heap words, returns the
    /// base address.
    Alloc {
        /// Destination register (receives the base address).
        dst: Reg,
        /// Number of words to allocate.
        words: Operand,
    },
    /// `dst = call name(args...)` — direct call by function name.
    Call {
        /// Optional destination register for the return value.
        dst: Option<Reg>,
        /// Callee name (resolved at verification / execution time).
        callee: String,
        /// Argument operands, bound to the callee's parameter registers.
        args: Vec<Operand>,
    },
    /// `dst = intrinsic(args...)`.
    Intrin {
        /// Optional destination register.
        dst: Option<Reg>,
        /// Which intrinsic.
        which: Intrinsic,
        /// Argument operands.
        args: Vec<Operand>,
    },
}

impl Inst {
    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Ftoi { dst, .. }
            | Inst::Itof { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloc { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } | Inst::Intrin { dst, .. } => *dst,
        }
    }

    /// Visits every operand read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Inst::Const { .. } => {}
            Inst::Copy { src, .. } | Inst::Ftoi { src, .. } | Inst::Itof { src, .. } => f(*src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { addr, value } => {
                f(*addr);
                f(*value);
            }
            Inst::Alloc { words, .. } => f(*words),
            Inst::Call { args, .. } | Inst::Intrin { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
        }
    }

    /// True if this instruction writes memory or performs I/O — such
    /// instructions pin the surrounding code during heuristic analysis
    /// (the Ball–Larus *store* heuristic keys off this).
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::Call { .. } | Inst::Intrin { .. } | Inst::Alloc { .. }
        )
    }
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Conditional branch: to `then_` when `cond` is truthy, else `else_`.
    ///
    /// The `site` id is the static-branch identity used by traces, pattern
    /// tables and replication; it is assigned / refreshed by
    /// [`crate::Module::renumber_branches`].
    Br {
        /// The condition operand.
        cond: Operand,
        /// Target when the condition is truthy (the *taken* direction).
        then_: BlockId,
        /// Target when the condition is falsy.
        else_: BlockId,
        /// Static branch site id.
        site: BranchId,
    },
    /// Unconditional jump.
    Jmp {
        /// Jump target.
        target: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
}

impl Term {
    /// Successor block ids, in `(taken, not-taken)` order for branches.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Term::Br { then_, else_, .. } => (Some(*then_), Some(*else_)),
            Term::Jmp { target } => (Some(*target), None),
            Term::Ret { .. } => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Rewrites every successor block id through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Term::Br { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            Term::Jmp { target } => *target = f(*target),
            Term::Ret { .. } => {}
        }
    }

    /// Returns the branch site id if this is a conditional branch.
    pub fn branch_site(&self) -> Option<BranchId> {
        match self {
            Term::Br { site, .. } => Some(*site),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(Value::Int(-3).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
    }

    #[test]
    fn cmp_negated_is_involution() {
        for op in CmpOp::ALL {
            assert_eq!(op.negated().negated(), op);
        }
    }

    #[test]
    fn cmp_swapped_is_involution() {
        for op in CmpOp::ALL {
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(3),
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::imm(7),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        let mut uses = Vec::new();
        i.for_each_use(|o| uses.push(o));
        assert_eq!(uses.len(), 2);
        assert!(!i.has_side_effect());
        let st = Inst::Store {
            addr: Operand::imm(0),
            value: Operand::imm(1),
        };
        assert!(st.has_side_effect());
        assert_eq!(st.def(), None);
    }

    #[test]
    fn term_successors_order() {
        let t = Term::Br {
            cond: Operand::imm(1),
            then_: BlockId(4),
            else_: BlockId(9),
            site: BranchId(0),
        };
        let succs: Vec<_> = t.successors().collect();
        assert_eq!(succs, vec![BlockId(4), BlockId(9)]);
        assert_eq!(t.branch_site(), Some(BranchId(0)));
    }

    #[test]
    fn map_successors_rewrites_all() {
        let mut t = Term::Br {
            cond: Operand::imm(1),
            then_: BlockId(0),
            else_: BlockId(1),
            site: BranchId(0),
        };
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(10), BlockId(11)]
        );
    }
}
