//! Canonical structural fingerprints of modules.
//!
//! The analysis pipeline is a pure function of its IR and trace inputs, so
//! whole stages can be memoized on a compact identity of those inputs (see
//! `brepl_core::memo`). The fingerprint below is a 128-bit dual-lane
//! FNV-1a walk over *everything semantically visible* in a module: globals,
//! function names and signatures, block structure, every instruction field
//! and every terminator — with float immediates hashed via
//! [`f64::to_bits`] so `0.0`/`-0.0` and NaN payloads are distinguished
//! exactly like the interpreter distinguishes them.
//!
//! Two modules with equal fingerprints are treated as identical by the
//! memo layer; the walk therefore never skips a field that execution,
//! replication or selection could observe.

use crate::ids::BlockId;
use crate::inst::{Inst, Operand, Term, Value};
use crate::module::{Function, Module};

/// Dual-lane FNV-1a accumulator, matching the trace/outcome fingerprints
/// used by the memo layer.
struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new() -> Self {
        Lanes {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn mix(&mut self, x: u64) {
        self.a = (self.a ^ x).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ x.rotate_left(32)).wrapping_mul(0x0000_01b3_0000_0193);
    }

    /// Length-prefixed byte mixing (names): no two distinct strings can
    /// produce the same mix sequence.
    fn mix_bytes(&mut self, bytes: &[u8]) {
        self.mix(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = 0u64;
            for (i, &c) in chunk.iter().enumerate() {
                word |= u64::from(c) << (8 * i);
            }
            self.mix(word);
        }
    }

    fn mix_value(&mut self, v: Value) {
        match v {
            Value::Int(i) => {
                self.mix(0);
                self.mix(i as u64);
            }
            Value::Float(f) => {
                self.mix(1);
                self.mix(f.to_bits());
            }
        }
    }

    fn mix_operand(&mut self, o: Operand) {
        match o {
            Operand::Reg(r) => {
                self.mix(0);
                self.mix(u64::from(r.0));
            }
            Operand::Imm(v) => {
                self.mix(1);
                self.mix_value(v);
            }
        }
    }

    fn mix_block(&mut self, id: BlockId) {
        self.mix(u64::from(id.0));
    }

    fn mix_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::Const { dst, value } => {
                self.mix(0);
                self.mix(u64::from(dst.0));
                self.mix_value(*value);
            }
            Inst::Copy { dst, src } => {
                self.mix(1);
                self.mix(u64::from(dst.0));
                self.mix_operand(*src);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                self.mix(2);
                self.mix(*op as u64);
                self.mix(u64::from(dst.0));
                self.mix_operand(*lhs);
                self.mix_operand(*rhs);
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                self.mix(3);
                self.mix(*op as u64);
                self.mix(u64::from(dst.0));
                self.mix_operand(*lhs);
                self.mix_operand(*rhs);
            }
            Inst::Ftoi { dst, src } => {
                self.mix(4);
                self.mix(u64::from(dst.0));
                self.mix_operand(*src);
            }
            Inst::Itof { dst, src } => {
                self.mix(5);
                self.mix(u64::from(dst.0));
                self.mix_operand(*src);
            }
            Inst::Load { dst, addr } => {
                self.mix(6);
                self.mix(u64::from(dst.0));
                self.mix_operand(*addr);
            }
            Inst::Store { addr, value } => {
                self.mix(7);
                self.mix_operand(*addr);
                self.mix_operand(*value);
            }
            Inst::Alloc { dst, words } => {
                self.mix(8);
                self.mix(u64::from(dst.0));
                self.mix_operand(*words);
            }
            Inst::Call { dst, callee, args } => {
                self.mix(9);
                self.mix(dst.map_or(u64::MAX, |r| u64::from(r.0)));
                self.mix_bytes(callee.as_bytes());
                self.mix(args.len() as u64);
                for a in args {
                    self.mix_operand(*a);
                }
            }
            Inst::Intrin { dst, which, args } => {
                self.mix(10);
                self.mix(dst.map_or(u64::MAX, |r| u64::from(r.0)));
                self.mix(*which as u64);
                self.mix(args.len() as u64);
                for a in args {
                    self.mix_operand(*a);
                }
            }
        }
    }

    fn mix_term(&mut self, term: &Term) {
        match term {
            Term::Br {
                cond,
                then_,
                else_,
                site,
            } => {
                self.mix(0);
                self.mix_operand(*cond);
                self.mix_block(*then_);
                self.mix_block(*else_);
                self.mix(u64::from(site.0));
            }
            Term::Jmp { target } => {
                self.mix(1);
                self.mix_block(*target);
            }
            Term::Ret { value } => {
                self.mix(2);
                match value {
                    None => self.mix(0),
                    Some(v) => {
                        self.mix(1);
                        self.mix_operand(*v);
                    }
                }
            }
        }
    }
}

impl Lanes {
    fn mix_function(&mut self, f: &Function) {
        self.mix_bytes(f.name.as_bytes());
        self.mix(u64::from(f.n_params));
        self.mix(u64::from(f.n_regs));
        self.mix_block(f.entry);
        self.mix(f.blocks.len() as u64);
        for b in &f.blocks {
            self.mix(b.insts.len() as u64);
            for inst in &b.insts {
                self.mix_inst(inst);
            }
            self.mix_term(&b.term);
        }
    }
}

impl Module {
    /// A canonical 128-bit structural fingerprint of this module.
    ///
    /// Covers globals, every function (name, signature, entry block) and
    /// every instruction and terminator field, including branch site ids
    /// and float immediate bit patterns. Equal fingerprints are treated as
    /// equal modules by the stage-level memo in `brepl-core`.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut h = Lanes::new();
        h.mix(self.globals as u64);
        h.mix(self.function_count() as u64);
        for (_, f) in self.iter_functions() {
            h.mix_function(f);
        }
        (h.a, h.b)
    }
}

impl Function {
    /// A canonical 128-bit structural fingerprint of this one function —
    /// the per-function slice of [`Module::fingerprint`], for caches that
    /// track change at function granularity (the pipeline's incremental
    /// gate re-proving).
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut h = Lanes::new();
        h.mix_function(self);
        (h.a, h.b)
    }
}

#[cfg(test)]
mod tests {
    use crate::{FunctionBuilder, Module, Operand};

    fn sample(imm: i64) -> Module {
        let mut b = FunctionBuilder::new("main", 1);
        let n = b.param(0);
        let r = b.reg();
        b.add(r, n.into(), Operand::imm(imm));
        let t = b.new_block();
        let e = b.new_block();
        let c = b.lt(r.into(), Operand::imm(10));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(r.into()));
        b.switch_to(e);
        b.ret(Some(Operand::imm(0)));
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn identical_modules_agree() {
        assert_eq!(sample(7).fingerprint(), sample(7).fingerprint());
    }

    #[test]
    fn an_immediate_change_is_visible() {
        assert_ne!(sample(7).fingerprint(), sample(8).fingerprint());
    }

    #[test]
    fn globals_are_visible() {
        let mut a = sample(7);
        a.reserve_globals(4);
        assert_ne!(a.fingerprint(), sample(7).fingerprint());
    }

    #[test]
    fn float_immediates_hash_by_bits() {
        let mk = |x: f64| {
            let mut b = FunctionBuilder::new("main", 0);
            b.ret(Some(Operand::fimm(x)));
            let mut m = Module::new();
            m.push_function(b.finish());
            m
        };
        assert_ne!(mk(0.0).fingerprint(), mk(-0.0).fingerprint());
        assert_eq!(mk(f64::NAN).fingerprint(), mk(f64::NAN).fingerprint());
    }

    #[test]
    fn function_order_and_names_matter() {
        let f = |name: &str| {
            let mut b = FunctionBuilder::new(name, 0);
            b.ret(None);
            b.finish()
        };
        let mut a = Module::new();
        a.push_function(f("x"));
        a.push_function(f("y"));
        let mut b = Module::new();
        b.push_function(f("y"));
        b.push_function(f("x"));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
