//! Textual pretty-printing of modules. The output round-trips through
//! [`crate::parse_module`].

use std::fmt;

use crate::inst::{Inst, Term};
use crate::module::{Function, Module};

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = copy {src}"),
            Inst::Bin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic())
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic())
            }
            Inst::Ftoi { dst, src } => write!(f, "{dst} = ftoi {src}"),
            Inst::Itof { dst, src } => write!(f, "{dst} = itof {src}"),
            Inst::Load { dst, addr } => write!(f, "{dst} = load {addr}"),
            Inst::Store { addr, value } => write!(f, "store {addr}, {value}"),
            Inst::Alloc { dst, words } => write!(f, "{dst} = alloc {words}"),
            Inst::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call @{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Intrin { dst, which, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "{}(", which.mnemonic())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Br {
                cond,
                then_,
                else_,
                site,
            } => write!(f, "br {cond}, {then_}, {else_}  ; {site}"),
            Term::Jmp { target } => write!(f, "jmp {target}"),
            Term::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Term::Ret { value: None } => write!(f, "ret"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "func @{}({}) regs={} entry={} {{",
            self.name, self.n_params, self.n_regs, self.entry
        )?;
        for (bid, block) in self.iter_blocks() {
            writeln!(f, "{bid}:")?;
            for inst in &block.insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", block.term)?;
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module globals={}", self.globals)?;
        for (_, func) in self.iter_functions() {
            writeln!(f)?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand;
    use crate::module::Module;

    #[test]
    fn display_mentions_everything() {
        let mut b = FunctionBuilder::new("main", 0);
        let r = b.iconst(5);
        let x = b.reg();
        b.add(x, r.into(), Operand::imm(2));
        b.out(x.into());
        let t = b.new_block();
        let e = b.new_block();
        let c = b.lt(x.into(), Operand::imm(10));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(Operand::imm(1)));
        b.switch_to(e);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let text = m.to_string();
        for needle in [
            "func @main",
            "const 5",
            "add",
            "out(",
            "br",
            "; s0",
            "ret 1",
            "ret",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
