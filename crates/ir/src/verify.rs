//! Structural verification of modules.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::{Inst, Operand, Term};
use crate::module::Module;

/// An error found by [`Module::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator or instruction references a block that does not exist.
    BadBlockTarget {
        /// The offending function.
        func: FuncId,
        /// The block containing the reference.
        block: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// An instruction reads or writes a register `>= n_regs`.
    BadReg {
        /// The offending function.
        func: FuncId,
        /// The block containing the instruction.
        block: BlockId,
        /// The out-of-range register.
        reg: Reg,
    },
    /// A call references an unknown function name.
    UnknownCallee {
        /// The offending function.
        func: FuncId,
        /// The block containing the call.
        block: BlockId,
        /// The missing callee name.
        callee: String,
    },
    /// A call passes the wrong number of arguments.
    BadArity {
        /// The offending function.
        func: FuncId,
        /// The block containing the call.
        block: BlockId,
        /// The callee name.
        callee: String,
        /// Arguments supplied.
        got: usize,
        /// Parameters expected.
        want: usize,
    },
    /// The entry block id is out of range.
    BadEntry {
        /// The offending function.
        func: FuncId,
    },
    /// Two conditional branches carry the same site id.
    DuplicateBranchSite {
        /// The duplicated site id (as raw u32 to avoid exposing internals).
        site: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadBlockTarget {
                func,
                block,
                target,
            } => write!(f, "{func}/{block}: branch to nonexistent block {target}"),
            VerifyError::BadReg { func, block, reg } => {
                write!(f, "{func}/{block}: register {reg} out of range")
            }
            VerifyError::UnknownCallee {
                func,
                block,
                callee,
            } => write!(f, "{func}/{block}: call to unknown function {callee:?}"),
            VerifyError::BadArity {
                func,
                block,
                callee,
                got,
                want,
            } => write!(
                f,
                "{func}/{block}: call to {callee:?} passes {got} args, expected {want}"
            ),
            VerifyError::BadEntry { func } => write!(f, "{func}: entry block out of range"),
            VerifyError::DuplicateBranchSite { site } => {
                write!(f, "duplicate branch site id s{site}")
            }
        }
    }
}

impl Error for VerifyError {}

impl Module {
    /// Checks structural well-formedness: block targets in range, registers
    /// within `n_regs`, callees resolvable with matching arity, and branch
    /// site ids unique across the module.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        let mut seen_sites: HashSet<u32> = HashSet::new();
        for (fid, func) in self.iter_functions() {
            if func.entry.index() >= func.blocks.len() {
                return Err(VerifyError::BadEntry { func: fid });
            }
            for (bid, block) in func.iter_blocks() {
                let check_reg = |r: Reg| -> Result<(), VerifyError> {
                    if r.0 >= func.n_regs {
                        Err(VerifyError::BadReg {
                            func: fid,
                            block: bid,
                            reg: r,
                        })
                    } else {
                        Ok(())
                    }
                };
                let check_op = |o: Operand| -> Result<(), VerifyError> {
                    match o.reg() {
                        Some(r) => check_reg(r),
                        None => Ok(()),
                    }
                };
                for inst in &block.insts {
                    if let Some(d) = inst.def() {
                        check_reg(d)?;
                    }
                    let mut err = None;
                    inst.for_each_use(|o| {
                        if err.is_none() {
                            err = check_op(o).err();
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    if let Inst::Call { callee, args, .. } = inst {
                        match self.function_by_name(callee) {
                            None => {
                                return Err(VerifyError::UnknownCallee {
                                    func: fid,
                                    block: bid,
                                    callee: callee.clone(),
                                })
                            }
                            Some(target) => {
                                let want = self.function(target).n_params as usize;
                                if args.len() != want {
                                    return Err(VerifyError::BadArity {
                                        func: fid,
                                        block: bid,
                                        callee: callee.clone(),
                                        got: args.len(),
                                        want,
                                    });
                                }
                            }
                        }
                    }
                }
                match &block.term {
                    Term::Br { cond, site, .. } => {
                        check_op(*cond)?;
                        if !seen_sites.insert(site.0) {
                            return Err(VerifyError::DuplicateBranchSite { site: site.0 });
                        }
                    }
                    Term::Ret { value: Some(v) } => check_op(*v)?,
                    _ => {}
                }
                for succ in block.term.successors() {
                    if succ.index() >= func.blocks.len() {
                        return Err(VerifyError::BadBlockTarget {
                            func: fid,
                            block: bid,
                            target: succ,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::{Block, Function};

    fn ok_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let r = b.iconst(1);
        let t = b.new_block();
        let e = b.new_block();
        b.br(r, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn valid_module_verifies() {
        assert_eq!(ok_module().verify(), Ok(()));
    }

    #[test]
    fn bad_target_detected() {
        let mut m = ok_module();
        let f = m.function_mut(FuncId(0));
        f.blocks[1].term = Term::Jmp {
            target: BlockId(99),
        };
        assert!(matches!(
            m.verify(),
            Err(VerifyError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn bad_reg_detected() {
        let mut m = ok_module();
        let f = m.function_mut(FuncId(0));
        f.blocks[1].insts.push(Inst::Copy {
            dst: Reg(500),
            src: Operand::imm(0),
        });
        assert!(matches!(m.verify(), Err(VerifyError::BadReg { .. })));
    }

    #[test]
    fn unknown_callee_detected() {
        let mut m = ok_module();
        let f = m.function_mut(FuncId(0));
        f.blocks[1].insts.push(Inst::Call {
            dst: None,
            callee: "nope".into(),
            args: vec![],
        });
        assert!(matches!(m.verify(), Err(VerifyError::UnknownCallee { .. })));
    }

    #[test]
    fn bad_arity_detected() {
        let mut m = ok_module();
        let mut b = FunctionBuilder::new("two", 2);
        b.ret(None);
        m.push_function(b.finish());
        let f = m.function_mut(FuncId(0));
        f.blocks[1].insts.push(Inst::Call {
            dst: None,
            callee: "two".into(),
            args: vec![Operand::imm(1)],
        });
        assert!(matches!(m.verify(), Err(VerifyError::BadArity { .. })));
    }

    #[test]
    fn duplicate_sites_detected() {
        let mut m = ok_module();
        let f = m.function_mut(FuncId(0));
        let cloned = f.blocks[0].clone();
        f.blocks.push(cloned);
        // No renumbering: both branches still carry site 0.
        assert!(matches!(
            m.verify(),
            Err(VerifyError::DuplicateBranchSite { site: 0 })
        ));
        m.renumber_branches();
        // Entry's clone is unreachable but structurally fine now.
        assert_eq!(m.verify(), Ok(()));
    }

    #[test]
    fn bad_entry_detected() {
        let mut m = Module::new();
        m.push_function(Function {
            name: "f".into(),
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block {
                insts: vec![],
                term: Term::Ret { value: None },
            }],
            entry: BlockId(3),
        });
        assert!(matches!(m.verify(), Err(VerifyError::BadEntry { .. })));
    }

    #[test]
    fn errors_display_nonempty() {
        let e = VerifyError::DuplicateBranchSite { site: 3 };
        assert!(!e.to_string().is_empty());
    }
}
