//! Blocks, functions and modules.

use std::collections::HashMap;

use crate::ids::{BlockId, BranchId, FuncId, Reg};
use crate::inst::{Inst, Term};

/// A basic block: a straight-line instruction sequence plus one terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The non-terminator instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

impl Block {
    /// An abstract size measure for the code-size accounting of §5 of the
    /// paper: one unit per instruction plus one for the terminator.
    pub fn size_units(&self) -> usize {
        self.insts.len() + 1
    }
}

/// A function: parameter count, register count, and a block list.
///
/// Parameters are passed in registers `0..n_params`. `entry` is the start
/// block. Register `n_regs` is the first *invalid* register index.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// The function name, unique within a module.
    pub name: String,
    /// Number of parameters (bound to registers `0..n_params` on entry).
    pub n_params: u32,
    /// Total number of virtual registers used.
    pub n_regs: u32,
    /// The basic blocks; `BlockId(i)` indexes `blocks[i]`.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Returns the block for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Total size in abstract units (see [`Block::size_units`]).
    pub fn size_units(&self) -> usize {
        self.blocks.iter().map(Block::size_units).sum()
    }

    /// Number of conditional-branch terminators in this function.
    pub fn branch_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Br { .. }))
            .count()
    }
}

/// A whole program: a set of named functions plus reserved global words.
///
/// The heap is a single word-addressed array shared by all functions;
/// addresses `0..globals` are reserved at startup for global variables and
/// never handed out by `alloc`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    functions: Vec<Function>,
    by_name: HashMap<String, FuncId>,
    /// Number of heap words reserved for globals.
    pub globals: usize,
    branch_count: usize,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn push_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::from_index(self.functions.len());
        let prev = self.by_name.insert(f.name.clone(), id);
        assert!(prev.is_none(), "duplicate function name {:?}", f.name);
        self.functions.push(f);
        self.renumber_branches();
        id
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Returns the function for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to the function for `id`. Callers that add, remove or
    /// clone conditional branches must call [`Module::renumber_branches`]
    /// (or [`Module::renumber_branches_with_provenance`]) afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Number of static conditional-branch sites (valid after the last
    /// renumbering).
    pub fn branch_count(&self) -> usize {
        self.branch_count
    }

    /// Total module size in abstract units (see [`Block::size_units`]).
    pub fn size_units(&self) -> usize {
        self.functions.iter().map(Function::size_units).sum()
    }

    /// Assigns fresh, dense [`BranchId`]s to every conditional branch, in
    /// deterministic (function, block) order.
    pub fn renumber_branches(&mut self) {
        let _ = self.renumber_branches_with_provenance();
    }

    /// Assigns fresh, dense [`BranchId`]s and returns, for each *new* id,
    /// the id the branch carried *before* renumbering.
    ///
    /// Transforms that clone branches leave the original site id on the
    /// clone; renumbering afterwards therefore yields the provenance map
    /// `new_site -> original_site` needed to relate replicated branches back
    /// to profile data.
    pub fn renumber_branches_with_provenance(&mut self) -> Vec<BranchId> {
        let mut provenance = Vec::new();
        let mut next = 0u32;
        for f in &mut self.functions {
            for b in &mut f.blocks {
                if let Term::Br { site, .. } = &mut b.term {
                    provenance.push(*site);
                    *site = BranchId(next);
                    next += 1;
                }
            }
        }
        self.branch_count = next as usize;
        provenance
    }

    /// Finds the location `(function, block)` of a branch site.
    ///
    /// Linear scan; intended for diagnostics and tests, not hot paths.
    pub fn locate_branch(&self, site: BranchId) -> Option<(FuncId, BlockId)> {
        for (fid, f) in self.iter_functions() {
            for (bid, b) in f.iter_blocks() {
                if b.term.branch_site() == Some(site) {
                    return Some((fid, bid));
                }
            }
        }
        None
    }

    /// Reserves `words` additional global heap words, returning the base
    /// address of the reserved region.
    pub fn reserve_globals(&mut self, words: usize) -> i64 {
        let base = self.globals;
        self.globals += words;
        base as i64
    }
}

/// Convenience: tracks maximum register usage when building by hand.
pub(crate) fn max_reg_in_function(f: &Function) -> u32 {
    let mut max = f.n_params;
    let mut see = |r: Reg| {
        if r.0 + 1 > max {
            max = r.0 + 1;
        }
    };
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                see(d);
            }
            i.for_each_use(|o| {
                if let Some(r) = o.reg() {
                    see(r);
                }
            });
        }
        match &b.term {
            Term::Br { cond, .. } => {
                if let Some(r) = cond.reg() {
                    see(r);
                }
            }
            Term::Ret { value: Some(v) } => {
                if let Some(r) = v.reg() {
                    see(r);
                }
            }
            _ => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    fn tiny_function(name: &str) -> Function {
        Function {
            name: name.to_string(),
            n_params: 0,
            n_regs: 1,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: Reg(0),
                        value: 1i64.into(),
                    }],
                    term: Term::Br {
                        cond: Operand::Reg(Reg(0)),
                        then_: BlockId(1),
                        else_: BlockId(1),
                        site: BranchId(0),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret { value: None },
                },
            ],
            entry: BlockId(0),
        }
    }

    #[test]
    fn push_function_renumbers_branches() {
        let mut m = Module::new();
        m.push_function(tiny_function("a"));
        m.push_function(tiny_function("b"));
        assert_eq!(m.branch_count(), 2);
        let sites: Vec<_> = m
            .iter_functions()
            .flat_map(|(_, f)| f.blocks.iter().filter_map(|b| b.term.branch_site()))
            .collect();
        assert_eq!(sites, vec![BranchId(0), BranchId(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_panic() {
        let mut m = Module::new();
        m.push_function(tiny_function("a"));
        m.push_function(tiny_function("a"));
    }

    #[test]
    fn provenance_tracks_old_sites() {
        let mut m = Module::new();
        m.push_function(tiny_function("a"));
        // Clone the branch block to simulate replication: the clone keeps
        // the stale site id.
        let f = m.function_mut(FuncId(0));
        let cloned = f.blocks[0].clone();
        f.blocks.push(cloned);
        let prov = m.renumber_branches_with_provenance();
        assert_eq!(prov, vec![BranchId(0), BranchId(0)]);
        assert_eq!(m.branch_count(), 2);
    }

    #[test]
    fn locate_branch_finds_site() {
        let mut m = Module::new();
        m.push_function(tiny_function("a"));
        assert_eq!(m.locate_branch(BranchId(0)), Some((FuncId(0), BlockId(0))));
        assert_eq!(m.locate_branch(BranchId(7)), None);
    }

    #[test]
    fn size_units_counts_instructions_and_terminators() {
        let mut m = Module::new();
        m.push_function(tiny_function("a"));
        // 1 inst + term, plus empty block term.
        assert_eq!(m.size_units(), 3);
    }

    #[test]
    fn reserve_globals_bumps_base() {
        let mut m = Module::new();
        assert_eq!(m.reserve_globals(4), 0);
        assert_eq!(m.reserve_globals(2), 4);
        assert_eq!(m.globals, 6);
    }
}
