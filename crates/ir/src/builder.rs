//! A fluent builder for [`Function`]s.

use std::fmt;

use crate::ids::{BlockId, BranchId, Reg};
use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Operand, Term, Value};
use crate::module::{Block, Function};

/// A structural error detected when finishing a built function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The block was created but never given a terminator.
    MissingTerminator {
        /// The unterminated block.
        block: BlockId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingTerminator { block } => {
                write!(f, "block b{} lacks a terminator", block.0)
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Function`] block by block.
///
/// Blocks are created with [`FunctionBuilder::new_block`]; instructions are
/// appended to the *current* block (selected with
/// [`FunctionBuilder::switch_to`]). A block is finished by emitting a
/// terminator ([`br`](Self::br), [`jmp`](Self::jmp), [`ret`](Self::ret));
/// emitting an instruction into a terminated block panics, which catches
/// most builder misuse immediately.
///
/// ```
/// use brepl_ir::{FunctionBuilder, Operand};
/// let mut b = FunctionBuilder::new("abs", 1);
/// let x = b.param(0);
/// let neg = b.new_block();
/// let pos = b.new_block();
/// let c = b.lt(x.into(), Operand::imm(0));
/// b.br(c, neg, pos);
/// b.switch_to(neg);
/// let r = b.reg();
/// b.sub(r, Operand::imm(0), x.into());
/// b.ret(Some(r.into()));
/// b.switch_to(pos);
/// b.ret(Some(x.into()));
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_params: u32,
    next_reg: u32,
    blocks: Vec<(Vec<Inst>, Option<Term>)>,
    current: BlockId,
    entry: BlockId,
}

impl FunctionBuilder {
    /// Starts a function with `n_params` parameters. The entry block is
    /// created and selected.
    pub fn new(name: impl Into<String>, n_params: u32) -> Self {
        FunctionBuilder {
            name: name.into(),
            n_params,
            next_reg: n_params,
            blocks: vec![(Vec::new(), None)],
            current: BlockId(0),
            entry: BlockId(0),
        }
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_params`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.n_params, "parameter index out of range");
        Reg(i)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates a new (empty, unselected) block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push((Vec::new(), None));
        id
    }

    /// Selects the block receiving subsequently emitted instructions.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist or is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.blocks.len(), "no such block {block}");
        assert!(
            self.blocks[block.index()].1.is_none(),
            "block {block} is already terminated"
        );
        self.current = block;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, inst: Inst) {
        let (insts, term) = &mut self.blocks[self.current.index()];
        assert!(
            term.is_none(),
            "emitting into terminated block {}",
            self.current
        );
        insts.push(inst);
    }

    fn terminate(&mut self, term: Term) {
        let slot = &mut self.blocks[self.current.index()].1;
        assert!(slot.is_none(), "block {} terminated twice", self.current);
        *slot = Some(term);
    }

    // ----- instructions ---------------------------------------------------

    /// `dst = value`.
    pub fn const_val(&mut self, dst: Reg, value: Value) {
        self.push(Inst::Const { dst, value });
    }

    /// `dst = v` for an integer immediate.
    pub fn const_int(&mut self, dst: Reg, v: i64) {
        self.const_val(dst, Value::Int(v));
    }

    /// `dst = v` for a float immediate.
    pub fn const_float(&mut self, dst: Reg, v: f64) {
        self.const_val(dst, Value::Float(v));
    }

    /// Allocates a fresh register holding the integer `v`.
    pub fn iconst(&mut self, v: i64) -> Reg {
        let r = self.reg();
        self.const_int(r, v);
        r
    }

    /// `dst = src`.
    pub fn copy(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::Copy { dst, src });
    }

    /// `dst = lhs op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Operand, rhs: Operand) {
        self.push(Inst::Bin { op, dst, lhs, rhs });
    }

    /// `dst = lhs op rhs`, comparison producing 0/1; returns a fresh register
    /// via [`cmp_new`](Self::cmp_new) when preferred.
    pub fn cmp(&mut self, op: CmpOp, dst: Reg, lhs: Operand, rhs: Operand) {
        self.push(Inst::Cmp { op, dst, lhs, rhs });
    }

    /// Comparison into a fresh register, returned.
    pub fn cmp_new(&mut self, op: CmpOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.reg();
        self.cmp(op, dst, lhs, rhs);
        dst
    }

    /// `dst = int(src)`.
    pub fn ftoi(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::Ftoi { dst, src });
    }

    /// `dst = float(src)`.
    pub fn itof(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::Itof { dst, src });
    }

    /// `dst = mem[addr]`.
    pub fn load(&mut self, dst: Reg, addr: Operand) {
        self.push(Inst::Load { dst, addr });
    }

    /// `mem[addr] = value`.
    pub fn store(&mut self, addr: Operand, value: Operand) {
        self.push(Inst::Store { addr, value });
    }

    /// `dst = alloc(words)`.
    pub fn alloc(&mut self, dst: Reg, words: Operand) {
        self.push(Inst::Alloc { dst, words });
    }

    /// `dst = call callee(args...)`.
    pub fn call(&mut self, dst: Option<Reg>, callee: impl Into<String>, args: Vec<Operand>) {
        self.push(Inst::Call {
            dst,
            callee: callee.into(),
            args,
        });
    }

    /// `dst = intrinsic(args...)`.
    pub fn intrin(&mut self, dst: Option<Reg>, which: Intrinsic, args: Vec<Operand>) {
        self.push(Inst::Intrin { dst, which, args });
    }

    /// `out(v)` — write `v` to the output tape.
    pub fn out(&mut self, v: Operand) {
        self.intrin(None, Intrinsic::Out, vec![v]);
    }

    /// Fresh register receiving `in()`.
    pub fn input(&mut self) -> Reg {
        let r = self.reg();
        self.intrin(Some(r), Intrinsic::In, vec![]);
        r
    }

    /// Fresh register receiving `rand(bound)`.
    pub fn rand(&mut self, bound: Operand) -> Reg {
        let r = self.reg();
        self.intrin(Some(r), Intrinsic::Rand, vec![bound]);
        r
    }

    // ----- sugar for common binops ---------------------------------------

    /// `dst = lhs + rhs`.
    pub fn add(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.bin(BinOp::Add, dst, lhs, rhs);
    }

    /// `dst = lhs - rhs`.
    pub fn sub(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.bin(BinOp::Sub, dst, lhs, rhs);
    }

    /// `dst = lhs * rhs`.
    pub fn mul(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.bin(BinOp::Mul, dst, lhs, rhs);
    }

    /// `dst = lhs / rhs`.
    pub fn div(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.bin(BinOp::Div, dst, lhs, rhs);
    }

    /// `dst = lhs % rhs`.
    pub fn rem(&mut self, dst: Reg, lhs: Operand, rhs: Operand) {
        self.bin(BinOp::Rem, dst, lhs, rhs);
    }

    /// Fresh register receiving `lhs < rhs`.
    pub fn lt(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.cmp_new(CmpOp::Lt, lhs, rhs)
    }

    /// Fresh register receiving `lhs <= rhs`.
    pub fn le(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.cmp_new(CmpOp::Le, lhs, rhs)
    }

    /// Fresh register receiving `lhs == rhs`.
    pub fn eq(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.cmp_new(CmpOp::Eq, lhs, rhs)
    }

    /// Fresh register receiving `lhs != rhs`.
    pub fn ne(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.cmp_new(CmpOp::Ne, lhs, rhs)
    }

    /// Fresh register receiving `lhs > rhs`.
    pub fn gt(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.cmp_new(CmpOp::Gt, lhs, rhs)
    }

    /// Fresh register receiving `lhs >= rhs`.
    pub fn ge(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.cmp_new(CmpOp::Ge, lhs, rhs)
    }

    // ----- terminators ----------------------------------------------------

    /// Terminates the current block with a conditional branch.
    ///
    /// Branch site ids carry a placeholder value here; they are assigned for
    /// real by [`crate::Module::renumber_branches`] when the function is
    /// added to a module.
    pub fn br(&mut self, cond: Reg, then_: BlockId, else_: BlockId) {
        self.terminate(Term::Br {
            cond: Operand::Reg(cond),
            then_,
            else_,
            site: BranchId(u32::MAX),
        });
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Term::Jmp { target });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Term::Ret { value });
    }

    /// Finishes the function, surfacing structural mistakes as a typed
    /// error instead of aborting the process.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::MissingTerminator`] naming the first block
    /// (in creation order) that was never terminated.
    pub fn try_finish(self) -> Result<Function, BuildError> {
        let mut blocks: Vec<Block> = Vec::with_capacity(self.blocks.len());
        for (i, (insts, term)) in self.blocks.into_iter().enumerate() {
            let Some(term) = term else {
                return Err(BuildError::MissingTerminator {
                    block: BlockId(i as u32),
                });
            };
            blocks.push(Block { insts, term });
        }
        Ok(Function {
            name: self.name,
            n_params: self.n_params,
            n_regs: self.next_reg,
            blocks,
            entry: self.entry,
        })
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator; [`Self::try_finish`] is the
    /// non-panicking form.
    pub fn finish(self) -> Function {
        self.try_finish().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop() {
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), n.into());
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.branch_count(), 1);
        assert!(f.n_regs >= 2);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics_on_finish() {
        let b = FunctionBuilder::new("f", 0);
        let _ = b.finish();
    }

    #[test]
    fn try_finish_reports_missing_terminator() {
        // The entry is terminated; the second block is left dangling, so
        // the error must name it rather than the entry.
        let mut b = FunctionBuilder::new("f", 0);
        let dangling = b.new_block();
        b.jmp(dangling);
        let err = b.try_finish().unwrap_err();
        assert_eq!(err, BuildError::MissingTerminator { block: dangling });
        assert_eq!(err.to_string(), "block b1 lacks a terminator");
    }

    #[test]
    fn try_finish_succeeds_on_complete_function() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = b.try_finish().expect("complete function builds");
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn switch_to_terminated_block_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        b.switch_to(BlockId(0));
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn bad_param_panics() {
        let b = FunctionBuilder::new("f", 1);
        let _ = b.param(1);
    }
}
