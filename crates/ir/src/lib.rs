//! # brepl-ir — a small register-based imperative IR
//!
//! This crate defines the program representation used throughout `brepl`,
//! the reproduction of Krall's PLDI 1994 paper *Improving Semi-static Branch
//! Prediction by Code Replication*. The paper operates on MIPS assembly;
//! we operate on a compact, analyzable IR with the same essential structure:
//! mutable virtual registers (non-SSA), basic blocks, explicit conditional
//! branches carrying stable [`BranchId`] site identifiers, and a word
//! addressed memory.
//!
//! The IR is deliberately *non-SSA*: the code-replication transform
//! duplicates basic blocks freely and rewires edges between replicas, which
//! is trivial when registers are mutable storage and would require phi-node
//! surgery under SSA. This mirrors the paper's assembly-level setting.
//!
//! ## Quick tour
//!
//! ```
//! use brepl_ir::{Module, FunctionBuilder, Operand};
//!
//! // fn count(n) { s = 0; for i in 0..n { s += i }; return s }
//! let mut b = FunctionBuilder::new("count", 1);
//! let n = b.param(0);
//! let s = b.reg();
//! let i = b.reg();
//! let head = b.new_block();
//! let body = b.new_block();
//! let done = b.new_block();
//!
//! b.const_int(s, 0);
//! b.const_int(i, 0);
//! b.jmp(head);
//!
//! b.switch_to(head);
//! let c = b.lt(Operand::from(i), Operand::from(n));
//! b.br(c, body, done);
//!
//! b.switch_to(body);
//! b.add(s, s.into(), i.into());
//! b.add(i, i.into(), Operand::imm(1));
//! b.jmp(head);
//!
//! b.switch_to(done);
//! b.ret(Some(s.into()));
//!
//! let mut module = Module::new();
//! module.push_function(b.finish());
//! module.verify().unwrap();
//! assert_eq!(module.branch_count(), 1);
//! ```
//!
//! A textual format is provided for debugging and tests; see [`parse_module`]
//! and the [`std::fmt::Display`] impl on [`Module`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod display;
mod fingerprint;
mod ids;
mod inst;
mod loc;
mod module;
mod parse;
mod verify;

pub use builder::{BuildError, FunctionBuilder};
pub use ids::{BlockId, BranchId, FuncId, Reg};
pub use inst::{BinOp, CmpOp, Inst, Intrinsic, Operand, Term, Value};
pub use loc::{InstIdx, Loc};
pub use module::{Block, Function, Module};
pub use parse::{parse_module, ParseModuleError};
pub use verify::VerifyError;
