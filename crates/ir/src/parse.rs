//! A parser for the textual IR format produced by the `Display` impls.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! module globals=N
//!
//! func @name(n_params) regs=N entry=bK {
//! b0:
//!   r2 = const 42
//!   r3 = add r2, 1
//!   r4 = lt r3, r0
//!   br r4, b1, b2
//! b1:
//!   ret r3
//! b2:
//!   ret
//! }
//! ```
//!
//! Comments start with `;` and run to end of line. Branch-site annotations
//! printed by `Display` (`; s7`) are therefore ignored on input; sites are
//! renumbered when functions enter a module.

use std::error::Error;
use std::fmt;

use crate::ids::{BlockId, BranchId, Reg};
use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Operand, Term, Value};
use crate::module::{max_reg_in_function, Block, Function, Module};

/// An error produced by [`parse_module`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseModuleError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseModuleError {}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find(';') {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseModuleError> {
        Err(ParseModuleError {
            line,
            message: msg.into(),
        })
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseModuleError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u32>().ok())
        .map(Reg)
        .ok_or_else(|| ParseModuleError {
            line,
            message: format!("expected register, found {tok:?}"),
        })
}

fn parse_block_id(tok: &str, line: usize) -> Result<BlockId, ParseModuleError> {
    tok.strip_prefix('b')
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| ParseModuleError {
            line,
            message: format!("expected block id, found {tok:?}"),
        })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseModuleError> {
    let tok = tok.trim();
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) && tok.len() > 1 {
        return Ok(Operand::Reg(parse_reg(tok, line)?));
    }
    if let Some(stripped) = tok.strip_suffix('f') {
        if let Ok(v) = stripped.parse::<f64>() {
            return Ok(Operand::Imm(Value::Float(v)));
        }
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Operand::Imm(Value::Int(v)));
    }
    if let Ok(v) = tok.parse::<f64>() {
        return Ok(Operand::Imm(Value::Float(v)));
    }
    Err(ParseModuleError {
        line,
        message: format!("expected operand, found {tok:?}"),
    })
}

fn split_args(s: &str, line: usize) -> Result<Vec<Operand>, ParseModuleError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|a| parse_operand(a, line)).collect()
}

fn bin_op_from(m: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn cmp_op_from(m: &str) -> Option<CmpOp> {
    CmpOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn intrinsic_from(m: &str) -> Option<Intrinsic> {
    [
        Intrinsic::Out,
        Intrinsic::In,
        Intrinsic::Rand,
        Intrinsic::Sqrt,
    ]
    .into_iter()
    .find(|i| i.mnemonic() == m)
}

/// Parses a call or intrinsic right-hand side like `call @f(a, b)` or
/// `rand(10)`. Returns `None` if `rhs` is not of that shape.
fn parse_callish(
    rhs: &str,
    dst: Option<Reg>,
    line: usize,
) -> Result<Option<Inst>, ParseModuleError> {
    let rhs = rhs.trim();
    if let Some(rest) = rhs.strip_prefix("call ") {
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix('@') else {
            return Err(ParseModuleError {
                line,
                message: "call target must start with @".into(),
            });
        };
        let Some(open) = rest.find('(') else {
            return Err(ParseModuleError {
                line,
                message: "call missing argument list".into(),
            });
        };
        let name = rest[..open].trim().to_string();
        let Some(args_str) = rest[open + 1..].strip_suffix(')') else {
            return Err(ParseModuleError {
                line,
                message: "call missing closing paren".into(),
            });
        };
        return Ok(Some(Inst::Call {
            dst,
            callee: name,
            args: split_args(args_str, line)?,
        }));
    }
    if let Some(open) = rhs.find('(') {
        let head = rhs[..open].trim();
        if let Some(which) = intrinsic_from(head) {
            let Some(args_str) = rhs[open + 1..].strip_suffix(')') else {
                return Err(ParseModuleError {
                    line,
                    message: "intrinsic missing closing paren".into(),
                });
            };
            return Ok(Some(Inst::Intrin {
                dst,
                which,
                args: split_args(args_str, line)?,
            }));
        }
    }
    Ok(None)
}

fn parse_inst(text: &str, line: usize) -> Result<Inst, ParseModuleError> {
    // Forms: "store a, b" | "<callish>" | "rX = <rhs>"
    if let Some(rest) = text.strip_prefix("store ") {
        let parts: Vec<&str> = rest.splitn(2, ',').collect();
        if parts.len() != 2 {
            return Err(ParseModuleError {
                line,
                message: "store needs two operands".into(),
            });
        }
        return Ok(Inst::Store {
            addr: parse_operand(parts[0], line)?,
            value: parse_operand(parts[1], line)?,
        });
    }
    if let Some(inst) = parse_callish(text, None, line)? {
        return Ok(inst);
    }
    let Some(eq) = text.find('=') else {
        return Err(ParseModuleError {
            line,
            message: format!("unrecognized instruction {text:?}"),
        });
    };
    let dst = parse_reg(text[..eq].trim(), line)?;
    let rhs = text[eq + 1..].trim();
    if let Some(inst) = parse_callish(rhs, Some(dst), line)? {
        return Ok(inst);
    }
    let (mnemonic, rest) = match rhs.find(' ') {
        Some(p) => (&rhs[..p], rhs[p + 1..].trim()),
        None => (rhs, ""),
    };
    match mnemonic {
        "const" => Ok(Inst::Const {
            dst,
            value: match parse_operand(rest, line)? {
                Operand::Imm(v) => v,
                Operand::Reg(_) => {
                    return Err(ParseModuleError {
                        line,
                        message: "const requires an immediate".into(),
                    })
                }
            },
        }),
        "copy" => Ok(Inst::Copy {
            dst,
            src: parse_operand(rest, line)?,
        }),
        "ftoi" => Ok(Inst::Ftoi {
            dst,
            src: parse_operand(rest, line)?,
        }),
        "itof" => Ok(Inst::Itof {
            dst,
            src: parse_operand(rest, line)?,
        }),
        "load" => Ok(Inst::Load {
            dst,
            addr: parse_operand(rest, line)?,
        }),
        "alloc" => Ok(Inst::Alloc {
            dst,
            words: parse_operand(rest, line)?,
        }),
        m => {
            let args = split_args(rest, line)?;
            if let Some(op) = bin_op_from(m) {
                if args.len() != 2 {
                    return Err(ParseModuleError {
                        line,
                        message: format!("{m} needs two operands"),
                    });
                }
                return Ok(Inst::Bin {
                    op,
                    dst,
                    lhs: args[0],
                    rhs: args[1],
                });
            }
            if let Some(op) = cmp_op_from(m) {
                if args.len() != 2 {
                    return Err(ParseModuleError {
                        line,
                        message: format!("{m} needs two operands"),
                    });
                }
                return Ok(Inst::Cmp {
                    op,
                    dst,
                    lhs: args[0],
                    rhs: args[1],
                });
            }
            Err(ParseModuleError {
                line,
                message: format!("unknown mnemonic {m:?}"),
            })
        }
    }
}

fn parse_term(text: &str, line: usize) -> Result<Term, ParseModuleError> {
    if let Some(rest) = text.strip_prefix("br ") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(ParseModuleError {
                line,
                message: "br needs cond, then, else".into(),
            });
        }
        return Ok(Term::Br {
            cond: parse_operand(parts[0], line)?,
            then_: parse_block_id(parts[1], line)?,
            else_: parse_block_id(parts[2], line)?,
            site: BranchId(u32::MAX),
        });
    }
    if let Some(rest) = text.strip_prefix("jmp ") {
        return Ok(Term::Jmp {
            target: parse_block_id(rest.trim(), line)?,
        });
    }
    if text == "ret" {
        return Ok(Term::Ret { value: None });
    }
    if let Some(rest) = text.strip_prefix("ret ") {
        return Ok(Term::Ret {
            value: Some(parse_operand(rest, line)?),
        });
    }
    Err(ParseModuleError {
        line,
        message: format!("unrecognized terminator {text:?}"),
    })
}

fn parse_func_header(
    header: &str,
    line: usize,
) -> Result<(String, u32, u32, BlockId), ParseModuleError> {
    // func @name(N) regs=M entry=bK {
    let fail = |msg: &str| ParseModuleError {
        line,
        message: msg.to_string(),
    };
    let rest = header
        .strip_prefix("func ")
        .ok_or_else(|| fail("expected `func`"))?
        .trim();
    let rest = rest
        .strip_prefix('@')
        .ok_or_else(|| fail("expected @name"))?;
    let open = rest.find('(').ok_or_else(|| fail("expected ("))?;
    let name = rest[..open].to_string();
    let close = rest.find(')').ok_or_else(|| fail("expected )"))?;
    let n_params: u32 = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| fail("bad param count"))?;
    let tail = rest[close + 1..].trim();
    let mut regs = None;
    let mut entry = BlockId(0);
    for tok in tail.split_whitespace() {
        if let Some(v) = tok.strip_prefix("regs=") {
            regs = Some(v.parse::<u32>().map_err(|_| fail("bad regs="))?);
        } else if let Some(v) = tok.strip_prefix("entry=") {
            entry = parse_block_id(v, line)?;
        } else if tok == "{" {
            break;
        } else {
            return Err(fail("unexpected token in func header"));
        }
    }
    let regs = regs.ok_or_else(|| fail("missing regs="))?;
    Ok((name, n_params, regs, entry))
}

/// Parses a module from its textual form.
///
/// Branch site ids in the input are ignored; every function's branches are
/// renumbered as functions are added to the module, so
/// `parse_module(&m.to_string())` reproduces `m` (sites included) whenever
/// `m` itself was densely numbered.
///
/// # Errors
///
/// Returns a [`ParseModuleError`] carrying the offending line.
pub fn parse_module(src: &str) -> Result<Module, ParseModuleError> {
    let mut p = Parser::new(src);
    let mut module = Module::new();

    // Optional module header.
    if let Some((line, l)) = p.peek() {
        if let Some(rest) = l.strip_prefix("module") {
            p.next();
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("globals=") {
                    module.globals = v.parse().map_err(|_| ParseModuleError {
                        line,
                        message: "bad globals=".into(),
                    })?;
                }
            }
        }
    }

    while let Some((line, l)) = p.next() {
        if !l.starts_with("func ") {
            return p.err(line, format!("expected `func`, found {l:?}"));
        }
        let (name, n_params, n_regs, entry) = parse_func_header(l, line)?;
        let mut blocks: Vec<Block> = Vec::new();
        let mut cur: Option<(Vec<Inst>, Option<Term>)> = None;
        loop {
            let Some((line, l)) = p.next() else {
                return p.err(0, "unexpected end of input in function body");
            };
            if l == "}" {
                if let Some((insts, term)) = cur.take() {
                    let term = term.ok_or_else(|| ParseModuleError {
                        line,
                        message: "block missing terminator".into(),
                    })?;
                    blocks.push(Block { insts, term });
                }
                break;
            }
            if let Some(label) = l.strip_suffix(':') {
                let id = parse_block_id(label, line)?;
                if id.index() != blocks.len() + usize::from(cur.is_some()) {
                    return p.err(line, format!("block labels must be dense, got {label}"));
                }
                if let Some((insts, term)) = cur.take() {
                    let term = term.ok_or_else(|| ParseModuleError {
                        line,
                        message: "previous block missing terminator".into(),
                    })?;
                    blocks.push(Block { insts, term });
                }
                cur = Some((Vec::new(), None));
                continue;
            }
            let Some((insts, term)) = cur.as_mut() else {
                return p.err(line, "instruction before first block label");
            };
            if term.is_some() {
                return p.err(line, "instruction after terminator");
            }
            if l.starts_with("br ") || l.starts_with("jmp ") || l == "ret" || l.starts_with("ret ")
            {
                *term = Some(parse_term(l, line)?);
            } else {
                insts.push(parse_inst(l, line)?);
            }
        }
        let mut func = Function {
            name,
            n_params,
            n_regs,
            blocks,
            entry,
        };
        let used = max_reg_in_function(&func);
        if used > func.n_regs {
            func.n_regs = used;
        }
        module.push_function(func);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn sample_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.iconst(3);
        let y = b.reg();
        b.mul(y, x.into(), Operand::imm(4));
        b.store(Operand::imm(0), y.into());
        let z = b.reg();
        b.load(z, Operand::imm(0));
        b.out(z.into());
        let t = b.new_block();
        let e = b.new_block();
        let c = b.gt(z.into(), Operand::imm(10));
        b.br(c, t, e);
        b.switch_to(t);
        b.call(None, "leaf", vec![z.into()]);
        b.ret(Some(Operand::fimm(2.5)));
        b.switch_to(e);
        b.ret(None);
        let mut m = Module::new();
        m.globals = 2;
        m.push_function(b.finish());
        let mut lf = FunctionBuilder::new("leaf", 1);
        let s = lf.rand(Operand::imm(7));
        lf.ret(Some(s.into()));
        m.push_function(lf.finish());
        m
    }

    #[test]
    fn round_trip() {
        let m = sample_module();
        let text = m.to_string();
        let parsed = parse_module(&text).expect("parse failed");
        assert_eq!(parsed, m);
    }

    #[test]
    fn parse_errors_carry_line() {
        let err = parse_module("func @f(0) regs=1 entry=b0 {\nb0:\n  r0 = bogus 1\n  ret\n}")
            .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "
            ; leading comment
            module globals=1

            func @f(0) regs=1 entry=b0 {
            b0:
              r0 = const 1 ; trailing
              ret r0
            }
        ";
        let m = parse_module(src).unwrap();
        assert_eq!(m.globals, 1);
        assert_eq!(m.function_count(), 1);
        assert_eq!(m.verify(), Ok(()));
    }

    #[test]
    fn missing_terminator_is_error() {
        let err = parse_module("func @f(0) regs=0 entry=b0 {\nb0:\n}").unwrap_err();
        assert!(err.message.contains("terminator"));
    }

    #[test]
    fn float_immediates_parse() {
        let src = "func @f(0) regs=1 entry=b0 {\nb0:\n  r0 = const 1.5f\n  ret r0\n}";
        let m = parse_module(src).unwrap();
        let f = m.function(crate::FuncId(0));
        assert_eq!(
            f.blocks[0].insts[0],
            Inst::Const {
                dst: Reg(0),
                value: Value::Float(1.5)
            }
        );
    }

    #[test]
    fn dense_labels_enforced() {
        let err = parse_module("func @f(0) regs=0 entry=b0 {\nb5:\n  ret\n}").unwrap_err();
        assert!(err.message.contains("dense"));
    }
}
