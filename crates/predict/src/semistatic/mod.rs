//! Semi-static (profile-driven) prediction strategies — §2.2 and §3 of the
//! paper.
//!
//! All of these are *oracle* profiles in the sense of Fisher &
//! Freudenberger's "self prediction": the profile and the evaluation use
//! the same run. Cross-dataset sensitivity is explored separately by the
//! workloads' multiple input seeds.

mod profile;

pub use profile::{profile_prediction, profile_report, profile_report_from_stats};

use brepl_trace::Trace;

use crate::pattern::{HistoryKind, PatternTableSet};
use crate::report::Report;

/// The paper's *k bit correlation* strategy: one global history register of
/// `bits` bits, a pattern table per branch, each pattern predicting its
/// majority direction.
pub fn correlation_report(trace: &Trace, bits: u32) -> Report {
    PatternTableSet::build(trace, HistoryKind::Global, bits).report()
}

/// The paper's *k bit loop* strategy: per-branch local history registers.
pub fn loop_report(trace: &Trace, bits: u32) -> Report {
    PatternTableSet::build(trace, HistoryKind::Local, bits).report()
}

/// The paper's *loop–correlation* strategy: for every branch take the
/// better of 1-bit global correlation and 9-bit local loop history.
///
/// Returns the combined report.
pub fn loop_correlation_report(trace: &Trace) -> Report {
    combine_best(&correlation_report(trace, 1), &loop_report(trace, 9))
}

/// Per-site best-of combination of two reports over the same trace.
///
/// # Panics
///
/// Panics if the two reports disagree on a site's execution count, which
/// would mean they were computed from different traces.
pub fn combine_best(a: &Report, b: &Report) -> Report {
    let mut out = Report::new();
    let mut sites: Vec<_> = a.iter_sites().collect();
    for (s, t, w) in b.iter_sites() {
        if let Some(entry) = sites.iter_mut().find(|(s2, _, _)| *s2 == s) {
            assert_eq!(entry.1, t, "reports cover different traces at {s}");
            entry.2 = entry.2.min(w);
        } else {
            sites.push((s, t, w));
        }
    }
    for (s, t, w) in sites {
        out.record_bulk(s, t, w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::BranchId;
    use brepl_trace::TraceEvent;

    fn ev(site: u32, taken: bool) -> TraceEvent {
        TraceEvent {
            site: BranchId(site),
            taken,
        }
    }

    /// Two branches: one alternating (loop history wins), one copying the
    /// other's *previous* outcome pattern from a different site (global
    /// correlation wins).
    fn mixed_trace() -> Trace {
        let mut t = Trace::new();
        let mut x = 7u64;
        for i in 0..3000usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noisy = x >> 33 & 1 == 1;
            t.push(ev(0, noisy));
            t.push(ev(1, noisy)); // correlated with site 0
            t.push(ev(2, i % 2 == 0)); // alternating
        }
        t
    }

    #[test]
    fn loop_correlation_takes_per_site_best() {
        let t = mixed_trace();
        let corr = correlation_report(&t, 1);
        let loop9 = loop_report(&t, 9);
        let best = loop_correlation_report(&t);
        assert!(best.mispredictions() <= corr.mispredictions());
        assert!(best.mispredictions() <= loop9.mispredictions());
        // Site 1 should be (nearly) free under the combination: global
        // 1-bit history holds site 0's outcome when site 1 is predicted.
        let (t1, w1) = best.site(BranchId(1));
        assert!((w1 as f64) / (t1 as f64) < 0.01);
        // Site 2 should be free as well, via local history.
        let (_, w2) = best.site(BranchId(2));
        assert_eq!(w2, 0);
    }

    #[test]
    fn combine_best_is_commutative() {
        let t = mixed_trace();
        let a = correlation_report(&t, 1);
        let b = loop_report(&t, 9);
        let ab = combine_best(&a, &b);
        let ba = combine_best(&b, &a);
        assert_eq!(ab.mispredictions(), ba.mispredictions());
        assert_eq!(ab.total(), ba.total());
    }

    #[test]
    #[should_panic(expected = "different traces")]
    fn combine_different_traces_panics() {
        let t1: Trace = vec![ev(0, true)].into_iter().collect();
        let t2: Trace = vec![ev(0, true), ev(0, false)].into_iter().collect();
        let _ = combine_best(&profile_report(&t1), &profile_report(&t2));
    }
}
