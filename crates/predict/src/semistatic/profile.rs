//! Plain profile prediction (McFarling & Hennessy 1986): predict every
//! branch to its most frequent direction.

use brepl_trace::{Trace, TraceStats};

use crate::eval::StaticPrediction;
use crate::report::Report;

/// Builds the per-site majority-direction prediction from profile
/// statistics.
pub fn profile_prediction(stats: &TraceStats) -> StaticPrediction {
    let mut p = StaticPrediction::with_default(true);
    for (site, counts) in stats.iter_executed() {
        p.set(site, counts.majority());
    }
    p
}

/// The profile-prediction report for a trace in closed form: every site
/// mispredicts exactly its minority count.
pub fn profile_report(trace: &Trace) -> Report {
    profile_report_from_stats(&trace.stats())
}

/// [`profile_report`] from already-computed statistics — the closed form
/// needs nothing but the per-site counts, so callers that hold a
/// [`TraceStats`] (the fused analytics pass, the pipeline) skip the trace
/// walk entirely.
pub fn profile_report_from_stats(stats: &TraceStats) -> Report {
    let mut r = Report::new();
    for (site, counts) in stats.iter_executed() {
        r.record_bulk(site, counts.total(), counts.minority_count());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_static;
    use brepl_ir::BranchId;
    use brepl_trace::TraceEvent;

    fn biased_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..100 {
            t.push(TraceEvent {
                site: BranchId(0),
                taken: i % 10 != 0, // 90% taken
            });
            t.push(TraceEvent {
                site: BranchId(1),
                taken: i % 4 == 0, // 25% taken
            });
        }
        t
    }

    #[test]
    fn majority_directions_selected() {
        let t = biased_trace();
        let p = profile_prediction(&t.stats());
        assert!(p.get(BranchId(0)));
        assert!(!p.get(BranchId(1)));
    }

    #[test]
    fn closed_form_matches_replay() {
        let t = biased_trace();
        let closed = profile_report(&t);
        let replayed = evaluate_static(&profile_prediction(&t.stats()), &t);
        assert_eq!(closed.mispredictions(), replayed.mispredictions());
        assert_eq!(closed.total(), replayed.total());
        // 10 + 25 wrong out of 200.
        assert_eq!(closed.mispredictions(), 35);
    }
}
