//! # brepl-predict — the branch predictor zoo
//!
//! Implements every prediction strategy the paper compares in §2–§3:
//!
//! * **Static** (no profile): Smith's heuristics ([`stat::smith`]), the
//!   Ball–Larus heuristic chain ([`stat::ball_larus`]), and the
//!   proof-guided loop/default chain ([`stat::proof_guided`]) that lets a
//!   caller pin directions proved by static analysis.
//! * **Dynamic** (run-time state): last-direction, n-bit saturating
//!   counters, and the full family of Yeh–Patt two-level adaptive
//!   predictors including the paper's 4K-bit configuration
//!   ([`dynamic`]).
//! * **Semi-static** (profile-driven): plain profile prediction, and the
//!   history-pattern-table schemes — *k*-bit global-history correlation and
//!   *k*-bit local-history loop prediction plus their per-branch best-of
//!   combination ([`semistatic`], [`PatternTableSet`]).
//!
//! Everything is evaluated against a [`brepl_trace::Trace`] and reports a
//! [`Report`] with total and per-site misprediction counts.
//!
//! ```
//! use brepl_ir::BranchId;
//! use brepl_trace::{Trace, TraceEvent};
//! use brepl_predict::dynamic::TwoBitCounters;
//! use brepl_predict::simulate_dynamic;
//!
//! // A strongly biased branch: the 2-bit counter nails it after warmup.
//! let trace: Trace = (0..1000)
//!     .map(|i| TraceEvent { site: BranchId(0), taken: i % 50 != 0 })
//!     .collect();
//! let report = simulate_dynamic(&mut TwoBitCounters::new(), &trace);
//! assert!(report.misprediction_percent() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod semistatic;
pub mod stat;

mod eval;
mod fused;
mod pattern;
mod report;

pub use eval::{evaluate_static, simulate_dynamic, DynamicPredictor, StaticPrediction};
pub use fused::{FusedAnalytics, FUSED_LOCAL_BITS};
pub use pattern::{HistoryKind, PatternTable, PatternTableSet, SuffixAggregate};
pub use report::Report;
