//! A no-profile static predictor that consumes *proofs*: directions
//! pinned by whole-module abstract interpretation (supplied by the
//! caller, typically `brepl_analysis::classify_module`) take absolute
//! precedence, the Ball–Larus *loop* heuristic covers the rest of the
//! loop branches, and everything else defaults to taken.
//!
//! The proofs arrive as plain `(site, direction)` pairs rather than an
//! analysis type so this crate stays independent of `brepl-analysis`
//! (which depends on *us* for [`StaticPrediction`]).

use brepl_cfg::{Cfg, ClassifiedBranches, DomTree, LoopForest};
use brepl_ir::{BranchId, Module, Term};

use crate::eval::StaticPrediction;

/// What decided each branch (for diagnostics and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProofSource {
    /// A static proof pinned the direction.
    Proof,
    /// The loop heuristic: back edges taken, loop exits stay inside.
    Loop,
    /// Nobody claimed the branch; default (taken).
    Default,
}

/// The proof-guided static prediction for a whole module.
#[derive(Clone, Debug)]
pub struct ProofGuided {
    prediction: StaticPrediction,
    decided_by: Vec<(BranchId, ProofSource)>,
}

impl ProofGuided {
    /// Builds the prediction for `module`, giving `proofs` precedence
    /// over the loop heuristic.
    pub fn analyze(module: &Module, proofs: &[(BranchId, bool)]) -> Self {
        let mut prediction = StaticPrediction::with_default(true);
        let mut decided_by = Vec::new();
        for (_, func) in module.iter_functions() {
            let cfg = Cfg::new(func);
            let dom = DomTree::new(&cfg);
            let forest = LoopForest::new(&cfg, &dom);
            let classes = ClassifiedBranches::analyze(func, &forest);
            for (_, block) in func.iter_blocks() {
                let Term::Br { site, .. } = block.term else {
                    continue;
                };
                let (guess, source) =
                    if let Some(&(_, dir)) = proofs.iter().find(|(s, _)| *s == site) {
                        (dir, ProofSource::Proof)
                    } else if let Some(info) = classes.by_site(site) {
                        if info.taken_is_back_edge {
                            (true, ProofSource::Loop)
                        } else if info.innermost_loop.is_some()
                            && info.then_in_loop != info.else_in_loop
                        {
                            // A loop-exit branch: predict the direction that
                            // stays inside the loop.
                            (info.then_in_loop, ProofSource::Loop)
                        } else {
                            (true, ProofSource::Default)
                        }
                    } else {
                        (true, ProofSource::Default)
                    };
                prediction.set(site, guess);
                decided_by.push((site, source));
            }
        }
        ProofGuided {
            prediction,
            decided_by,
        }
    }

    /// The resulting per-site static prediction.
    pub fn prediction(&self) -> &StaticPrediction {
        &self.prediction
    }

    /// Which source decided each branch, in block order.
    pub fn decided_by(&self) -> &[(BranchId, ProofSource)] {
        &self.decided_by
    }

    /// Counts of branches decided by `(proof, loop, default)`.
    pub fn source_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for (_, s) in &self.decided_by {
            match s {
                ProofSource::Proof => c.0 += 1,
                ProofSource::Loop => c.1 += 1,
                ProofSource::Default => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::{FunctionBuilder, Operand};
    use brepl_trace::{Trace, TraceEvent};

    /// A counted loop (header site 0, taken stays in) followed by a
    /// non-loop branch (site 1).
    fn looped_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let done = b.new_block();
        let i = b.reg();
        b.const_int(i, 0);
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(Operand::Reg(i), Operand::imm(10));
        b.br(c, body, exit);
        b.switch_to(body);
        b.add(i, Operand::Reg(i), Operand::imm(1));
        b.jmp(head);
        b.switch_to(exit);
        let r = b.rand(Operand::imm(2));
        b.br(r, done, done);
        b.switch_to(done);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m.renumber_branches();
        m
    }

    #[test]
    fn proofs_override_heuristics_and_loop_covers_headers() {
        let m = looped_module();
        // No proofs: the loop heuristic keeps the header in-loop
        // (taken), the non-loop branch defaults to taken.
        let pg = ProofGuided::analyze(&m, &[]);
        assert!(pg.prediction().get(BranchId(0)));
        assert!(pg.prediction().get(BranchId(1)));
        assert_eq!(pg.source_counts(), (0, 1, 1));

        // A proof pinning the header not-taken wins over the heuristic.
        let pg = ProofGuided::analyze(&m, &[(BranchId(0), false)]);
        assert!(!pg.prediction().get(BranchId(0)));
        assert_eq!(pg.source_counts(), (1, 0, 1));
    }

    #[test]
    fn loop_heuristic_beats_default_on_a_counted_loop_trace() {
        let m = looped_module();
        let pg = ProofGuided::analyze(&m, &[]);
        // The header goes taken 10 of 11 times; predicting taken gives
        // exactly one miss.
        let trace: Trace = (0..11)
            .map(|n| TraceEvent {
                site: BranchId(0),
                taken: n < 10,
            })
            .collect();
        let report = crate::evaluate_static(pg.prediction(), &trace);
        assert_eq!(report.mispredictions(), 1);
    }
}
