//! Static (no-profile) prediction strategies — §2.1 of the paper.

pub mod ball_larus;
pub mod proof_guided;
pub mod smith;

use brepl_ir::{CmpOp, Function, Inst, Operand, Term};

/// Finds the comparison feeding a block's conditional branch, if the
/// condition register is defined by a [`Inst::Cmp`] in the *same* block
/// (the common shape our builder and most compilers emit).
pub(crate) fn branch_condition(
    func: &Function,
    block: brepl_ir::BlockId,
) -> Option<(CmpOp, Operand, Operand)> {
    let b = func.block(block);
    let Term::Br { cond, .. } = &b.term else {
        return None;
    };
    let cond_reg = cond.reg()?;
    for inst in b.insts.iter().rev() {
        match inst {
            Inst::Cmp { op, dst, lhs, rhs } if *dst == cond_reg => return Some((*op, *lhs, *rhs)),
            _ if inst.def() == Some(cond_reg) => return None,
            _ => {}
        }
    }
    None
}
