//! Smith's 1981 static heuristics: always-taken, backward-taken (BTFN),
//! and opcode-based prediction.

use brepl_ir::{CmpOp, Module, Term, Value};

use crate::eval::StaticPrediction;
use crate::stat::branch_condition;

/// Predict that every branch is taken.
pub fn always_taken() -> StaticPrediction {
    StaticPrediction::with_default(true)
}

/// Predict that backward branches are taken and forward branches are not
/// (BTFN). "Backward" uses block order as the proxy for address order,
/// which matches how our workloads lay out loops (the builder emits loop
/// headers before bodies, bodies branch back to lower block ids).
pub fn backward_taken(module: &Module) -> StaticPrediction {
    let mut p = StaticPrediction::with_default(true);
    for (_, func) in module.iter_functions() {
        for (bid, block) in func.iter_blocks() {
            if let Term::Br { then_, site, .. } = block.term {
                p.set(site, then_.index() <= bid.index());
            }
        }
    }
    p
}

/// Predict the direction from the comparison opcode: equality tests and
/// `< 0`-style tests are predicted *false* (not taken), their negations
/// *true* — Smith's observation that certain operation codes are
/// predominantly one-directional.
pub fn opcode_based(module: &Module) -> StaticPrediction {
    let mut p = StaticPrediction::with_default(true);
    for (_, func) in module.iter_functions() {
        for (bid, block) in func.iter_blocks() {
            let Term::Br { site, .. } = block.term else {
                continue;
            };
            let Some((op, lhs, rhs)) = branch_condition(func, bid) else {
                continue;
            };
            let zero_rhs = matches!(rhs, brepl_ir::Operand::Imm(Value::Int(0)));
            let zero_lhs = matches!(lhs, brepl_ir::Operand::Imm(Value::Int(0)));
            let guess = match op {
                CmpOp::Eq => false,
                CmpOp::Ne => true,
                CmpOp::Lt | CmpOp::Le if zero_rhs => false,
                CmpOp::Gt | CmpOp::Ge if zero_lhs => false,
                _ => continue, // no opinion; keep default
            };
            p.set(site, guess);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_static;
    use brepl_ir::{FunctionBuilder, Operand};
    use brepl_sim::{Machine, RunConfig};

    /// A counted loop: BTFN should predict its back edge correctly.
    fn loop_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let i = b.reg();
        b.const_int(i, 0);
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        let c = b.lt(i.into(), Operand::imm(100));
        b.br(c, body, done);
        b.switch_to(body);
        b.add(i, i.into(), Operand::imm(1));
        b.jmp(head);
        b.switch_to(done);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn always_taken_has_no_entries() {
        let p = always_taken();
        assert!(p.is_empty());
        assert!(p.get(brepl_ir::BranchId(7)));
    }

    #[test]
    fn btfn_on_counted_loop() {
        let m = loop_module();
        let trace = Machine::new(&m, RunConfig::default())
            .unwrap()
            .run("main", &[])
            .unwrap()
            .trace;
        // The loop branch here is forward-taken (head -> body), so BTFN
        // actually predicts not-taken and gets ~100% wrong — exactly the
        // kind of program Smith reports high misprediction on.
        let p = backward_taken(&m);
        let r = evaluate_static(&p, &trace);
        assert!(r.misprediction_percent() > 90.0);
        // Whereas always-taken is nearly perfect on this loop.
        let r2 = evaluate_static(&always_taken(), &trace);
        assert!(r2.misprediction_percent() < 2.0);
    }

    #[test]
    fn opcode_heuristic_reads_comparisons() {
        let mut b = FunctionBuilder::new("main", 1);
        let x = b.param(0);
        let t1 = b.new_block();
        let t2 = b.new_block();
        let t3 = b.new_block();
        // eq test -> predicted not taken
        let c = b.eq(x.into(), Operand::imm(3));
        b.br(c, t1, t2);
        b.switch_to(t1);
        b.ret(None);
        b.switch_to(t2);
        // lt 0 test -> predicted not taken
        let c2 = b.lt(x.into(), Operand::imm(0));
        b.br(c2, t1, t3);
        b.switch_to(t3);
        b.ret(None);
        let mut m = Module::new();
        m.push_function(b.finish());
        let p = opcode_based(&m);
        assert_eq!(p.len(), 2);
        assert!(!p.get(brepl_ir::BranchId(0)));
        assert!(!p.get(brepl_ir::BranchId(1)));
    }
}
