//! The Ball–Larus heuristic chain ("Branch Prediction for Free",
//! PLDI 1993), in the ordering the paper reports as most successful:
//! **Pointer, Call, Opcode, Return, Store, Loop, Guard**.
//!
//! Each heuristic either produces a prediction for a branch or abstains;
//! the first heuristic with an opinion wins, and branches nobody claims
//! default to taken.
//!
//! ### IR-level substitutions
//!
//! Ball–Larus define their heuristics over real machine code. Our IR has
//! no pointer type, so the *pointer* heuristic keys on equality
//! comparisons between two registers (address-style comparisons are
//! overwhelmingly `==`/`!=` of computed values, and "pointer comparisons
//! are usually unequal" translates directly); every other heuristic maps
//! one-to-one.

use brepl_cfg::{Cfg, ClassifiedBranches, DomTree, LoopForest};
use brepl_ir::{BlockId, CmpOp, Function, Inst, Module, Operand, Term, Value};

use crate::eval::StaticPrediction;
use crate::stat::branch_condition;

/// Which heuristic decided a branch (for diagnostics and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Register equality comparison predicted unequal.
    Pointer,
    /// Avoid successors that call.
    Call,
    /// Comparison opcode decides.
    Opcode,
    /// Avoid successors that return.
    Return,
    /// Avoid successors that store.
    Store,
    /// Loop back edges are taken, exits are not.
    Loop,
    /// Prefer the successor that uses the branch operands.
    Guard,
    /// No heuristic fired; default (taken).
    Default,
}

/// The Ball–Larus prediction for a whole module, with per-branch
/// attribution of the deciding heuristic.
#[derive(Clone, Debug)]
pub struct BallLarus {
    prediction: StaticPrediction,
    decided_by: Vec<(brepl_ir::BranchId, Heuristic)>,
}

impl BallLarus {
    /// Runs the heuristic chain over every branch of `module`.
    pub fn analyze(module: &Module) -> Self {
        let mut prediction = StaticPrediction::with_default(true);
        let mut decided_by = Vec::new();
        for (_, func) in module.iter_functions() {
            let cfg = Cfg::new(func);
            let dom = DomTree::new(&cfg);
            let forest = LoopForest::new(&cfg, &dom);
            let classes = ClassifiedBranches::analyze(func, &forest);
            for (bid, block) in func.iter_blocks() {
                let Term::Br {
                    then_, else_, site, ..
                } = block.term
                else {
                    continue;
                };
                let (guess, heuristic) = chain(func, &classes, bid, then_, else_);
                prediction.set(site, guess);
                decided_by.push((site, heuristic));
            }
        }
        BallLarus {
            prediction,
            decided_by,
        }
    }

    /// The resulting per-site prediction.
    pub fn prediction(&self) -> &StaticPrediction {
        &self.prediction
    }

    /// Which heuristic decided each branch.
    pub fn decided_by(&self) -> &[(brepl_ir::BranchId, Heuristic)] {
        &self.decided_by
    }
}

fn chain(
    func: &Function,
    classes: &ClassifiedBranches,
    block: BlockId,
    then_: BlockId,
    else_: BlockId,
) -> (bool, Heuristic) {
    if let Some(g) = pointer(func, block) {
        return (g, Heuristic::Pointer);
    }
    if let Some(g) = avoid_successor(func, then_, else_, block_calls) {
        return (g, Heuristic::Call);
    }
    if let Some(g) = opcode(func, block) {
        return (g, Heuristic::Opcode);
    }
    if let Some(g) = avoid_successor(func, then_, else_, block_returns) {
        return (g, Heuristic::Return);
    }
    if let Some(g) = avoid_successor(func, then_, else_, block_stores) {
        return (g, Heuristic::Store);
    }
    if let Some(g) = loop_direction(classes, block) {
        return (g, Heuristic::Loop);
    }
    if let Some(g) = guard(func, block, then_, else_) {
        return (g, Heuristic::Guard);
    }
    (true, Heuristic::Default)
}

/// Pointer: register-register equality comparisons predict unequal.
fn pointer(func: &Function, block: BlockId) -> Option<bool> {
    let (op, lhs, rhs) = branch_condition(func, block)?;
    let both_regs = lhs.reg().is_some() && rhs.reg().is_some();
    if !both_regs {
        return None;
    }
    match op {
        CmpOp::Eq => Some(false),
        CmpOp::Ne => Some(true),
        _ => None,
    }
}

/// Opcode: comparisons against zero and equality with immediates predict
/// the "unusual" outcome false.
fn opcode(func: &Function, block: BlockId) -> Option<bool> {
    let (op, lhs, rhs) = branch_condition(func, block)?;
    let zero_rhs = matches!(rhs, Operand::Imm(Value::Int(0)));
    let zero_lhs = matches!(lhs, Operand::Imm(Value::Int(0)));
    match op {
        CmpOp::Eq => Some(false),
        CmpOp::Ne => Some(true),
        CmpOp::Lt | CmpOp::Le if zero_rhs => Some(false),
        CmpOp::Gt | CmpOp::Ge if zero_lhs => Some(false),
        _ => None,
    }
}

/// Shared shape of Call/Return/Store: if exactly one successor has the
/// property, avoid it.
fn avoid_successor(
    func: &Function,
    then_: BlockId,
    else_: BlockId,
    property: fn(&Function, BlockId) -> bool,
) -> Option<bool> {
    let t = property(func, then_);
    let e = property(func, else_);
    match (t, e) {
        (true, false) => Some(false), // avoid taken successor
        (false, true) => Some(true),  // avoid not-taken successor
        _ => None,
    }
}

fn block_calls(func: &Function, b: BlockId) -> bool {
    func.block(b)
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Call { .. }))
}

fn block_returns(func: &Function, b: BlockId) -> bool {
    matches!(func.block(b).term, Term::Ret { .. })
}

fn block_stores(func: &Function, b: BlockId) -> bool {
    func.block(b)
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Store { .. }))
}

/// Loop: predict the direction that stays in / re-enters the loop.
fn loop_direction(classes: &ClassifiedBranches, block: BlockId) -> Option<bool> {
    let info = classes.branches().iter().find(|b| b.block == block)?;
    match info.class {
        brepl_cfg::BranchClass::LoopExit => {
            // Exactly one side leaves the innermost loop; predict the side
            // that stays.
            match (info.then_in_loop, info.else_in_loop) {
                (true, false) => Some(true),
                (false, true) => Some(false),
                _ => None,
            }
        }
        brepl_cfg::BranchClass::IntraLoop => info.taken_is_back_edge.then_some(true),
        brepl_cfg::BranchClass::NonLoop => None,
    }
}

/// Guard: if a register used by the comparison is read in exactly one
/// successor's instructions, predict the branch toward that successor.
fn guard(func: &Function, block: BlockId, then_: BlockId, else_: BlockId) -> Option<bool> {
    let (_, lhs, rhs) = branch_condition(func, block)?;
    let regs: Vec<_> = [lhs.reg(), rhs.reg()].into_iter().flatten().collect();
    if regs.is_empty() {
        return None;
    }
    let uses = |b: BlockId| -> bool {
        func.block(b).insts.iter().any(|i| {
            let mut found = false;
            i.for_each_use(|o| {
                if let Some(r) = o.reg() {
                    if regs.contains(&r) {
                        found = true;
                    }
                }
            });
            found
        })
    };
    match (uses(then_), uses(else_)) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brepl_ir::FunctionBuilder;

    fn single_fn_module(b: FunctionBuilder) -> Module {
        let mut m = Module::new();
        m.push_function(b.finish());
        m
    }

    #[test]
    fn pointer_heuristic_fires_on_reg_equality() {
        let mut b = FunctionBuilder::new("main", 2);
        let x = b.param(0);
        let y = b.param(1);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.eq(x.into(), y.into());
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let m = single_fn_module(b);
        let bl = BallLarus::analyze(&m);
        assert_eq!(bl.decided_by()[0].1, Heuristic::Pointer);
        assert!(!bl.prediction().get(bl.decided_by()[0].0));
    }

    #[test]
    fn call_heuristic_avoids_calling_block() {
        let mut b = FunctionBuilder::new("main", 2);
        let x = b.param(0);
        let y = b.param(1);
        let t = b.new_block();
        let e = b.new_block();
        // lt comparison so pointer/opcode stay silent.
        let c = b.lt(x.into(), y.into());
        b.br(c, t, e);
        b.switch_to(t);
        b.call(None, "leaf", vec![]);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut m = single_fn_module(b);
        let mut leaf = FunctionBuilder::new("leaf", 0);
        leaf.ret(None);
        m.push_function(leaf.finish());
        let bl = BallLarus::analyze(&m);
        let (site, h) = bl.decided_by()[0];
        assert_eq!(h, Heuristic::Call);
        assert!(!bl.prediction().get(site), "avoid the calling successor");
    }

    #[test]
    fn loop_heuristic_predicts_back_edge() {
        let mut b = FunctionBuilder::new("main", 2);
        let x = b.param(0);
        let y = b.param(1);
        let head = b.new_block();
        let exit = b.new_block();
        b.jmp(head);
        b.switch_to(head);
        // Self-loop latch: taken re-enters the loop. Both successors are
        // blocks without calls/returns... head loops, exit returns; Return
        // heuristic fires first in chain order? then_=head (no ret),
        // else_=exit (ret) -> Return heuristic says avoid exit -> taken.
        let c = b.lt(x.into(), y.into());
        b.br(c, head, exit);
        b.switch_to(exit);
        b.ret(None);
        let m = single_fn_module(b);
        let bl = BallLarus::analyze(&m);
        let (site, h) = bl.decided_by()[0];
        assert!(bl.prediction().get(site), "stay in the loop");
        assert!(matches!(h, Heuristic::Return | Heuristic::Loop));
    }

    #[test]
    fn guard_heuristic_prefers_operand_user() {
        let mut b = FunctionBuilder::new("main", 2);
        let x = b.param(0);
        let y = b.param(1);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.lt(x.into(), y.into());
        b.br(c, t, e);
        b.switch_to(t);
        let z = b.reg();
        b.add(z, x.into(), Operand::imm(1)); // uses x
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret(None);
        let m = single_fn_module(b);
        let bl = BallLarus::analyze(&m);
        let (site, h) = bl.decided_by()[0];
        assert_eq!(h, Heuristic::Guard);
        assert!(bl.prediction().get(site));
    }

    #[test]
    fn default_when_nothing_fires() {
        let mut b = FunctionBuilder::new("main", 2);
        let x = b.param(0);
        let y = b.param(1);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.lt(x.into(), y.into());
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret(None);
        let m = single_fn_module(b);
        let bl = BallLarus::analyze(&m);
        assert_eq!(bl.decided_by()[0].1, Heuristic::Default);
        assert!(bl.prediction().get(bl.decided_by()[0].0));
    }
}
