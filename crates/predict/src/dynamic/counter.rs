//! Saturating up/down counters (Smith 1981). A branch predicts taken when
//! its counter sits in the upper half of the value range; the counter
//! saturates at both ends. Smith found two bits best, which the paper
//! adopts as its "2 bit counter" comparison row.

use brepl_ir::BranchId;

use crate::eval::DynamicPredictor;

/// Per-branch n-bit saturating counter predictor with an unbounded
/// (per-site) table.
#[derive(Clone, Debug)]
pub struct SaturatingCounters {
    bits: u32,
    max: u8,
    threshold: u8,
    initial: u8,
    counters: Vec<u8>,
    name: &'static str,
}

impl SaturatingCounters {
    /// Creates a predictor with `bits`-wide counters, initialized to the
    /// weakly-taken state.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "counter bits must be in 1..=8");
        let max = ((1u16 << bits) - 1) as u8;
        let threshold = (1u16 << (bits - 1)) as u8;
        SaturatingCounters {
            bits,
            max,
            threshold,
            initial: threshold, // weakly taken
            counters: Vec::new(),
            name: match bits {
                1 => "1bit counter",
                2 => "2bit counter",
                3 => "3bit counter",
                _ => "nbit counter",
            },
        }
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    fn counter(&mut self, site: BranchId) -> &mut u8 {
        let i = site.index();
        if i >= self.counters.len() {
            let init = self.initial;
            self.counters.resize(i + 1, init);
        }
        &mut self.counters[i]
    }
}

impl DynamicPredictor for SaturatingCounters {
    fn predict(&mut self, site: BranchId) -> bool {
        let threshold = self.threshold;
        *self.counter(site) >= threshold
    }

    fn update(&mut self, site: BranchId, taken: bool) {
        let max = self.max;
        let c = self.counter(site);
        if taken {
            if *c < max {
                *c += 1;
            }
        } else if *c > 0 {
            *c -= 1;
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The classic two-bit counter table.
#[derive(Clone, Debug)]
pub struct TwoBitCounters(SaturatingCounters);

impl TwoBitCounters {
    /// Creates a two-bit counter predictor.
    pub fn new() -> Self {
        TwoBitCounters(SaturatingCounters::new(2))
    }
}

impl Default for TwoBitCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicPredictor for TwoBitCounters {
    fn predict(&mut self, site: BranchId) -> bool {
        self.0.predict(site)
    }

    fn update(&mut self, site: BranchId, taken: bool) {
        self.0.update(site, taken)
    }

    fn name(&self) -> &'static str {
        "2bit counter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::simulate_dynamic;
    use brepl_trace::{Trace, TraceEvent};

    fn trace_of(dirs: impl IntoIterator<Item = bool>) -> Trace {
        dirs.into_iter()
            .map(|taken| TraceEvent {
                site: BranchId(0),
                taken,
            })
            .collect()
    }

    #[test]
    fn saturates_at_both_ends() {
        let mut p = SaturatingCounters::new(2);
        for _ in 0..10 {
            p.update(BranchId(0), false);
        }
        assert!(!p.predict(BranchId(0)));
        // One taken outcome must not flip a saturated not-taken counter.
        p.update(BranchId(0), true);
        assert!(!p.predict(BranchId(0)));
        p.update(BranchId(0), true);
        assert!(p.predict(BranchId(0)));
    }

    #[test]
    fn two_bit_beats_last_direction_on_loop_exits() {
        // Loop that runs 10 iterations then exits, repeatedly: the single
        // not-taken exit should cost the 2-bit counter one miss, not two.
        let dirs: Vec<bool> = (0..1100).map(|i| i % 11 != 10).collect();
        let trace = trace_of(dirs.clone());
        let two_bit = simulate_dynamic(&mut TwoBitCounters::new(), &trace);
        let last = simulate_dynamic(&mut crate::dynamic::LastDirection::new(), &trace_of(dirs));
        assert!(two_bit.mispredictions() < last.mispredictions());
        assert_eq!(TwoBitCounters::new().name(), "2bit counter");
    }

    #[test]
    fn one_bit_counter_equals_last_direction_after_warmup() {
        let dirs: Vec<bool> = (0..500).map(|i| (i / 7) % 2 == 0).collect();
        let one_bit = simulate_dynamic(&mut SaturatingCounters::new(1), &trace_of(dirs.clone()));
        let last = simulate_dynamic(&mut crate::dynamic::LastDirection::new(), &trace_of(dirs));
        let diff = (one_bit.mispredictions() as i64 - last.mispredictions() as i64).unsigned_abs();
        assert!(diff <= 1, "only cold-start may differ, got {diff}");
    }

    #[test]
    #[should_panic(expected = "counter bits")]
    fn zero_bits_rejected() {
        let _ = SaturatingCounters::new(0);
    }

    #[test]
    fn bits_accessor() {
        assert_eq!(SaturatingCounters::new(3).bits(), 3);
    }
}
