//! Two-level adaptive predictors (Yeh & Patt 1992/1993, Pan/So/Rahmeh
//! 1992).
//!
//! The first level is a table of *history registers* recording recent
//! branch outcomes; the second is a table of *pattern tables* of two-bit
//! counters indexed by the history value. Yeh & Patt studied all nine
//! combinations of {global, per-set, per-address} history registers with
//! {global, per-set, per-address} pattern tables; [`TwoLevel`] implements
//! the full family, with finite tables and the aliasing that entails, the
//! way hardware would.

use brepl_ir::BranchId;

use crate::eval::DynamicPredictor;

/// First-level (history register) arrangement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegisterArrangement {
    /// One global register (GA*).
    Global,
    /// A set of registers selected by hashing the branch address (SA*).
    PerSet {
        /// Number of registers.
        sets: usize,
    },
    /// A large per-address table of registers, still finite (PA*).
    PerAddress {
        /// Number of table entries.
        entries: usize,
    },
}

/// Second-level (pattern table) arrangement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PatternArrangement {
    /// One pattern table shared by all branches (*Ag).
    Global,
    /// One pattern table per set of branches (*As).
    PerSet {
        /// Number of pattern tables.
        sets: usize,
    },
    /// One pattern table per address-table entry (*Ap).
    PerAddress {
        /// Number of pattern tables.
        entries: usize,
    },
}

/// A configurable two-level adaptive predictor.
#[derive(Clone, Debug)]
pub struct TwoLevel {
    history_bits: u32,
    registers: RegisterArrangement,
    patterns: PatternArrangement,
    /// History registers.
    hist: Vec<u32>,
    /// Two-bit counters, `tables × 2^history_bits`, row-major.
    counters: Vec<u8>,
    name: &'static str,
}

fn hash_site(site: BranchId, buckets: usize) -> usize {
    // Multiplicative hashing; buckets need not be a power of two.
    (site.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % buckets.max(1)
}

impl TwoLevel {
    /// Creates a two-level predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= history_bits <= 20` and all table sizes are
    /// non-zero.
    pub fn new(
        registers: RegisterArrangement,
        history_bits: u32,
        patterns: PatternArrangement,
    ) -> Self {
        assert!(
            (1..=20).contains(&history_bits),
            "history bits must be in 1..=20"
        );
        let register_count = match registers {
            RegisterArrangement::Global => 1,
            RegisterArrangement::PerSet { sets } => sets,
            RegisterArrangement::PerAddress { entries } => entries,
        };
        let pattern_tables = match patterns {
            PatternArrangement::Global => 1,
            PatternArrangement::PerSet { sets } => sets,
            PatternArrangement::PerAddress { entries } => entries,
        };
        assert!(register_count > 0 && pattern_tables > 0, "empty tables");
        let rows = 1usize << history_bits;
        TwoLevel {
            history_bits,
            registers,
            patterns,
            hist: vec![0; register_count],
            counters: vec![1; pattern_tables * rows], // weakly not-taken
            name: "two-level",
        }
    }

    /// The paper's comparison configuration: "a 1K entry 9 bit history
    /// register and a 1K entry pattern table with 2 bit counters" — 4K bits
    /// of pattern-table state (1024 × 2-bit counters via 9 history bits
    /// plus one address bit folded into the index) and per-address history
    /// registers.
    pub fn paper_4k() -> Self {
        let mut p = TwoLevel::new(
            RegisterArrangement::PerAddress { entries: 1024 },
            9,
            PatternArrangement::PerSet { sets: 2 },
        );
        p.name = "two level 4K bit";
        p
    }

    /// Yeh–Patt's best cost/accuracy point in the paper's citation: a
    /// history register per branch and a pattern table per set of branches.
    pub fn yeh_patt_pas(history_bits: u32, entries: usize, sets: usize) -> Self {
        let mut p = TwoLevel::new(
            RegisterArrangement::PerAddress { entries },
            history_bits,
            PatternArrangement::PerSet { sets },
        );
        p.name = "two-level PAs";
        p
    }

    /// Implementation cost in bits: history registers plus two-bit
    /// counters, the metric Yeh & Patt use to compare configurations.
    pub fn cost_bits(&self) -> usize {
        self.hist.len() * self.history_bits as usize + self.counters.len() * 2
    }

    /// History length in bits.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    fn register_index(&self, site: BranchId) -> usize {
        match self.registers {
            RegisterArrangement::Global => 0,
            RegisterArrangement::PerSet { sets } => hash_site(site, sets),
            RegisterArrangement::PerAddress { entries } => hash_site(site, entries),
        }
    }

    fn counter_index(&self, site: BranchId) -> usize {
        let table = match self.patterns {
            PatternArrangement::Global => 0,
            PatternArrangement::PerSet { sets } => hash_site(site, sets),
            PatternArrangement::PerAddress { entries } => hash_site(site, entries),
        };
        let history = self.hist[self.register_index(site)] as usize;
        table * (1usize << self.history_bits) + history
    }
}

impl DynamicPredictor for TwoLevel {
    fn predict(&mut self, site: BranchId) -> bool {
        self.counters[self.counter_index(site)] >= 2
    }

    fn update(&mut self, site: BranchId, taken: bool) {
        let ci = self.counter_index(site);
        let c = &mut self.counters[ci];
        if taken {
            if *c < 3 {
                *c += 1;
            }
        } else if *c > 0 {
            *c -= 1;
        }
        let ri = self.register_index(site);
        let mask = (1u32 << self.history_bits) - 1;
        self.hist[ri] = (self.hist[ri] << 1 | u32::from(taken)) & mask;
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::TwoBitCounters;
    use crate::eval::simulate_dynamic;
    use brepl_trace::{Trace, TraceEvent};

    fn site_trace(site: u32, dirs: impl IntoIterator<Item = bool>) -> Trace {
        dirs.into_iter()
            .map(|taken| TraceEvent {
                site: BranchId(site),
                taken,
            })
            .collect()
    }

    #[test]
    fn learns_periodic_patterns_that_defeat_counters() {
        // Period-3 pattern: taken taken not-taken. 2-bit counters sit just
        // below/above threshold and miss the not-taken every time; a
        // two-level predictor with >= 3 history bits learns it exactly.
        let dirs: Vec<bool> = (0..3000).map(|i| i % 3 != 2).collect();
        let trace = site_trace(0, dirs);
        let counters = simulate_dynamic(&mut TwoBitCounters::new(), &trace);
        let mut tl = TwoLevel::new(
            RegisterArrangement::PerAddress { entries: 64 },
            6,
            PatternArrangement::PerAddress { entries: 64 },
        );
        let two_level = simulate_dynamic(&mut tl, &trace);
        assert!(two_level.mispredictions() * 4 < counters.mispredictions());
        assert!(two_level.misprediction_percent() < 1.0);
    }

    #[test]
    fn global_history_exploits_cross_branch_correlation() {
        // Branch 1 copies branch 0's outcome. A global-history predictor
        // sees branch 0's outcome in the register when predicting branch 1.
        let mut trace = Trace::new();
        let mut x = 1u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let d = x >> 40 & 1 == 1;
            trace.push(TraceEvent {
                site: BranchId(0),
                taken: d,
            });
            trace.push(TraceEvent {
                site: BranchId(1),
                taken: d,
            });
        }
        let mut gag = TwoLevel::new(
            RegisterArrangement::Global,
            4,
            PatternArrangement::PerAddress { entries: 16 },
        );
        let correlated = simulate_dynamic(&mut gag, &trace);
        let (_, wrong1) = correlated.site(BranchId(1));
        assert!(
            (wrong1 as f64) < 0.02 * 5000.0,
            "correlated branch should be nearly free: {wrong1}"
        );
        // Purely local history sees a random stream for each branch.
        let mut pap = TwoLevel::new(
            RegisterArrangement::PerAddress { entries: 16 },
            4,
            PatternArrangement::PerAddress { entries: 16 },
        );
        let local = simulate_dynamic(&mut pap, &trace);
        let (_, lw1) = local.site(BranchId(1));
        assert!(lw1 > wrong1 * 10);
    }

    #[test]
    fn paper_config_cost() {
        let p = TwoLevel::paper_4k();
        // 1024 registers × 9 bits + 2 × 512-row... pattern state = 4K bits.
        let pattern_bits = 2 * (1 << 9) * 2;
        assert_eq!(p.cost_bits(), 1024 * 9 + pattern_bits);
        assert_eq!(p.history_bits(), 9);
        assert_eq!(TwoLevel::paper_4k().name(), "two level 4K bit");
    }

    #[test]
    fn aliasing_degrades_tiny_tables() {
        // 64 branches, each with a fixed pseudo-random direction, executed
        // round-robin. Per-branch state learns each one perfectly; a single
        // shared history register sees an aperiodic period-64 stream that a
        // 2-bit history cannot capture.
        let mut trace = Trace::new();
        for i in 0..20_000u32 {
            let site = i % 64;
            let taken = site.wrapping_mul(2654435761) >> 28 & 1 == 1;
            trace.push(TraceEvent {
                site: BranchId(site),
                taken,
            });
        }
        let mut tiny = TwoLevel::new(
            RegisterArrangement::PerAddress { entries: 1 },
            2,
            PatternArrangement::Global,
        );
        let mut roomy = TwoLevel::new(
            RegisterArrangement::PerAddress { entries: 1024 },
            2,
            PatternArrangement::PerAddress { entries: 1024 },
        );
        let tiny_r = simulate_dynamic(&mut tiny, &trace);
        let roomy_r = simulate_dynamic(&mut roomy, &trace);
        assert!(roomy_r.mispredictions() < tiny_r.mispredictions());
    }

    #[test]
    fn all_nine_combinations_run() {
        let regs = [
            RegisterArrangement::Global,
            RegisterArrangement::PerSet { sets: 4 },
            RegisterArrangement::PerAddress { entries: 64 },
        ];
        let pats = [
            PatternArrangement::Global,
            PatternArrangement::PerSet { sets: 4 },
            PatternArrangement::PerAddress { entries: 64 },
        ];
        let dirs: Vec<bool> = (0..200).map(|i| i % 5 != 0).collect();
        let trace = site_trace(3, dirs);
        for r in regs {
            for p in pats {
                let mut tl = TwoLevel::new(r, 4, p);
                let report = simulate_dynamic(&mut tl, &trace);
                assert_eq!(report.total(), 200);
                assert!(tl.cost_bits() > 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn zero_history_rejected() {
        let _ = TwoLevel::new(RegisterArrangement::Global, 0, PatternArrangement::Global);
    }
}
