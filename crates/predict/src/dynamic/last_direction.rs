//! Smith's simplest dynamic strategy: predict the direction the branch
//! took on its last execution.

use brepl_ir::BranchId;

use crate::eval::DynamicPredictor;

/// Per-branch last-direction predictor with an unbounded (per-site) table.
///
/// Branches seen for the first time predict taken, matching the usual
/// "backward/taken" prior of early hardware.
#[derive(Clone, Debug, Default)]
pub struct LastDirection {
    last: Vec<Option<bool>>,
}

impl LastDirection {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DynamicPredictor for LastDirection {
    fn predict(&mut self, site: BranchId) -> bool {
        self.last
            .get(site.index())
            .copied()
            .flatten()
            .unwrap_or(true)
    }

    fn update(&mut self, site: BranchId, taken: bool) {
        let i = site.index();
        if i >= self.last.len() {
            self.last.resize(i + 1, None);
        }
        self.last[i] = Some(taken);
    }

    fn name(&self) -> &'static str {
        "last direction"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::simulate_dynamic;
    use brepl_trace::{Trace, TraceEvent};

    fn trace_of(dirs: &[bool]) -> Trace {
        dirs.iter()
            .map(|&taken| TraceEvent {
                site: BranchId(0),
                taken,
            })
            .collect()
    }

    #[test]
    fn repeats_last_outcome() {
        let mut p = LastDirection::new();
        assert!(p.predict(BranchId(0)), "cold prediction is taken");
        p.update(BranchId(0), false);
        assert!(!p.predict(BranchId(0)));
        p.update(BranchId(0), true);
        assert!(p.predict(BranchId(0)));
        assert_eq!(p.name(), "last direction");
    }

    #[test]
    fn alternating_is_pathological() {
        // Alternating branches defeat last-direction completely.
        let dirs: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let r = simulate_dynamic(&mut LastDirection::new(), &trace_of(&dirs));
        assert!(r.misprediction_percent() > 95.0);
    }

    #[test]
    fn biased_is_easy() {
        let dirs: Vec<bool> = (0..1000).map(|i| i % 100 != 0).collect();
        let r = simulate_dynamic(&mut LastDirection::new(), &trace_of(&dirs));
        // Two misses per flip (in and out), 10 flips each way.
        assert!(r.misprediction_percent() < 3.0);
    }
}
