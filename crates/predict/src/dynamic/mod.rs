//! Dynamic (run-time) predictors: Smith's simple schemes and the Yeh–Patt
//! two-level adaptive family.

mod counter;
mod gshare;
mod last_direction;
mod two_level;

pub use counter::{SaturatingCounters, TwoBitCounters};
pub use gshare::{Gshare, Tournament};
pub use last_direction::LastDirection;
pub use two_level::{PatternArrangement, RegisterArrangement, TwoLevel};
