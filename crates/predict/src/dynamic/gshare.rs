//! Two later landmarks of the dynamic-prediction line the paper engages
//! with: McFarling's *gshare* (global history XOR branch address) and the
//! *tournament* combining predictor (two component predictors plus a
//! chooser table). Both postdate Yeh–Patt and give the reproduction a
//! stronger dynamic baseline to compare the semi-static schemes against.

use brepl_ir::BranchId;

use crate::eval::DynamicPredictor;

/// McFarling's gshare: a single table of 2-bit counters indexed by
/// `history XOR hash(site)`.
#[derive(Clone, Debug)]
pub struct Gshare {
    history_bits: u32,
    history: u32,
    counters: Vec<u8>,
}

impl Gshare {
    /// Creates a gshare predictor with `2^history_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= history_bits <= 20`.
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (2..=20).contains(&history_bits),
            "history bits must be in 2..=20"
        );
        Gshare {
            history_bits,
            history: 0,
            counters: vec![1; 1 << history_bits],
        }
    }

    /// Hardware cost in bits (counters + history register).
    pub fn cost_bits(&self) -> usize {
        self.counters.len() * 2 + self.history_bits as usize
    }

    fn index(&self, site: BranchId) -> usize {
        let mask = (1u32 << self.history_bits) - 1;
        let hashed = (site.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as u32;
        ((self.history ^ hashed) & mask) as usize
    }
}

impl DynamicPredictor for Gshare {
    fn predict(&mut self, site: BranchId) -> bool {
        self.counters[self.index(site)] >= 2
    }

    fn update(&mut self, site: BranchId, taken: bool) {
        let i = self.index(site);
        let c = &mut self.counters[i];
        if taken {
            if *c < 3 {
                *c += 1;
            }
        } else if *c > 0 {
            *c -= 1;
        }
        let mask = (1u32 << self.history_bits) - 1;
        self.history = (self.history << 1 | u32::from(taken)) & mask;
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// A tournament predictor: two components plus a 2-bit chooser per site
/// hash bucket that learns which component to trust.
#[derive(Debug)]
pub struct Tournament<A, B> {
    a: A,
    b: B,
    chooser: Vec<u8>,
}

impl<A: DynamicPredictor, B: DynamicPredictor> Tournament<A, B> {
    /// Combines two predictors with `buckets` chooser entries.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(a: A, b: B, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one chooser bucket");
        Tournament {
            a,
            b,
            chooser: vec![1; buckets], // weakly prefer component A
        }
    }

    fn bucket(&self, site: BranchId) -> usize {
        (site.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % self.chooser.len()
    }
}

impl<A: DynamicPredictor, B: DynamicPredictor> DynamicPredictor for Tournament<A, B> {
    fn predict(&mut self, site: BranchId) -> bool {
        let pa = self.a.predict(site);
        let pb = self.b.predict(site);
        if self.chooser[self.bucket(site)] < 2 {
            pa
        } else {
            pb
        }
    }

    fn update(&mut self, site: BranchId, taken: bool) {
        let pa = self.a.predict(site);
        let pb = self.b.predict(site);
        // Train the chooser only when the components disagree.
        if pa != pb {
            let i = self.bucket(site);
            let c = &mut self.chooser[i];
            if pb == taken {
                if *c < 3 {
                    *c += 1;
                }
            } else if *c > 0 {
                *c -= 1;
            }
        }
        self.a.update(site, taken);
        self.b.update(site, taken);
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::TwoBitCounters;
    use crate::eval::simulate_dynamic;
    use brepl_trace::{Trace, TraceEvent};

    fn trace_of(dirs: impl IntoIterator<Item = (u32, bool)>) -> Trace {
        dirs.into_iter()
            .map(|(site, taken)| TraceEvent {
                site: BranchId(site),
                taken,
            })
            .collect()
    }

    #[test]
    fn gshare_learns_periodic_patterns() {
        let dirs: Vec<(u32, bool)> = (0..4000).map(|i| (0, i % 5 != 4)).collect();
        let r = simulate_dynamic(&mut Gshare::new(10), &trace_of(dirs));
        assert!(r.misprediction_percent() < 1.0);
        assert!(Gshare::new(10).cost_bits() > 2048);
    }

    #[test]
    fn gshare_separates_branches_by_hash() {
        // Two branches with opposite constant behavior.
        let dirs: Vec<(u32, bool)> = (0..4000).map(|i| (i % 2, i % 2 == 0)).collect();
        let r = simulate_dynamic(&mut Gshare::new(12), &trace_of(dirs));
        assert!(r.misprediction_percent() < 5.0);
    }

    #[test]
    fn tournament_beats_both_components_on_mixed_load() {
        // Site 0 is periodic (good for gshare), site 1 is constant after a
        // noisy warmup (good for counters, noise for gshare histories).
        let mut events = Vec::new();
        let mut x = 1u64;
        for i in 0..6000 {
            events.push((0u32, i % 3 != 2));
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noisy = if i < 200 { x >> 20 & 1 == 1 } else { true };
            events.push((1, noisy));
        }
        let t = trace_of(events);
        let ga = simulate_dynamic(&mut Gshare::new(6), &t).mispredictions();
        let cb = simulate_dynamic(&mut TwoBitCounters::new(), &t).mispredictions();
        let mut tour = Tournament::new(Gshare::new(6), TwoBitCounters::new(), 1024);
        let to = simulate_dynamic(&mut tour, &t).mispredictions();
        assert!(
            to <= ga.max(cb),
            "tournament {to} vs gshare {ga}, 2bit {cb}"
        );
        assert_eq!(tour.name(), "tournament");
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn gshare_rejects_tiny_history() {
        let _ = Gshare::new(1);
    }
}
