//! Fused single-pass trace analytics.
//!
//! The bench tables and the pipeline each need several views of the same
//! profiling trace: per-site statistics, local- and global-history
//! pattern tables, and the misprediction reports of the dynamic predictor
//! zoo. Computed stage by stage, every view re-walks the packed event
//! array; [`FusedAnalytics::run`] produces all of them in **one**
//! traversal, accumulating each view's state side by side per event.
//!
//! Exactness is by construction, not by re-derivation: the dense scratch
//! updates are the same statements as [`TraceStats::from_trace`] and
//! `PatternTableSet::build`'s dense path, and the predictor rows call the
//! real [`LastDirection`], [`TwoBitCounters`] and [`TwoLevel`] structs
//! through the same predict → count → update sequence as
//! [`simulate_dynamic`](crate::simulate_dynamic). Shorter history lengths
//! are *not* recomputed: [`PatternTableSet::aggregated`] folds them out of
//! the 9-bit tables exactly. When a trace's site range makes the dense
//! scratch too large, the pass falls back to composing the per-stage
//! entry points — same results, staged cost.

use brepl_ir::BranchId;
use brepl_trace::{SiteCounts, Trace, TraceStats};

use crate::dynamic::{LastDirection, TwoBitCounters, TwoLevel};
use crate::eval::{simulate_dynamic, DynamicPredictor};
use crate::pattern::{HistoryKind, PatternTableSet, MAX_SCRATCH_ENTRIES};
use crate::report::Report;
use crate::semistatic::profile_report_from_stats;

/// Local-history length of the fused pattern tables — the paper's 9-bit
/// loop strategy; every shorter length aggregates from it.
pub const FUSED_LOCAL_BITS: u32 = 9;

/// Every per-trace analytics product the bench tables consume, computed
/// in a single traversal of the packed trace.
///
/// Each field equals its per-stage counterpart exactly (`==` on the
/// respective types):
///
/// | field | per-stage equivalent |
/// |-------|----------------------|
/// | `stats` | `trace.stats()` |
/// | `local9` | `PatternTableSet::build(trace, Local, 9)` |
/// | `global1` | `PatternTableSet::build(trace, Global, 1)` |
/// | `last_direction` | `simulate_dynamic(&mut LastDirection::new(), trace)` |
/// | `two_bit` | `simulate_dynamic(&mut TwoBitCounters::new(), trace)` |
/// | `two_level_4k` | `simulate_dynamic(&mut TwoLevel::paper_4k(), trace)` |
/// | `profile` | `profile_report(trace)` |
#[derive(Clone, Debug, PartialEq)]
pub struct FusedAnalytics {
    /// Per-site taken/not-taken statistics.
    pub stats: TraceStats,
    /// 9-bit local-history pattern tables (`aggregated(k)` yields every
    /// shorter loop table).
    pub local9: PatternTableSet,
    /// 1-bit global-history pattern tables — the correlation strategy.
    pub global1: PatternTableSet,
    /// Report of the last-direction predictor.
    pub last_direction: Report,
    /// Report of the 2-bit saturating-counter predictor.
    pub two_bit: Report,
    /// Report of the paper's 4K-bit two-level predictor.
    pub two_level_4k: Report,
    /// Report of closed-form profile prediction.
    pub profile: Report,
}

impl FusedAnalytics {
    /// Runs the fused pass over `trace`.
    pub fn run(trace: &Trace) -> Self {
        let n_sites = trace.max_site().map_or(0, |s| s.index() + 1);
        let dense = n_sites
            .checked_mul(1usize << FUSED_LOCAL_BITS)
            .is_some_and(|entries| entries <= MAX_SCRATCH_ENTRIES);
        if !dense {
            return Self::run_staged(trace);
        }

        let local_mask: u32 = (1 << FUSED_LOCAL_BITS) - 1;
        // Per-view accumulators, laid out exactly as their per-stage
        // builders lay them out.
        let mut counts = vec![SiteCounts::default(); n_sites];
        let mut local_regs = vec![0u32; n_sites];
        let mut local_scratch = vec![SiteCounts::default(); n_sites << FUSED_LOCAL_BITS];
        let mut global_reg: u32 = 0;
        let mut global_scratch = vec![SiteCounts::default(); n_sites << 1];
        let mut ld = LastDirection::new();
        let mut tb = TwoBitCounters::new();
        let mut tl = TwoLevel::paper_4k();
        let mut ld_counts = vec![(0u64, 0u64); n_sites];
        let mut tb_counts = vec![(0u64, 0u64); n_sites];
        let mut tl_counts = vec![(0u64, 0u64); n_sites];

        for &p in trace.packed() {
            let i = (p >> 1) as usize;
            let site = BranchId(p >> 1);
            let bit = p & 1;
            let taken = bit == 1;

            // Statistics (TraceStats::from_trace).
            let c = &mut counts[i];
            c.taken += u64::from(bit);
            c.not_taken += 1 - u64::from(bit);

            // 9-bit local pattern tables (build_dense, Local).
            let h = local_regs[i];
            let c = &mut local_scratch[i << FUSED_LOCAL_BITS | h as usize];
            c.taken += u64::from(bit);
            c.not_taken += 1 - u64::from(bit);
            local_regs[i] = (h << 1 | bit) & local_mask;

            // 1-bit global pattern tables (build_dense, Global).
            let c = &mut global_scratch[i << 1 | global_reg as usize];
            c.taken += u64::from(bit);
            c.not_taken += 1 - u64::from(bit);
            global_reg = bit & 1;

            // The dynamic zoo (simulate_dynamic's predict → count →
            // update, once per predictor).
            let guess = ld.predict(site);
            ld_counts[i].0 += 1;
            ld_counts[i].1 += u64::from(guess != taken);
            ld.update(site, taken);

            let guess = tb.predict(site);
            tb_counts[i].0 += 1;
            tb_counts[i].1 += u64::from(guess != taken);
            tb.update(site, taken);

            let guess = tl.predict(site);
            tl_counts[i].0 += 1;
            tl_counts[i].1 += u64::from(guess != taken);
            tl.update(site, taken);
        }

        let total = trace.len() as u64;
        let stats = TraceStats::from_counts(counts);
        let profile = profile_report_from_stats(&stats);
        FusedAnalytics {
            stats,
            local9: PatternTableSet::from_dense_scratch(
                HistoryKind::Local,
                FUSED_LOCAL_BITS,
                &local_scratch,
                n_sites,
                total,
            ),
            global1: PatternTableSet::from_dense_scratch(
                HistoryKind::Global,
                1,
                &global_scratch,
                n_sites,
                total,
            ),
            last_direction: Report::from_counts(ld_counts),
            two_bit: Report::from_counts(tb_counts),
            two_level_4k: Report::from_counts(tl_counts),
            profile,
        }
    }

    /// The fallback for traces whose site range makes the dense pattern
    /// scratch too large: compose the per-stage entry points. Same
    /// results as the fused walk, which is the behavioral definition.
    fn run_staged(trace: &Trace) -> Self {
        let stats = trace.stats();
        let profile = profile_report_from_stats(&stats);
        FusedAnalytics {
            stats,
            local9: PatternTableSet::build(trace, HistoryKind::Local, FUSED_LOCAL_BITS),
            global1: PatternTableSet::build(trace, HistoryKind::Global, 1),
            last_direction: simulate_dynamic(&mut LastDirection::new(), trace),
            two_bit: simulate_dynamic(&mut TwoBitCounters::new(), trace),
            two_level_4k: simulate_dynamic(&mut TwoLevel::paper_4k(), trace),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semistatic::profile_report;
    use brepl_trace::TraceEvent;

    fn random_trace(seed: u64, events: usize, sites: u32) -> Trace {
        let mut state = seed;
        let mut t = Trace::new();
        for _ in 0..events {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            t.push(TraceEvent {
                site: BranchId((r % u64::from(sites)) as u32),
                taken: r & (1 << 40) != 0,
            });
        }
        t
    }

    fn assert_matches_staged(trace: &Trace) {
        let fused = FusedAnalytics::run(trace);
        assert_eq!(fused.stats, trace.stats());
        assert_eq!(
            fused.local9,
            PatternTableSet::build(trace, HistoryKind::Local, 9)
        );
        assert_eq!(
            fused.global1,
            PatternTableSet::build(trace, HistoryKind::Global, 1)
        );
        assert_eq!(
            fused.last_direction,
            simulate_dynamic(&mut LastDirection::new(), trace)
        );
        assert_eq!(
            fused.two_bit,
            simulate_dynamic(&mut TwoBitCounters::new(), trace)
        );
        assert_eq!(
            fused.two_level_4k,
            simulate_dynamic(&mut TwoLevel::paper_4k(), trace)
        );
        assert_eq!(fused.profile, profile_report(trace));
    }

    #[test]
    fn fused_equals_per_stage_on_random_traces() {
        for (seed, events, sites) in [
            (0x1234_5678_9abc_def0u64, 0usize, 1u32),
            (0xdead_beef_0bad_f00d, 1, 1),
            (0xfeed_face_cafe_d00d, 30_000, 1),
            (0x0dd0_b0a7_1111_2222, 60_000, 17),
            (0x5555_aaaa_5555_aaaa, 25_000, 200),
        ] {
            assert_matches_staged(&random_trace(seed, events, sites));
        }
    }

    #[test]
    fn fused_empty_trace() {
        assert_matches_staged(&Trace::new());
    }

    #[test]
    fn fused_staged_fallback_agrees() {
        // A site id high enough that n_sites << 9 overflows the dense
        // scratch budget: the pass must take the staged path and still
        // match every per-stage product.
        let mut t = random_trace(0x9999_1111_2222_3333, 20_000, 13);
        t.push(TraceEvent {
            site: BranchId(1 << 15),
            taken: true,
        });
        let n_sites = (1usize << 15) + 1;
        assert!(n_sites << FUSED_LOCAL_BITS > crate::pattern::MAX_SCRATCH_ENTRIES);
        assert_matches_staged(&t);
    }

    #[test]
    fn aggregated_loop_tables_equal_direct_builds() {
        let t = random_trace(0xabcd_ef01_2345_6789, 50_000, 9);
        let fused = FusedAnalytics::run(&t);
        for bits in 1..=9u32 {
            assert_eq!(
                fused.local9.aggregated(bits),
                PatternTableSet::build(&t, HistoryKind::Local, bits),
                "bits={bits}"
            );
        }
    }
}
